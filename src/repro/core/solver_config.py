"""Grouped solver knobs — the ``SolverConfig`` dataclass.

The fit-time execution surface of :class:`~repro.core.srda.SRDA` grew
one keyword at a time across releases: ``solver``, then the sketch
family (``sketch``/``sketch_size``/``sketch_seed``), then the parallel
substrate (``n_jobs``/``backend``).  Six loosely coupled knobs on every
signature made each new entry point (``srda_alpha_path``, the CLI, the
serving layer) repeat the same six parameters and the same six
validations.

``SolverConfig`` folds them into one validated, immutable value:

- constructed eagerly, so an invalid combination fails at *construction*
  rather than deep inside a fit;
- frozen, so a config can be shared between estimators, stored in a
  model registry, and compared by value (``clone`` round-trips);
- the old keywords survive one deprecation cycle as thin aliases that
  merge into the config with a
  :class:`~repro.core.estimator.ReproDeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

from repro.parallel import Backend, effective_n_jobs

__all__ = ["SOLVER_NAMES", "SolverConfig", "config_alias"]


def config_alias(name: str) -> property:
    """A property aliasing ``self.config.<name>`` for one deprecation cycle.

    Reads are silent (solve paths read these knobs on every fit);
    writes emit a :class:`~repro.core.estimator.ReproDeprecationWarning`
    and merge the value into the frozen config.  Estimators list the
    aliased names in ``_deprecated_params`` mapping to ``"config"``;
    the generic ``set_params`` then routes assignments through the
    setter instead of clobbering the config with a raw value.
    """

    def getter(self):
        return getattr(self.config, name)

    def setter(self, value) -> None:
        from repro.core.estimator import warn_deprecated_param

        warn_deprecated_param(type(self), name, "config")
        self.config = self.config.replace(**{name: value})

    getter.__doc__ = (
        f"Alias for ``config.{name}``; assigning through it is "
        "deprecated (merge into ``config`` instead)."
    )
    return property(getter, setter)

#: Every solver an estimator in this package understands.  ``"auto"``
#: resolves per input (see the :class:`~repro.core.srda.SRDA` module
#: docstring); the rest name a concrete engine.
SOLVER_NAMES = ("auto", "normal", "lsqr", "sketched_lsqr")


@dataclass(frozen=True)
class SolverConfig:
    """Validated bundle of solver-execution knobs.

    Parameters
    ----------
    solver:
        ``"auto"`` (default), ``"normal"``, ``"lsqr"``, or
        ``"sketched_lsqr"`` — the engine selection previously passed as
        ``SRDA(solver=...)``.
    sketch:
        Sketch family for ``solver="sketched_lsqr"``: ``"countsketch"``
        (default), ``"sparse_sign"``, or ``"srht"``.
    sketch_size:
        Sketch row count; ``None`` picks
        :func:`repro.linalg.sketch.default_sketch_size`.
    sketch_seed:
        Seed of the sketch draw (fixed seed → bitwise-reproducible
        sketched fits).
    n_jobs:
        Worker count for the LSQR path's operator products (``None``/1
        direct, ``-1`` every core).
    backend:
        Execution backend for sharded products: ``None``, a name
        (``"serial"``/``"thread"``/``"process"``/``"distributed"``), or
        a live :class:`repro.parallel.Backend`.
    kernel_backend:
        CSR kernel backend for operator products: ``None`` (defer to
        the ``REPRO_KERNEL_BACKEND`` environment variable, default
        ``"auto"``), ``"auto"``, ``"reference"`` (pure numpy), or
        ``"compiled"`` (the GIL-free C extension; falls back to the
        bitwise-identical reference with a one-time
        :class:`~repro.robustness.report.RobustnessWarning` when the
        extension is not built).  See :mod:`repro.linalg.kernels`.
    """

    solver: str = "auto"
    sketch: str = "countsketch"
    sketch_size: Optional[int] = None
    sketch_seed: int = 0
    n_jobs: Optional[int] = None
    backend: Union[str, Backend, None] = None
    kernel_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.solver not in SOLVER_NAMES:
            raise ValueError(
                f"unknown solver {self.solver!r}; expected one of "
                f"{SOLVER_NAMES}"
            )
        from repro.linalg.sketch import SKETCH_KINDS

        if self.sketch not in SKETCH_KINDS:
            raise ValueError(
                f"unknown sketch {self.sketch!r}; expected one of "
                f"{SKETCH_KINDS}"
            )
        if self.sketch_size is not None and self.sketch_size < 1:
            raise ValueError("sketch_size must be positive or None")
        object.__setattr__(self, "sketch_seed", int(self.sketch_seed))
        effective_n_jobs(self.n_jobs)  # validates; value stored verbatim
        if self.backend is not None and not isinstance(
            self.backend, (str, Backend)
        ):
            raise ValueError(
                "backend must be None, a backend name, or a Backend"
            )
        if self.kernel_backend is not None:
            from repro.linalg.kernels import KERNEL_BACKENDS

            if self.kernel_backend not in KERNEL_BACKENDS:
                raise ValueError(
                    f"unknown kernel_backend {self.kernel_backend!r}; "
                    f"expected None or one of {KERNEL_BACKENDS}"
                )

    def replace(self, **changes: Any) -> "SolverConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    def merge_legacy(
        self, overrides: Mapping[str, Any]
    ) -> "SolverConfig":
        """Fold non-``None`` legacy keyword values into a new config.

        The deprecation shim: each old keyword (``solver=...`` etc.)
        that was actually passed overrides the corresponding config
        field.  ``None`` values mean "not passed" and are ignored —
        every legacy keyword's old default is either ``None`` already
        or restated by the config defaults.
        """
        changes = {
            name: value
            for name, value in overrides.items()
            if value is not None
        }
        return self.replace(**changes) if changes else self

    def to_param_dict(self) -> Dict[str, Any]:
        """JSON-safe field dict for persistence (drops live backends).

        ``backend`` survives only as a name: a live
        :class:`~repro.parallel.Backend` is process state, not a model
        parameter, so archives record ``None`` for it.
        """
        backend = self.backend if isinstance(self.backend, str) else None
        return {
            "solver": self.solver,
            "sketch": self.sketch,
            "sketch_size": self.sketch_size,
            "sketch_seed": self.sketch_seed,
            "n_jobs": self.n_jobs,
            "backend": backend,
            "kernel_backend": self.kernel_backend,
        }
