"""Shared estimator machinery for SRDA and the LDA baselines.

Every discriminant method in this package follows the same protocol:

- ``fit(X, y)`` learns a linear (or kernel) embedding into at most
  ``c - 1`` dimensions;
- ``transform(X)`` maps new samples into that embedding;
- ``predict(X)`` classifies by nearest class centroid *in the embedding*,
  which is the standard read-out for discriminant projections and the one
  the paper's error-rate tables imply.

Conventions: samples are **rows** (``X`` is ``(m, n)``), the opposite of
the paper's column-sample notation; the mapping is noted where formulas
are transcribed.  ``X`` may be a dense ndarray, a scipy.sparse matrix, or
our :class:`repro.linalg.CSRMatrix`.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

import numpy as np

from repro._typing import FloatArray

from repro.core.estimator import ReproEstimator
from repro.exceptions import ReproError
from repro.linalg.sparse import CSRMatrix, is_sparse
from repro.robustness import RobustnessWarning


class NotFittedError(ReproError, RuntimeError):
    """Raised when ``transform``/``predict`` is called before ``fit``."""


def encode_labels(y) -> Tuple[FloatArray, FloatArray]:
    """Map arbitrary labels to contiguous indices.

    Returns ``(classes, y_indices)`` where ``classes`` is the sorted array
    of distinct labels and ``y_indices[i]`` is the position of ``y[i]`` in
    it.
    """
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    classes, y_indices = np.unique(y, return_inverse=True)
    return classes, y_indices


def class_counts(y_indices: FloatArray, n_classes: int) -> FloatArray:
    """Number of samples per class (the paper's ``m_k``)."""
    return np.bincount(y_indices, minlength=n_classes)


def _format_indices(indices: FloatArray, limit: int = 5) -> str:
    shown = ", ".join(str(int(i)) for i in indices[:limit])
    if indices.shape[0] > limit:
        shown += f", ... ({indices.shape[0]} total)"
    return "[" + shown + "]"


def _nonfinite_message(rows: FloatArray, cols: FloatArray, count: int) -> str:
    return (
        f"X contains {count} NaN/infinity entries in rows "
        f"{_format_indices(rows)} and columns {_format_indices(cols)}"
    )


def _sparse_nonfinite_location(X) -> Tuple[FloatArray, FloatArray, int]:
    """(bad rows, bad cols, count) for a CSR-like matrix's data array."""
    csr = X if isinstance(X, CSRMatrix) else X.tocsr()
    bad = np.flatnonzero(~np.isfinite(csr.data))
    rows = np.unique(np.searchsorted(csr.indptr, bad, side="right") - 1)
    cols = np.unique(np.asarray(csr.indices)[bad])
    return rows, cols, int(bad.shape[0])


def _handle_nonfinite(X, on_invalid: str):
    """Raise with located indices, or warn and return a sanitized copy."""
    if isinstance(X, CSRMatrix) or is_sparse(X):
        rows, cols, count = _sparse_nonfinite_location(X)
    else:
        bad = ~np.isfinite(X)
        rows = np.flatnonzero(bad.any(axis=1))
        cols = np.flatnonzero(bad.any(axis=0))
        count = int(bad.sum())
    message = _nonfinite_message(rows, cols, count)
    if on_invalid == "raise":
        raise ValueError(message)
    warnings.warn(
        message + "; replacing them with 0", RobustnessWarning, stacklevel=3
    )
    if isinstance(X, CSRMatrix):
        return CSRMatrix(
            np.nan_to_num(X.data, nan=0.0, posinf=0.0, neginf=0.0),
            np.array(X.indices, copy=True),
            np.array(X.indptr, copy=True),
            X.shape,
        )
    if is_sparse(X):
        X = X.copy().tocsr()
        X.data = np.nan_to_num(X.data, nan=0.0, posinf=0.0, neginf=0.0)
        return X
    return np.nan_to_num(X, nan=0.0, posinf=0.0, neginf=0.0)


def validate_data(
    X, y, *, on_invalid: str = "raise", min_classes: int = 2
) -> Tuple[object, FloatArray, FloatArray]:
    """Validate a training pair and encode the labels.

    Returns ``(X, classes, y_indices)``.  ``X`` passes through unchanged
    when sparse; dense inputs are coerced to float64 2-D arrays.

    Parameters
    ----------
    on_invalid:
        ``"raise"`` (default) rejects non-finite features with an error
        naming the offending rows and columns; ``"warn"`` emits a
        :class:`~repro.robustness.RobustnessWarning` and returns a copy
        with NaN/Inf entries replaced by 0 — the documented degradation
        for pipelines that must keep running on dirty data.
    min_classes:
        Minimum distinct labels required.  Estimators with a degenerate
        single-class path pass ``min_classes=1``.
    """
    if on_invalid not in ("raise", "warn"):
        raise ValueError("on_invalid must be 'raise' or 'warn'")
    if isinstance(X, CSRMatrix) or is_sparse(X):
        m = X.shape[0]
        if not np.all(np.isfinite(X.data)):
            X = _handle_nonfinite(X, on_invalid)
    else:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if not np.all(np.isfinite(X)):
            X = _handle_nonfinite(X, on_invalid)
        m = X.shape[0]
    classes, y_indices = encode_labels(y)
    if y_indices.shape[0] != m:
        raise ValueError(
            f"X has {m} samples but y has {y_indices.shape[0]} labels"
        )
    if classes.shape[0] < max(min_classes, 1):
        raise ValueError(
            "discriminant analysis needs at least 2 classes, "
            f"got {classes.shape[0]}"
        )
    if np.min(np.bincount(y_indices)) < 1:
        raise ValueError("every class must have at least one sample")
    return X, classes, y_indices


def as_dense(X) -> FloatArray:
    """Densify sparse inputs (for baselines that cannot avoid it)."""
    if isinstance(X, CSRMatrix):
        return X.to_dense()
    if is_sparse(X):
        return np.asarray(X.todense(), dtype=np.float64)
    return np.asarray(X, dtype=np.float64)


def working_dtype(X) -> np.dtype:
    """The prediction-surface dtype contract, shared by every estimator.

    float32 input stays float32 end-to-end through
    ``transform``/``decision_function`` (the fitted arrays are cast
    once per call, the products run at single precision — half the
    memory traffic, which is what the serving path batches for);
    every other input computes in float64, as training does.
    """
    dtype = getattr(X, "dtype", None)
    if dtype is not None and np.dtype(dtype) == np.float32:
        return np.dtype(np.float32)
    return np.dtype(np.float64)


class LinearEmbedder(ReproEstimator):
    """Base class for linear discriminant embeddings.

    Inherits the shared parameter protocol
    (:class:`~repro.core.estimator.ReproEstimator`); subclasses
    implement ``fit`` and set:

    - ``components_`` — ``(n, d)`` projection matrix;
    - ``intercept_`` — length-``d`` offset added after projection
      (absorbs centering);
    - ``classes_`` and ``centroids_`` — labels and their class centroids
      in the embedded space, used by :meth:`predict`.
    """

    components_: Optional[FloatArray] = None
    intercept_: Optional[FloatArray] = None
    classes_: Optional[FloatArray] = None
    centroids_: Optional[FloatArray] = None

    def _check_fitted(self) -> None:
        if self.components_ is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before use"
            )

    def fit(self, X, y) -> "LinearEmbedder":
        raise NotImplementedError

    def transform(self, X) -> FloatArray:
        """Project samples into the discriminant subspace.

        Returns an ``(m, d)`` embedding in :func:`working_dtype`'s
        contract: float32 input yields a float32 embedding, everything
        else float64.
        """
        self._check_fitted()
        dtype = working_dtype(X)
        components = np.asarray(self.components_, dtype=dtype)
        if isinstance(X, CSRMatrix):
            Z = X.matmat(components)
        elif is_sparse(X):
            Z = np.asarray(X @ components)
        else:
            X = np.asarray(X)
            if X.ndim != 2:
                raise ValueError(f"X must be 2-D, got shape {X.shape}")
            if X.shape[1] != components.shape[0]:
                raise ValueError(
                    f"X has {X.shape[1]} features, model expects "
                    f"{components.shape[0]}"
                )
            if X.dtype != dtype:
                X = X.astype(dtype)
            Z = X @ components
        if self.intercept_ is not None:
            Z = Z + np.asarray(self.intercept_, dtype=dtype)
        return Z.astype(dtype, copy=False)

    def fit_transform(self, X, y) -> FloatArray:
        """Fit the model and return the training embedding."""
        return self.fit(X, y).transform(X)

    def _store_centroids(self, Z_train: FloatArray, y_indices: FloatArray) -> None:
        """Record per-class centroids of the training embedding."""
        n_classes = self.classes_.shape[0]
        d = Z_train.shape[1]
        centroids = np.zeros((n_classes, d))
        for k in range(n_classes):
            centroids[k] = Z_train[y_indices == k].mean(axis=0)
        self.centroids_ = centroids

    def decision_function(self, X) -> FloatArray:
        """Per-class scores: higher = closer centroid in the embedding.

        Returns ``(m, c)`` scores ``2 z·c_k - ‖c_k‖²``, the negated
        squared centroid distance with the per-row ``‖z‖²`` constant
        dropped; ``argmax`` over a row is the predicted class.  Follows
        the :func:`working_dtype` contract (float32 in → float32 out).
        """
        self._check_fitted()
        if self.centroids_ is None:
            raise NotFittedError("fit() did not record class centroids")
        Z = self.transform(X)
        C = np.asarray(self.centroids_, dtype=Z.dtype)
        cross = Z @ C.T
        return 2.0 * cross - np.sum(C * C, axis=1)

    def predict(self, X) -> FloatArray:
        """Nearest-centroid classification in the embedded space.

        Exactly ``argmax`` of :meth:`decision_function` — the scores are
        the IEEE negation of the squared centroid distances, so ties
        break identically to the historical ``argmin`` read-out.
        """
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X, y) -> float:
        """Accuracy of :meth:`predict` against true labels."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))
