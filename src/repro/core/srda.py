"""SRDA — Spectral Regression Discriminant Analysis (Section III).

The two-step algorithm:

1. **Responses** (spectral step): the ``c - 1`` closed-form eigenvectors
   of the LDA graph matrix, from :mod:`repro.core.responses`.
2. **Regularized regression** (Eqn 14/19): for each response ``ȳ``,

       a = argmin_a  Σᵢ (aᵀxᵢ + b - ȳᵢ)² + α ‖a‖².

Centering vs bias absorption (Section III-B).  Eqn 14 penalizes only the
projection vector ``a``, with the offset ``b`` free.  There are two ways
to realize that:

- **center the data** — regress ``ȳ`` on ``X - μ`` (the responses are
  already orthogonal to the all-ones vector, so they need no centering)
  and set ``b = -μᵀa``.  Exactly Eqn 14; used for *dense* input, as the
  reference implementation does.
- **append a constant 1 feature** — the trick the paper introduces for
  sparse data, where the centered matrix would be dense and blow the
  memory budget.  The absorbed bias then falls inside the penalty — a
  deliberate approximation the paper accepts for the sparse case.
  Realized matrix-free by :class:`AppendOnesOperator`.

``centering="auto"`` (default) picks centering for dense input and
bias absorption for sparse input.  For dense data the centering is
explicit; for sparse data with ``centering=True`` the implicit
:class:`CenteringOperator` keeps the matrix untouched (only LSQR can run
this path).

Two solvers, matching Section III-C:

- ``"normal"`` — normal equations ``(X̄ᵀX̄ + αI) a = X̄ᵀȳ`` (Eqn 20)
  factored once by our Cholesky and reused for all ``c - 1`` right-hand
  sides.  When ``n > m`` the dual identity
  ``(X̄ᵀX̄ + αI)⁻¹X̄ᵀ = X̄ᵀ(X̄X̄ᵀ + αI)⁻¹`` (the finite-α form of Eqn 21)
  switches to an ``m × m`` system.
- ``"lsqr"`` — the Paige–Saunders iteration with ``damp = √α``, touching
  the data only through mat-vecs: the linear-time path.  The paper runs
  15–20 iterations; ``max_iter`` defaults to 20.

``solver="auto"`` picks LSQR for sparse input and for problems where
``min(m, n)`` is large, normal equations otherwise — mirroring how the
paper ran its experiments (closed form on PIE/Isolet/MNIST, LSQR on
20Newsgroups).
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Union

import numpy as np

from repro._typing import FloatArray

from repro.core.base import LinearEmbedder, validate_data
from repro.core.estimator import ReproDeprecationWarning, warn_deprecated_param
from repro.core.responses import (
    generate_responses,
    response_table_from_counts,
)
from repro.core.solver_config import SolverConfig, config_alias
from repro.linalg import kernels
from repro.linalg.block_lsqr import SharedBidiagonalization, block_lsqr
from repro.linalg.lsqr import FAILURE_ISTOPS, ISTOP_REASONS, lsqr
from repro.linalg.operators import (
    AppendOnesOperator,
    CenteringOperator,
    as_operator,
)
from repro.linalg.sparse import CSRMatrix, is_sparse
from repro.observability import Tracer, resolve_tracer
from repro.parallel import Backend, ShardedOperator, effective_n_jobs
from repro.robustness import FitReport, guarded_solve

#: Above this min(m, n) the Gram matrix of the normal-equations path gets
#: expensive (cubic factor); "auto" switches to LSQR.
_AUTO_NORMAL_LIMIT = 2000


def _note_parallel_backend(report: FitReport, sharded) -> None:
    """Record which backend served the products (and any degradation).

    Called after the solve, before the sharded operator closes.  A
    distributed fit that lost its cluster mid-solve records the full
    ladder (``"distributed->serial"``) plus a
    :class:`~repro.robustness.RobustnessWarning` — the result is still
    bitwise correct (same shard layout), but the operator should know
    the cluster died under them.
    """
    if sharded is None:
        return
    degraded_from = getattr(sharded, "degraded_from", None)
    if degraded_from is None:
        report.backend = sharded.backend.name
        return
    report.backend = f"{degraded_from}->{sharded.backend.name}"
    report.add_warning(
        f"distributed cluster became unhealthy mid-fit; products fell "
        f"back to the {sharded.backend.name} backend "
        f"({sharded.degradation_reason}); results are unchanged (the "
        "shard layout, and therefore every bit of every product, does "
        "not depend on the backend)"
    )


def _record_lsqr_columns(columns, report: FitReport, tol: float, alpha: float):
    """Fold per-column LSQR results into a :class:`FitReport`.

    Shared by the blocked and sequential solver paths and by
    :func:`srda_alpha_path`, so the diagnostics and warning text are
    identical no matter which engine produced the columns.  Returns the
    per-column iteration counts.
    """
    iterations: List[int] = []
    istops: List[int] = []
    residuals: List[float] = []
    for j, result in enumerate(columns):
        iterations.append(result.itn)
        istops.append(result.istop)
        residuals.append(float(result.r2norm))
        if result.istop in FAILURE_ISTOPS:
            report.converged = False
            report.add_warning(
                f"LSQR failed on response {j}: "
                f"istop={result.istop} ({ISTOP_REASONS[result.istop]}) "
                f"after {result.itn} iterations, r2norm={result.r2norm:.3g}"
            )
        elif result.istop == 7 and tol > 0:
            # Hitting the cap is only noteworthy when the caller
            # asked for tolerance-based convergence (tol=0 runs a
            # fixed iteration count by design, per the paper).
            report.add_warning(
                f"LSQR hit the iteration limit on response {j} "
                f"before reaching tol={tol:g}",
                emit=False,
            )
    report.solver = "lsqr"
    report.lsqr_istop = istops
    report.lsqr_iterations = iterations
    report.lsqr_residuals = residuals
    report.effective_alpha = alpha
    return iterations


class _IncrementalState:
    """Everything :meth:`SRDA.partial_fit` accumulates between batches.

    The response construction needs only *integer* per-class counts
    (the Gram matrix of ``[1, e_1 … e_c]`` is a function of counts
    alone), so the incremental bookkeeping is exact and independent of
    batch order.  The solver, by contrast, needs the actual rows, which
    are kept as the list of validated batch blocks (concatenated lazily
    per solve — the data is stored once either way).
    """

    __slots__ = (
        "blocks",
        "labels",
        "sparse",
        "n_features",
        "rows",
        "classes",
        "counts",
        "solved_classes",
        "solved_counts",
        "solved_table",
    )

    def __init__(self, sparse: bool, n_features: int) -> None:
        self.blocks: List = []
        self.labels: List = []
        self.sparse = sparse
        self.n_features = n_features
        self.rows = 0
        #: sorted array of distinct labels seen so far (None before the
        #: first batch) and the aligned int64 per-class running sums
        self.classes = None
        self.counts = None
        #: snapshot of (classes, counts, response table) at the last
        #: solve — what the previous coefficients were fitted against,
        #: needed to project them into the new response basis
        self.solved_classes = None
        self.solved_counts = None
        self.solved_table = None

    def response_rebasing(self, classes, table):
        """Map old response columns onto the new ones: ``(c₀-1, c-1)``.

        The response targets are renormalized every batch (each value
        scales like ``1/√m_k``), so the previous coefficients are
        systematically off-scale as a warm start.  But the ridge
        solution is *linear* in its targets, and the old table's
        columns are orthonormal under the old count-weighted inner
        product — so ``M = T₀ᵀ·diag(counts₀)·T[old_rows]`` expresses
        each new response column in the old basis (restricted to the
        rows both solves share), and ``components @ M`` is the exact
        old-data solution for the *new* targets.  The remaining warm
        start error is only what the new rows genuinely change.  Class
        growth needs no special case: new classes have no old rows, so
        their columns project through the shared classes alone.
        """
        if self.solved_table is None:
            return None
        old_rows = np.searchsorted(classes, self.solved_classes)
        weighted = self.solved_counts[:, None] * table[old_rows, :]
        return self.solved_table.T @ weighted

    def absorb_labels(self, y: FloatArray) -> FloatArray:
        """Merge one batch into the running class histogram.

        Returns the labels first seen in this batch.  The update is
        O(c + batch): integer adds over a sorted merge, so the
        histogram — and the response table built from it — is bitwise
        independent of batch order.
        """
        batch_classes, batch_indices = np.unique(y, return_inverse=True)
        batch_counts = np.bincount(
            batch_indices, minlength=batch_classes.shape[0]
        ).astype(np.int64)
        if self.classes is None:
            self.classes = batch_classes
            self.counts = batch_counts
            return batch_classes
        new_labels = batch_classes[~np.isin(batch_classes, self.classes)]
        if new_labels.shape[0]:
            merged = np.union1d(self.classes, batch_classes)
            counts = np.zeros(merged.shape[0], dtype=np.int64)
            counts[np.searchsorted(merged, self.classes)] = self.counts
            self.classes = merged
            self.counts = counts
        self.counts[
            np.searchsorted(self.classes, batch_classes)
        ] += batch_counts
        return new_labels


def _concat_blocks(blocks: List, sparse: bool):
    """Stack accumulated batch blocks into one training matrix.

    Dense blocks vstack; CSR blocks concatenate their raw arrays with
    row-pointer offsets — O(total nnz), no densification.
    """
    if len(blocks) == 1:
        return blocks[0]
    if not sparse:
        return np.vstack(blocks)
    n_cols = blocks[0].shape[1]
    data = np.concatenate([b.data for b in blocks])
    indices = np.concatenate(
        [np.asarray(b.indices, dtype=np.int64) for b in blocks]
    )
    pieces = [np.zeros(1, dtype=np.int64)]
    offset = 0
    rows = 0
    for block in blocks:
        pieces.append(np.asarray(block.indptr[1:], dtype=np.int64) + offset)
        offset += int(block.indptr[-1])
        rows += block.shape[0]
    return CSRMatrix(data, indices, np.concatenate(pieces), (rows, n_cols))


class SRDA(LinearEmbedder):
    """Spectral Regression Discriminant Analysis.

    Parameters
    ----------
    alpha:
        Tikhonov regularization ``α ≥ 0``.  The paper uses 1.0 for all
        reported tables and shows (Fig 5) that performance is flat over
        a wide range.  ``alpha = 0`` reproduces plain LDA directions in
        the linearly independent case (Corollary 3); the normal-equation
        path then falls back to a minimum-norm least-squares solve since
        the Gram matrix may be singular.
    config:
        A :class:`~repro.core.solver_config.SolverConfig` bundling the
        execution knobs: ``solver`` (``"normal"``, ``"lsqr"``,
        ``"sketched_lsqr"``, or ``"auto"`` — see module docstring),
        the sketch family (``sketch``/``sketch_size``/``sketch_seed``
        for ``"sketched_lsqr"``: one pass sketches the fit operator,
        an ``n × n`` Cholesky factor of the regularized sketch Gram
        right-preconditions the iteration, typically dropping
        iteration counts 2–5×; on wide data ``n >= m`` the fit
        degrades to plain LSQR with a
        :class:`~repro.robustness.RobustnessWarning` and
        ``solver_used_ == "lsqr"``), and the parallel substrate
        (``n_jobs``/``backend`` for sharded operator products — the
        shard layout depends only on the data shape, so any worker
        count and backend is bitwise identical).  ``None`` means
        ``SolverConfig()`` (all defaults).  The six knobs remain
        readable as attributes (``model.solver`` etc.); passing them
        as *constructor keywords* is deprecated and emits a
        :class:`~repro.core.estimator.ReproDeprecationWarning` while
        merging into the config.
    centering:
        ``"auto"`` (center dense input, append-ones for sparse), or an
        explicit ``True``/``False``.  ``True`` is exactly Eqn 14
        (intercept outside the penalty); ``False`` is the Section III-B
        bias-absorption trick (intercept inside the penalty).
    max_iter:
        LSQR iteration cap (paper: 15–20 suffice).
    tol:
        LSQR relative tolerance (applied as both atol and btol).  Set to
        0 to force exactly ``max_iter`` iterations, as the paper's fixed
        iteration count does.
    warm_start:
        When True and the model was fitted before with compatible
        shapes, the LSQR path starts each solve from the previous
        projection vectors.  This is the incremental-update story the
        paper's IDR/QR comparison is named for: when data arrives in
        batches, refitting converges in a handful of iterations instead
        of starting cold.  Ignored by the normal-equations solver.
    block:
        When True (default) the LSQR path solves all ``c - 1`` response
        columns in one blocked Golub–Kahan iteration
        (:func:`repro.linalg.block_lsqr.block_lsqr`): two sparse
        mat-mats per iteration instead of ``2(c-1)`` mat-vecs, so the
        data streams through memory once per iteration regardless of
        the number of classes.  ``block=False`` is the escape hatch
        back to one :func:`~repro.linalg.lsqr.lsqr` call per column.
        Per-column termination codes, damping, warm starts, and the
        istop-8/9 failure semantics are identical on both paths.
    on_invalid:
        Degradation policy for degenerate input: ``"raise"`` (default)
        rejects non-finite features and single-class problems;
        ``"warn"`` sanitizes non-finite entries, accepts a single class
        (producing a zero-dimensional embedding), and emits
        :class:`~repro.robustness.RobustnessWarning` for each
        degradation.
    trace:
        Observability control (see :mod:`repro.observability`):
        ``None`` uses the process-wide tracer (disabled unless
        ``repro.observability.configure()`` ran); ``True`` attaches a
        fresh in-memory tracer exposed as ``tracer_`` after fit;
        ``False`` disables tracing for this estimator regardless of the
        global; a ``Tracer`` or ``Sink`` is used directly.  When
        enabled, ``fit`` emits nested spans (``srda.fit`` →
        validate/responses/solve/embed), per-iteration LSQR events, and
        an ``srda.flam`` counter.
    validate_operators:
        When True, ``fit`` runs
        :func:`repro.analysis.contracts.verify_operator` on the actual
        operator it is about to solve with (adjointness, linearity,
        shape contracts) and emits an ``srda.contract_check`` span.
        Raises :class:`~repro.exceptions.ContractViolationError` on a
        violation — the debug switch for custom operators.

    Attributes
    ----------
    components_:
        ``(n, c-1)`` projection matrix.
    intercept_:
        Length ``c-1`` offset (``-μᵀA`` when centering, the absorbed
        bias weight otherwise).
    responses_:
        The ``(m, c-1)`` spectral responses used during fit.
    solver_used_:
        Which solver actually ran ("normal", "lsqr", or
        "sketched_lsqr"; a degraded sketched fit reports "lsqr", with
        the request kept in ``fit_report_.requested_solver``).
    centered_:
        Whether the fit used centering (True) or bias absorption.
    lsqr_iterations_:
        Iterations used per response column (LSQR path only).
    fit_report_:
        :class:`~repro.robustness.FitReport` with the solver actually
        used, any fallback-chain steps, the condition estimate, the
        effective α, and per-response LSQR termination codes.
    """

    _deprecated_params = {
        "solver": "config",
        "sketch": "config",
        "sketch_size": "config",
        "sketch_seed": "config",
        "n_jobs": "config",
        "backend": "config",
    }

    def __init__(
        self,
        alpha: float = 1.0,
        config: Optional[SolverConfig] = None,
        centering: Union[str, bool] = "auto",
        max_iter: int = 20,
        tol: float = 1e-10,
        warm_start: bool = False,
        block: bool = True,
        on_invalid: str = "raise",
        trace=None,
        validate_operators: bool = False,
        solver: Optional[str] = None,
        n_jobs: Optional[int] = None,
        backend: Union[str, Backend, None] = None,
        sketch: Optional[str] = None,
        sketch_size: Optional[int] = None,
        sketch_seed: Optional[int] = None,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if centering not in ("auto", True, False):
            raise ValueError("centering must be 'auto', True, or False")
        if max_iter < 1:
            raise ValueError("max_iter must be positive")
        if on_invalid not in ("raise", "warn"):
            raise ValueError("on_invalid must be 'raise' or 'warn'")
        if config is None:
            config = SolverConfig()
        elif not isinstance(config, SolverConfig):
            raise ValueError(
                f"config must be a SolverConfig, got {type(config).__name__}"
            )
        legacy = {
            "solver": solver,
            "sketch": sketch,
            "sketch_size": sketch_size,
            "sketch_seed": sketch_seed,
            "n_jobs": n_jobs,
            "backend": backend,
        }
        for name, value in legacy.items():
            if value is not None:
                warn_deprecated_param(type(self), name, "config")
        self.alpha = float(alpha)
        self.config = config.merge_legacy(legacy)
        self.centering = centering
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.warm_start = bool(warm_start)
        self.block = bool(block)
        self.on_invalid = on_invalid
        self.trace = trace
        self.validate_operators = bool(validate_operators)
        self.tracer_: Optional[Tracer] = None
        self.components_ = None
        self.intercept_ = None
        self.classes_ = None
        self.centroids_ = None
        self.responses_ = None
        self.solver_used_: Optional[str] = None
        self.centered_: Optional[bool] = None
        self.lsqr_iterations_: Optional[List[int]] = None
        self.fit_report_: Optional[FitReport] = None
        # partial_fit accumulator; None until the first partial_fit call
        self._incremental: Optional[_IncrementalState] = None
        # set (and always reset) by partial_fit around its solve so the
        # incremental path warm-starts regardless of the warm_start param
        self._force_warm_start = False

    # ------------------------------------------------------------------
    # Config-field aliases.  Reading ``model.solver`` etc. stays cheap
    # and silent (the internal solve paths read these constantly);
    # *assigning* through the old names is the deprecated spelling and
    # merges into ``config`` with a warning.
    # ------------------------------------------------------------------
    solver = config_alias("solver")
    sketch = config_alias("sketch")
    sketch_size = config_alias("sketch_size")
    sketch_seed = config_alias("sketch_seed")
    n_jobs = config_alias("n_jobs")
    backend = config_alias("backend")
    kernel_backend = config_alias("kernel_backend")

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "SRDA":
        """Learn the ``c - 1`` projective functions from labeled data.

        Complexity: O(iters·c·(nnz + m + n) + m·c^2) — the paper's
        linear-time claim: response generation (``m·c²``) plus
        ``c - 1`` regressions at ``2·nnz + 3m + 5n`` flam per LSQR
        iteration.  Dense inputs have ``nnz = m·n``.
        """
        tracer = resolve_tracer(self.trace)
        self.tracer_ = tracer if tracer.enabled else None
        self._fit_tracer = tracer
        with kernels.use_backend(self.config.kernel_backend), tracer.span(
            "srda.fit", alpha=self.alpha, solver=self.solver
        ) as fit_span:
            return self._fit_phases(X, y, tracer, fit_span)

    def _fit_phases(self, X, y, tracer: Tracer, fit_span) -> "SRDA":
        """The fit pipeline, one observability span per phase."""
        report = FitReport()
        self.fit_report_ = report
        # A cold fit discards any partial_fit stream: the model now
        # describes exactly the data passed here.
        self._incremental = None
        with tracer.span("srda.validate"):
            X, classes, y_indices = validate_data(
                X,
                y,
                on_invalid=self.on_invalid,
                min_classes=1 if self.on_invalid == "warn" else 2,
            )
        self.classes_ = classes
        n_classes = classes.shape[0]
        if n_classes < 2:
            return self._fit_single_class(X, y_indices, report)
        counts = np.bincount(y_indices, minlength=n_classes)
        singletons = int(np.sum(counts == 1))
        if singletons:
            report.add_warning(
                f"{singletons} of {n_classes} classes have a single "
                "sample; their within-class scatter is zero and the fit "
                "may overfit those classes",
                emit=self.on_invalid == "warn",
            )
        with tracer.span("srda.responses", n_classes=int(n_classes)):
            responses = generate_responses(y_indices, n_classes)
        self.responses_ = responses

        sparse_input = isinstance(X, CSRMatrix) or is_sparse(X)
        solver = self._resolve_solver(X, sparse_input)
        report.requested_solver = solver
        center = (
            not sparse_input if self.centering == "auto" else bool(self.centering)
        )
        if center and sparse_input and solver == "normal":
            raise ValueError(
                "centering sparse input densifies it; use solver='lsqr' "
                "(implicit centering) or centering=False"
            )
        fit_span.set_attribute("solver_used", solver)
        fit_span.set_attribute("shape", [int(s) for s in X.shape])

        self.lsqr_iterations_ = None
        with tracer.span("srda.solve", solver=solver, centered=center):
            if center:
                components, intercept = self._fit_centered(
                    X, responses, solver, sparse_input, report, tracer
                )
            else:
                components, intercept = self._fit_augmented(
                    X, responses, solver, sparse_input, report, tracer
                )
        if solver == "sketched_lsqr" and report.solver == "lsqr":
            # _build_precondition refused (wide data) and the fit
            # degraded to plain LSQR; solver_used_ reports what ran,
            # report.requested_solver keeps what was asked for.
            solver = "lsqr"
            fit_span.set_attribute("solver_used", solver)
        self.solver_used_ = solver
        self.centered_ = center
        self.components_ = components
        self.intercept_ = intercept
        with tracer.span("srda.embed"):
            self._store_centroids(self.transform(X), y_indices)
        return self

    # ------------------------------------------------------------------
    # Incremental fitting
    # ------------------------------------------------------------------
    def partial_fit(self, X, y) -> "SRDA":
        """Absorb one labeled batch and refresh the model incrementally.

        Complexity: O(iters·c·(nnz + m + n) + m·c + c^3) — one
        warm-started solve over the *accumulated* ``m`` rows / ``nnz``
        entries, a table lookup (``m·c``) for the responses, and a
        count-space Gram–Schmidt (``c^3``) independent of ``m``.  The
        win over a cold refit is in ``iters``: the solve starts from
        the previous batch's coefficients, so typically converges in a
        small fraction of the cold iteration count (asserted by the
        incremental benchmarks).

        The spectral step never touches old rows again: per-class
        *integer* running sums (updated in O(c + batch) per call) feed
        :func:`repro.core.responses.response_table_from_counts`, whose
        ``(c, c-1)`` table is an exact, batch-order-independent
        function of the class histogram; the ``(m, c-1)`` response
        matrix is a lookup into it.  The regression step then re-solves
        the concatenated stream with LSQR started from the previous
        projection vectors — the iterative analogue of the paper's
        incremental (IDR/QR) comparison point.

        Semantics and restrictions:

        - The first ``partial_fit`` call starts a fresh stream; a later
          ``fit`` discards the stream.  Batches must agree in feature
          count and sparsity (no mixing sparse and dense).
        - Labels unseen in earlier batches are welcome: the class set
          grows, the new response columns start cold while the old ones
          warm-start (zero-padded when the class count changes), and
          ``classes_`` stays the sorted union.
        - A stream whose cumulative data still has a single class fits
          the degenerate zero-dimensional embedding (it does not raise,
          unlike ``fit`` with ``on_invalid="raise"`` — a stream
          legitimately starts narrow and widens).
        - ``solver="normal"`` is rejected: refactoring normal equations
          per batch is exactly the cold refit this method exists to
          avoid.  ``"auto"`` resolves to ``"lsqr"``.

        After each call ``fit_report_.incremental`` records the batch
        count, new/total rows, cumulative classes, labels first seen in
        this batch, and whether the solve warm-started.

        Converged solves match ``fit`` on the concatenated data to
        solver tolerance: both minimize the same ridge objective, whose
        solution is unique for ``alpha > 0``, and the warm start moves
        only the iteration count, never the fixed point.  (With
        ``tol=0`` LSQR runs exactly ``max_iter`` iterations from
        *different* starting points, so use a tolerance-based stop when
        equivalence matters.)
        """
        tracer = resolve_tracer(self.trace)
        self.tracer_ = tracer if tracer.enabled else None
        self._fit_tracer = tracer
        with kernels.use_backend(self.config.kernel_backend), tracer.span(
            "srda.partial_fit", alpha=self.alpha, solver=self.solver
        ) as fit_span:
            return self._partial_fit_phases(X, y, tracer, fit_span)

    def _partial_fit_phases(self, X, y, tracer: Tracer, fit_span) -> "SRDA":
        """Validate-accumulate-solve pipeline for one batch."""
        solver = self.solver
        if solver == "normal":
            raise ValueError(
                "partial_fit requires an iterative solver ('lsqr' or "
                "'sketched_lsqr'); solver='normal' refactors from "
                "scratch every batch — call fit() instead"
            )
        if solver == "auto":
            solver = "lsqr"

        report = FitReport()
        self.fit_report_ = report
        with tracer.span("srda.validate"):
            X, _, _ = validate_data(
                X, y, on_invalid=self.on_invalid, min_classes=1
            )
        if not isinstance(X, CSRMatrix) and is_sparse(X):
            X = CSRMatrix.from_scipy(X)
        sparse_input = isinstance(X, CSRMatrix)

        state = self._incremental
        if state is None:
            state = _IncrementalState(sparse_input, X.shape[1])
            self._incremental = state
            # a new stream never warm-starts from whatever an earlier
            # cold fit learned on unrelated data
            self.components_ = None
            self.intercept_ = None
        elif sparse_input != state.sparse:
            raise ValueError(
                "cannot mix sparse and dense batches in one "
                "partial_fit stream"
            )
        elif X.shape[1] != state.n_features:
            raise ValueError(
                f"batch has {X.shape[1]} features, stream has "
                f"{state.n_features}"
            )

        y = np.asarray(y)
        new_labels = state.absorb_labels(y)
        state.blocks.append(X)
        state.labels.append(y)
        state.rows += X.shape[0]

        classes = state.classes
        n_classes = classes.shape[0]
        self.classes_ = classes
        previous = self.components_
        report.incremental = {
            "batches": len(state.blocks),
            "rows_new": int(X.shape[0]),
            "rows_total": int(state.rows),
            "n_classes": int(n_classes),
            "classes_added": np.asarray(new_labels).tolist(),
            "warm_started": bool(
                previous is not None and previous.shape[1] > 0
            ),
        }
        fit_span.set_attribute("batches", len(state.blocks))

        full_X = _concat_blocks(state.blocks, state.sparse)
        y_indices = np.searchsorted(classes, np.concatenate(state.labels))
        if n_classes < 2:
            return self._fit_single_class(full_X, y_indices, report)

        singletons = int(np.sum(state.counts == 1))
        if singletons:
            report.add_warning(
                f"{singletons} of {n_classes} classes have a single "
                "sample; their within-class scatter is zero and the fit "
                "may overfit those classes",
                emit=self.on_invalid == "warn",
            )
        with tracer.span("srda.responses", n_classes=int(n_classes)):
            table = response_table_from_counts(state.counts)
            responses = table[y_indices]
        self.responses_ = responses

        rebase = state.response_rebasing(classes, table)
        if previous is not None and previous.shape[1] and rebase is not None:
            # Re-express the previous solve in the new response basis
            # (the targets renormalize every batch); the warm start is
            # then off only by what the new rows genuinely change.
            self.components_ = previous @ rebase
            self.intercept_ = self.intercept_ @ rebase

        report.requested_solver = solver
        center = (
            not sparse_input
            if self.centering == "auto"
            else bool(self.centering)
        )
        fit_span.set_attribute("solver_used", solver)
        fit_span.set_attribute("shape", [int(s) for s in full_X.shape])

        self.lsqr_iterations_ = None
        self._force_warm_start = True
        try:
            with tracer.span("srda.solve", solver=solver, centered=center):
                if center:
                    components, intercept = self._fit_centered(
                        full_X, responses, solver, sparse_input, report,
                        tracer,
                    )
                else:
                    components, intercept = self._fit_augmented(
                        full_X, responses, solver, sparse_input, report,
                        tracer,
                    )
        finally:
            self._force_warm_start = False
        if solver == "sketched_lsqr" and report.solver == "lsqr":
            solver = "lsqr"
            fit_span.set_attribute("solver_used", solver)
        self.solver_used_ = solver
        self.centered_ = center
        self.components_ = components
        self.intercept_ = intercept
        state.solved_classes = classes
        state.solved_counts = state.counts.copy()
        state.solved_table = table
        with tracer.span("srda.embed"):
            self._store_centroids(self.transform(full_X), y_indices)
        return self

    def _contract_check(self, op, tracer: Tracer) -> None:
        """Run :func:`verify_operator` on the actual solve operator."""
        from repro.analysis.contracts import verify_operator

        with tracer.span(
            "srda.contract_check", operator=type(op).__name__
        ) as span:
            contract = verify_operator(op)
            span.set_attribute("checks", len(contract.checks))
            span.set_attribute("ok", contract.ok)

    def _instrument_operator(self, op, tracer: Tracer):
        """Contract-check and/or flam-count the operator fit solves with."""
        if self.validate_operators:
            self._contract_check(op, tracer)
        if tracer.enabled:
            from repro.complexity.counter import FlamCountingOperator

            op = FlamCountingOperator(
                op, metrics=tracer.metrics, metric="srda.flam"
            )
        return op

    def _base_operator(self, X):
        """Data operator for the LSQR path, sharded when parallel.

        Returns ``(op, sharded)`` where ``sharded`` is the
        :class:`~repro.parallel.ShardedOperator` to close after the
        solve, or ``None`` on the direct path.  The direct path is
        byte-for-byte the pre-parallel code — ``n_jobs=None`` adds no
        wrapper and no overhead.
        """
        if self.backend is None and effective_n_jobs(self.n_jobs) <= 1:
            return as_operator(X), None
        sharded = ShardedOperator(X, backend=self.backend, n_jobs=self.n_jobs)
        return sharded, sharded

    def _fit_single_class(self, X, y_indices, report: FitReport) -> "SRDA":
        """Degenerate one-class fit: a zero-dimensional embedding.

        With ``c = 1`` there are ``c - 1 = 0`` discriminant directions;
        the model still supports ``transform`` (an ``(m, 0)`` embedding)
        and ``predict`` (always the single class) so pipelines survive
        pathological splits.
        """
        n = X.shape[1]
        report.add_warning(
            "only one class present; fitting a zero-dimensional "
            "embedding (predict will always return that class)"
        )
        report.solver = "degenerate"
        report.requested_solver = self.solver
        self.responses_ = np.zeros((X.shape[0], 0))
        self.solver_used_ = None
        self.centered_ = False
        self.components_ = np.zeros((n, 0))
        self.intercept_ = np.zeros(0)
        self.lsqr_iterations_ = None
        self._store_centroids(np.zeros((X.shape[0], 0)), y_indices)
        return self

    def _resolve_solver(self, X, sparse_input: bool) -> str:
        if self.solver != "auto":
            return self.solver
        if sparse_input:
            return "lsqr"
        m, n = X.shape
        return "normal" if min(m, n) <= _AUTO_NORMAL_LIMIT else "lsqr"

    # ------------------------------------------------------------------
    # Centered path — exactly Eqn 14 (dense data, or sparse via LSQR)
    # ------------------------------------------------------------------
    def _fit_centered(self, X, responses, solver, sparse_input, report, tracer):
        if solver == "normal":
            X = np.asarray(X, dtype=np.float64)
            mean = X.mean(axis=0)
            centered = X - mean
            zero_var = int(np.sum(~centered.any(axis=0)))
            if zero_var:
                report.add_warning(
                    f"{zero_var} features have zero variance; they carry "
                    "no discriminant information and make the Gram "
                    "matrix singular at alpha=0",
                    emit=self.on_invalid == "warn",
                )
            if self.validate_operators:
                self._contract_check(as_operator(centered), tracer)
            components = self._ridge_normal(centered, responses, report)
        else:
            base, sharded = self._base_operator(X)
            try:
                centering_op = CenteringOperator(base)
                mean = centering_op.column_means
                if solver == "sketched_lsqr":
                    self._precondition = self._build_precondition(
                        centering_op, report
                    )
                op = self._instrument_operator(centering_op, tracer)
                components = self._ridge_lsqr(op, responses, report)
                _note_parallel_backend(report, sharded)
            finally:
                self._precondition = None
                if sharded is not None:
                    sharded.close()
        intercept = -(mean @ components)
        return components, intercept

    # ------------------------------------------------------------------
    # Augmented path — Section III-B bias absorption
    # ------------------------------------------------------------------
    def _fit_augmented(self, X, responses, solver, sparse_input, report, tracer):
        if solver == "normal":
            if sparse_input:
                X = (
                    X.to_dense()
                    if isinstance(X, CSRMatrix)
                    else np.asarray(X.todense(), dtype=np.float64)
                )
            X_aug = np.hstack([X, np.ones((X.shape[0], 1))])
            if self.validate_operators:
                self._contract_check(as_operator(X_aug), tracer)
            weights = self._ridge_normal(X_aug, responses, report)
        else:
            base, sharded = self._base_operator(X)
            try:
                augmented = AppendOnesOperator(base)
                if solver == "sketched_lsqr":
                    self._precondition = self._build_precondition(
                        augmented, report
                    )
                op = self._instrument_operator(augmented, tracer)
                weights = self._ridge_lsqr(op, responses, report)
                _note_parallel_backend(report, sharded)
            finally:
                self._precondition = None
                if sharded is not None:
                    sharded.close()
        return weights[:-1], weights[-1]

    def _build_precondition(self, op, report):
        """Sketch the actual fit operator into a right preconditioner.

        Runs on the structural operator (centering / append-ones
        wrapper, possibly around a sharded operator) *before*
        instrumentation, so the sketch pass sees the exact system the
        solver will iterate on while the flam counter only meters the
        iteration itself.  ``alpha`` is folded into the sketch Gram so
        the factor preconditions the damped system exactly.

        Returns ``None`` — degrading the fit to plain LSQR, with a
        :class:`~repro.robustness.RobustnessWarning` — when the data is
        wide (``n >= m``): the preconditioner's ``(n, n)`` Gram and
        Cholesky factor would then dominate the data itself, and its
        per-iteration triangular solves cost more than the products
        they save.
        """
        m_rows, n_cols = op.shape
        if n_cols >= m_rows:
            report.add_warning(
                f"sketched_lsqr right-preconditions through an "
                f"(n x n) sketch Gram, which only pays for tall "
                f"systems; X is {m_rows} x {n_cols} (n >= m), so the "
                "fit fell back to plain LSQR"
            )
            return None
        from repro.linalg.sketch import build_preconditioner

        return build_preconditioner(
            op,
            alpha=self.alpha,
            sketch=self.sketch,
            sketch_size=self.sketch_size,
            seed=self.sketch_seed,
        )

    # ------------------------------------------------------------------
    # Ridge solvers shared by both paths
    # ------------------------------------------------------------------
    def _ridge_normal(
        self, X: FloatArray, targets: FloatArray, report: FitReport
    ) -> FloatArray:
        """Normal equations (Eqn 20), dual (Eqn 21) when wide, on dense X.

        Both systems go through :func:`repro.robustness.guarded_solve`,
        so a rank-deficient Gram matrix (including the ``alpha = 0``
        limit of Theorem 2) degrades through the fallback chain —
        jittered ridge, then a minimum-norm LSQR rescue — instead of
        raising ``NotPositiveDefiniteError``.
        """
        m, n = X.shape
        if n <= m:
            gram = X.T @ X
            result = guarded_solve(
                gram, X.T @ targets, alpha=self.alpha, report=report
            )
            solution = result.x
        else:
            # Dual: (XXᵀ + αI) B = Ȳ in m dims, then A = Xᵀ B — exact
            # because Xᵀ(XXᵀ + αI)⁻¹ = (XᵀX + αI)⁻¹Xᵀ.
            outer = X @ X.T
            result = guarded_solve(
                outer, targets, alpha=self.alpha, report=report
            )
            solution = X.T @ result.x
        if result.fallbacks:
            report.add_warning(
                f"normal-equations solve degraded to {result.solver} "
                f"(effective_alpha={result.effective_alpha:.3g}, "
                f"condition~{result.condition_estimate:.3g})"
            )
        return solution

    def _ridge_lsqr(
        self, op, targets: FloatArray, report: FitReport
    ) -> FloatArray:
        """LSQR with damping √α over all target columns.

        The default (``block=True``) carries every column through one
        blocked Golub–Kahan iteration; ``block=False`` falls back to a
        sequential :func:`~repro.linalg.lsqr.lsqr` call per column.
        Both paths feed the same per-column diagnostics into the
        report.  When tracing is enabled, every solver iteration lands
        as an event on the enclosing ``srda.solve`` span.  (The tracer
        rides ``self._fit_tracer`` rather than the signature so that
        fault-injection wrappers around this method keep working.)
        """
        starts = self._warm_start_matrix(op.shape[1], targets.shape[1])
        damp = float(np.sqrt(self.alpha))
        tracer = getattr(self, "_fit_tracer", None)
        hook = tracer.iteration_hook() if tracer is not None else None
        precondition = getattr(self, "_precondition", None)
        if self.block:
            blocked = block_lsqr(
                op,
                targets,
                damp=damp,
                atol=self.tol,
                btol=self.tol,
                iter_lim=self.max_iter,
                X0=starts,
                on_iteration=hook,
                precondition=precondition,
            )
            weights = np.asarray(blocked.X, dtype=np.float64)
            columns = [blocked.column(j) for j in range(targets.shape[1])]
        else:
            weights = np.empty((op.shape[1], targets.shape[1]))
            columns = []
            for j in range(targets.shape[1]):
                result = lsqr(
                    op,
                    targets[:, j],
                    damp=damp,
                    atol=self.tol,
                    btol=self.tol,
                    iter_lim=self.max_iter,
                    x0=None if starts is None else starts[:, j],
                    on_iteration=hook,
                    precondition=precondition,
                )
                weights[:, j] = result.x
                columns.append(result)
        self.lsqr_iterations_ = _record_lsqr_columns(
            columns, report, self.tol, self.alpha
        )
        if precondition is not None:
            report.solver = "sketched_lsqr"
        return weights

    def _warm_start_matrix(self, n_weights: int, n_targets: int):
        """Previous solution as LSQR starting points, when compatible.

        ``partial_fit`` forces this on (``_force_warm_start``), and on
        that path a changed class count zero-pads/truncates the target
        columns instead of bailing: the leading columns stay aligned
        (exactly so when new labels sort after the old ones; otherwise
        the start is merely a worse guess — a warm start moves only the
        iteration count, never the converged solution), and brand-new
        response columns start cold at zero.
        """
        force = self._force_warm_start
        if not (self.warm_start or force) or self.components_ is None:
            return None
        previous = self.components_
        if self.centered_ is False:
            # augmented path solved for [components; intercept]
            previous = np.vstack([previous, self.intercept_[None, :]])
        if previous.shape == (n_weights, n_targets):
            return previous
        if (
            not force
            or previous.shape[0] != n_weights
            or previous.shape[1] == 0
        ):
            return None
        padded = np.zeros((n_weights, n_targets))
        width = min(previous.shape[1], n_targets)
        padded[:, :width] = previous[:, :width]
        return padded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SRDA(alpha={self.alpha}, solver={self.solver!r}, "
            f"centering={self.centering!r}, max_iter={self.max_iter})"
        )


def srda_alpha_path(
    X,
    y,
    alphas,
    centering: Union[str, bool] = "auto",
    max_iter: int = 20,
    tol: float = 1e-10,
    on_invalid: str = "raise",
    trace=None,
    config: Optional[SolverConfig] = None,
    n_jobs: Optional[int] = None,
    backend: Union[str, Backend, None] = None,
    solver: Optional[str] = None,
    sketch: Optional[str] = None,
    sketch_size: Optional[int] = None,
    sketch_seed: Optional[int] = None,
) -> List[SRDA]:
    """Fit SRDA for every ``alpha`` with ONE pass over the data.

    The Golub–Kahan basis built by LSQR depends only on the operator and
    the right-hand sides — the damping ``√α`` enters solely through the
    scalar QR recurrences.  This function therefore bidiagonalizes once
    (:class:`repro.linalg.block_lsqr.SharedBidiagonalization`,
    ``2·max_iter + 1`` block products) and replays the recurrences per
    alpha at zero additional operator cost.  Each fitted model is
    numerically identical to ``SRDA(alpha=a, solver="lsqr").fit(X, y)``
    run cold with the same ``max_iter``/``tol``.

    This is the engine behind the Fig-5 alpha sweep and
    :func:`repro.eval.model_selection.grid_search_alpha_srda`: a grid of
    nine alphas costs one fit's worth of data passes instead of nine.

    Parameters
    ----------
    X, y:
        Training data and labels, as for :meth:`SRDA.fit`.
    alphas:
        Iterable of non-negative regularization values.
    centering, max_iter, tol, on_invalid:
        As the :class:`SRDA` constructor.
    trace:
        Observability control, as :class:`SRDA`'s ``trace`` parameter.
        When enabled the sweep emits one ``srda.alpha_path`` span with
        a nested ``srda.bidiagonalize`` span (the single data pass) and
        one ``srda.replay`` span per alpha (the zero-cost recurrence
        replays); with ``solver="sketched_lsqr"`` the nested spans are
        one ``sketch.build`` and one ``srda.sketched_solve`` per alpha.
    config:
        A :class:`~repro.core.solver_config.SolverConfig`; ``None``
        means ``SolverConfig(solver="lsqr")``.  ``config.solver`` must
        be ``"lsqr"`` or ``"sketched_lsqr"``: ``"lsqr"`` shares one
        bidiagonalization and replays it per alpha — total data passes
        ``2·max_iter + 1`` regardless of grid size — while
        ``"sketched_lsqr"`` shares one sketch pass and its Gram
        instead, each alpha paying only an ``n × n`` Cholesky of
        ``gram + α I`` plus a *short* preconditioned solve (typically
        2–5× fewer iterations; solves each alpha exactly where the
        replayed basis can degrade at extreme damping).
        ``config.n_jobs``/``config.backend`` parallelize the shared
        data pass (and, on the sketched path, the per-alpha solves);
        the sketch fields steer the sketched engine.
    n_jobs, backend, solver, sketch, sketch_size, sketch_seed:
        Deprecated keyword aliases for the corresponding ``config``
        fields; passing any emits a
        :class:`~repro.core.estimator.ReproDeprecationWarning` and
        overrides that field.

    Returns
    -------
    list of fitted :class:`SRDA`, one per alpha, in input order.
    """
    alphas = [float(a) for a in alphas]
    if any(a < 0 for a in alphas):
        raise ValueError("alpha must be non-negative")
    if config is None:
        config = SolverConfig(solver="lsqr")
    legacy = {
        "solver": solver,
        "sketch": sketch,
        "sketch_size": sketch_size,
        "sketch_seed": sketch_seed,
        "n_jobs": n_jobs,
        "backend": backend,
    }
    for name, value in legacy.items():
        if value is not None:
            warnings.warn(
                f"srda_alpha_path({name}=...) is deprecated; pass "
                f"config=SolverConfig({name}=...) instead",
                ReproDeprecationWarning,
                stacklevel=2,
            )
    config = config.merge_legacy(legacy)
    solver = config.solver
    sketch = config.sketch
    sketch_size = config.sketch_size
    sketch_seed = config.sketch_seed
    n_jobs = config.n_jobs
    backend = config.backend
    if solver not in ("lsqr", "sketched_lsqr"):
        raise ValueError(
            f"alpha-path solver must be 'lsqr' or 'sketched_lsqr', "
            f"got {solver!r}"
        )
    if not alphas:
        return []
    tracer = resolve_tracer(trace)

    def make_model(alpha: float) -> SRDA:
        return SRDA(
            alpha=alpha,
            config=config,
            centering=centering,
            max_iter=max_iter,
            tol=tol,
            on_invalid=on_invalid,
        )

    X, classes, y_indices = validate_data(
        X,
        y,
        on_invalid=on_invalid,
        min_classes=1 if on_invalid == "warn" else 2,
    )
    n_classes = classes.shape[0]
    if n_classes < 2:
        # Degenerate one-class data: nothing to share, every alpha
        # yields the same zero-dimensional embedding.
        return [make_model(alpha).fit(X, y) for alpha in alphas]

    counts = np.bincount(y_indices, minlength=n_classes)
    singletons = int(np.sum(counts == 1))
    responses = generate_responses(y_indices, n_classes)

    sparse_input = isinstance(X, CSRMatrix) or is_sparse(X)
    center = not sparse_input if centering == "auto" else bool(centering)
    if backend is None and effective_n_jobs(n_jobs) <= 1:
        base = as_operator(X)
        sharded = None
    else:
        sharded = ShardedOperator(X, backend=backend, n_jobs=n_jobs)
        base = sharded
    if center:
        op = CenteringOperator(base)
        mean = op.column_means
    else:
        op = AppendOnesOperator(base)
        mean = None

    # Per-class means of the raw features (one block product): the
    # embedding centroid of class k is linear in the class mean, so
    # every per-alpha model gets its centroids without another pass.
    indicator = np.zeros((X.shape[0], n_classes))
    indicator[np.arange(X.shape[0]), y_indices] = 1.0 / counts[y_indices]
    with kernels.use_backend(config.kernel_backend):
        class_means = base.rmatmat(indicator).T

    with kernels.use_backend(config.kernel_backend), tracer.span(
        "srda.alpha_path",
        n_alphas=len(alphas),
        max_iter=int(max_iter),
        solver=solver,
    ):
        backend_report = FitReport()
        models: List[SRDA] = []

        engine = solver
        if solver == "sketched_lsqr":
            op_rows, op_cols = op.shape
            if op_cols >= op_rows:
                backend_report.add_warning(
                    f"sketched_lsqr right-preconditions through an "
                    f"(n x n) sketch Gram, which only pays for tall "
                    f"systems; X is {op_rows} x {op_cols} (n >= m), "
                    "so the alpha path fell back to the replayed "
                    "bidiagonalization engine"
                )
                engine = "lsqr"

        def assemble(alpha: float, weights, columns) -> None:
            # Shared per-alpha model assembly: identical for the
            # replayed and the sketched engines, so the fitted models
            # differ only in how the weights were produced.
            model = make_model(alpha)
            report = FitReport()
            report.requested_solver = solver
            report.backend = backend_report.backend
            for note in backend_report.warnings:
                # Already emitted once for the shared pass; the
                # per-alpha copies are record-only.
                report.add_warning(note, emit=False)
            if singletons:
                report.add_warning(
                    f"{singletons} of {n_classes} classes have a single "
                    "sample; their within-class scatter is zero and the fit "
                    "may overfit those classes",
                    emit=on_invalid == "warn",
                )
            model.lsqr_iterations_ = _record_lsqr_columns(
                columns, report, tol, alpha
            )
            if engine == "sketched_lsqr":
                report.solver = "sketched_lsqr"
            if center:
                components = weights
                intercept = -(mean @ components)
            else:
                components = weights[:-1]
                intercept = weights[-1]
            model.fit_report_ = report
            model.classes_ = classes
            model.responses_ = responses
            model.solver_used_ = engine
            model.centered_ = center
            model.components_ = components
            model.intercept_ = intercept
            model.centroids_ = class_means @ components + intercept[None, :]
            models.append(model)

        if engine == "sketched_lsqr":
            from repro.linalg.sketch import (
                default_sketch_size,
                preconditioner_from_gram,
                sketch_apply,
                sketch_operator,
            )

            try:
                m_rows, n_cols = op.shape
                size = (
                    default_sketch_size(m_rows, n_cols)
                    if sketch_size is None
                    else max(1, min(int(sketch_size), m_rows))
                )
                S = sketch_operator(sketch, m_rows, size, seed=sketch_seed)
                # One sketch pass and one Gram serve the whole grid;
                # each alpha below only re-factors gram + alpha*I.
                with tracer.span(
                    "sketch.build",
                    kind=S.kind,
                    sketch_size=int(size),
                    rows=int(m_rows),
                    cols=int(n_cols),
                    alpha=0.0,
                ):
                    sketched = sketch_apply(S, op)
                    gram = sketched.T @ sketched
                _note_parallel_backend(backend_report, sharded)
                for alpha in alphas:
                    with tracer.span("srda.sketched_solve", alpha=alpha):
                        pre = preconditioner_from_gram(
                            gram,
                            alpha=alpha,
                            kind=S.kind,
                            sketch_size=size,
                        )
                        solved = block_lsqr(
                            op,
                            responses,
                            damp=float(np.sqrt(alpha)),
                            atol=tol,
                            btol=tol,
                            iter_lim=max_iter,
                            on_iteration=tracer.iteration_hook(),
                            precondition=pre,
                        )
                    weights = np.asarray(solved.X, dtype=np.float64)
                    columns = [
                        solved.column(j) for j in range(responses.shape[1])
                    ]
                    assemble(alpha, weights, columns)
            finally:
                # Unlike the replayed path, the per-alpha solves here
                # DO touch the data — the sharded operator must stay
                # open until the whole grid is solved.
                if sharded is not None:
                    sharded.close()
            return models

        try:
            with tracer.span("srda.bidiagonalize"):
                shared = SharedBidiagonalization(
                    op, responses, iter_lim=max_iter
                )
            _note_parallel_backend(backend_report, sharded)
        finally:
            # The per-alpha replays touch no data — the sharded
            # operator (and any pool it owns) can go away right here.
            if sharded is not None:
                sharded.close()

        for alpha in alphas:
            with tracer.span("srda.replay", alpha=alpha):
                solved = shared.solve(
                    damp=float(np.sqrt(alpha)),
                    atol=tol,
                    btol=tol,
                    on_iteration=tracer.iteration_hook(),
                )
            weights = np.asarray(solved.X, dtype=np.float64)
            columns = [solved.column(j) for j in range(responses.shape[1])]
            assemble(alpha, weights, columns)
    return models
