"""SRDA — Spectral Regression Discriminant Analysis (Section III).

The two-step algorithm:

1. **Responses** (spectral step): the ``c - 1`` closed-form eigenvectors
   of the LDA graph matrix, from :mod:`repro.core.responses`.
2. **Regularized regression** (Eqn 14/19): for each response ``ȳ``,

       a = argmin_a  Σᵢ (aᵀxᵢ + b - ȳᵢ)² + α ‖a‖².

Centering vs bias absorption (Section III-B).  Eqn 14 penalizes only the
projection vector ``a``, with the offset ``b`` free.  There are two ways
to realize that:

- **center the data** — regress ``ȳ`` on ``X - μ`` (the responses are
  already orthogonal to the all-ones vector, so they need no centering)
  and set ``b = -μᵀa``.  Exactly Eqn 14; used for *dense* input, as the
  reference implementation does.
- **append a constant 1 feature** — the trick the paper introduces for
  sparse data, where the centered matrix would be dense and blow the
  memory budget.  The absorbed bias then falls inside the penalty — a
  deliberate approximation the paper accepts for the sparse case.
  Realized matrix-free by :class:`AppendOnesOperator`.

``centering="auto"`` (default) picks centering for dense input and
bias absorption for sparse input.  For dense data the centering is
explicit; for sparse data with ``centering=True`` the implicit
:class:`CenteringOperator` keeps the matrix untouched (only LSQR can run
this path).

Two solvers, matching Section III-C:

- ``"normal"`` — normal equations ``(X̄ᵀX̄ + αI) a = X̄ᵀȳ`` (Eqn 20)
  factored once by our Cholesky and reused for all ``c - 1`` right-hand
  sides.  When ``n > m`` the dual identity
  ``(X̄ᵀX̄ + αI)⁻¹X̄ᵀ = X̄ᵀ(X̄X̄ᵀ + αI)⁻¹`` (the finite-α form of Eqn 21)
  switches to an ``m × m`` system.
- ``"lsqr"`` — the Paige–Saunders iteration with ``damp = √α``, touching
  the data only through mat-vecs: the linear-time path.  The paper runs
  15–20 iterations; ``max_iter`` defaults to 20.

``solver="auto"`` picks LSQR for sparse input and for problems where
``min(m, n)`` is large, normal equations otherwise — mirroring how the
paper ran its experiments (closed form on PIE/Isolet/MNIST, LSQR on
20Newsgroups).
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro._typing import FloatArray

from repro.core.base import LinearEmbedder, validate_data
from repro.core.responses import generate_responses
from repro.linalg.block_lsqr import SharedBidiagonalization, block_lsqr
from repro.linalg.lsqr import FAILURE_ISTOPS, ISTOP_REASONS, lsqr
from repro.linalg.operators import (
    AppendOnesOperator,
    CenteringOperator,
    as_operator,
)
from repro.linalg.sparse import CSRMatrix, is_sparse
from repro.observability import Tracer, resolve_tracer
from repro.parallel import Backend, ShardedOperator, effective_n_jobs
from repro.robustness import FitReport, guarded_solve

#: Above this min(m, n) the Gram matrix of the normal-equations path gets
#: expensive (cubic factor); "auto" switches to LSQR.
_AUTO_NORMAL_LIMIT = 2000


def _note_parallel_backend(report: FitReport, sharded) -> None:
    """Record which backend served the products (and any degradation).

    Called after the solve, before the sharded operator closes.  A
    distributed fit that lost its cluster mid-solve records the full
    ladder (``"distributed->serial"``) plus a
    :class:`~repro.robustness.RobustnessWarning` — the result is still
    bitwise correct (same shard layout), but the operator should know
    the cluster died under them.
    """
    if sharded is None:
        return
    degraded_from = getattr(sharded, "degraded_from", None)
    if degraded_from is None:
        report.backend = sharded.backend.name
        return
    report.backend = f"{degraded_from}->{sharded.backend.name}"
    report.add_warning(
        f"distributed cluster became unhealthy mid-fit; products fell "
        f"back to the {sharded.backend.name} backend "
        f"({sharded.degradation_reason}); results are unchanged (the "
        "shard layout, and therefore every bit of every product, does "
        "not depend on the backend)"
    )


def _record_lsqr_columns(columns, report: FitReport, tol: float, alpha: float):
    """Fold per-column LSQR results into a :class:`FitReport`.

    Shared by the blocked and sequential solver paths and by
    :func:`srda_alpha_path`, so the diagnostics and warning text are
    identical no matter which engine produced the columns.  Returns the
    per-column iteration counts.
    """
    iterations: List[int] = []
    istops: List[int] = []
    residuals: List[float] = []
    for j, result in enumerate(columns):
        iterations.append(result.itn)
        istops.append(result.istop)
        residuals.append(float(result.r2norm))
        if result.istop in FAILURE_ISTOPS:
            report.converged = False
            report.add_warning(
                f"LSQR failed on response {j}: "
                f"istop={result.istop} ({ISTOP_REASONS[result.istop]}) "
                f"after {result.itn} iterations, r2norm={result.r2norm:.3g}"
            )
        elif result.istop == 7 and tol > 0:
            # Hitting the cap is only noteworthy when the caller
            # asked for tolerance-based convergence (tol=0 runs a
            # fixed iteration count by design, per the paper).
            report.add_warning(
                f"LSQR hit the iteration limit on response {j} "
                f"before reaching tol={tol:g}",
                emit=False,
            )
    report.solver = "lsqr"
    report.lsqr_istop = istops
    report.lsqr_iterations = iterations
    report.lsqr_residuals = residuals
    report.effective_alpha = alpha
    return iterations


class SRDA(LinearEmbedder):
    """Spectral Regression Discriminant Analysis.

    Parameters
    ----------
    alpha:
        Tikhonov regularization ``α ≥ 0``.  The paper uses 1.0 for all
        reported tables and shows (Fig 5) that performance is flat over
        a wide range.  ``alpha = 0`` reproduces plain LDA directions in
        the linearly independent case (Corollary 3); the normal-equation
        path then falls back to a minimum-norm least-squares solve since
        the Gram matrix may be singular.
    solver:
        ``"normal"``, ``"lsqr"``, ``"sketched_lsqr"``, or ``"auto"``
        (see module docstring).  ``"sketched_lsqr"`` is the LSQR path
        plus a sketch-and-precondition step
        (:func:`repro.linalg.sketch.build_preconditioner`): one pass
        sketches the fit operator, an ``n × n`` Cholesky factor of the
        regularized sketch Gram right-preconditions the iteration, and
        the per-response iteration counts typically drop 2–5× at equal
        accuracy on ill-conditioned data.  Deterministic under a fixed
        ``sketch_seed`` (bitwise, including with ``n_jobs > 1``).
        Only pays for *tall* systems: on wide data (``n >= m``, e.g.
        text grids) the ``(n, n)`` Gram would dominate the data, so
        the fit degrades to plain LSQR with a
        :class:`~repro.robustness.RobustnessWarning` and
        ``solver_used_ == "lsqr"``.
    centering:
        ``"auto"`` (center dense input, append-ones for sparse), or an
        explicit ``True``/``False``.  ``True`` is exactly Eqn 14
        (intercept outside the penalty); ``False`` is the Section III-B
        bias-absorption trick (intercept inside the penalty).
    max_iter:
        LSQR iteration cap (paper: 15–20 suffice).
    tol:
        LSQR relative tolerance (applied as both atol and btol).  Set to
        0 to force exactly ``max_iter`` iterations, as the paper's fixed
        iteration count does.
    warm_start:
        When True and the model was fitted before with compatible
        shapes, the LSQR path starts each solve from the previous
        projection vectors.  This is the incremental-update story the
        paper's IDR/QR comparison is named for: when data arrives in
        batches, refitting converges in a handful of iterations instead
        of starting cold.  Ignored by the normal-equations solver.
    block:
        When True (default) the LSQR path solves all ``c - 1`` response
        columns in one blocked Golub–Kahan iteration
        (:func:`repro.linalg.block_lsqr.block_lsqr`): two sparse
        mat-mats per iteration instead of ``2(c-1)`` mat-vecs, so the
        data streams through memory once per iteration regardless of
        the number of classes.  ``block=False`` is the escape hatch
        back to one :func:`~repro.linalg.lsqr.lsqr` call per column.
        Per-column termination codes, damping, warm starts, and the
        istop-8/9 failure semantics are identical on both paths.
    on_invalid:
        Degradation policy for degenerate input: ``"raise"`` (default)
        rejects non-finite features and single-class problems;
        ``"warn"`` sanitizes non-finite entries, accepts a single class
        (producing a zero-dimensional embedding), and emits
        :class:`~repro.robustness.RobustnessWarning` for each
        degradation.
    trace:
        Observability control (see :mod:`repro.observability`):
        ``None`` uses the process-wide tracer (disabled unless
        ``repro.observability.configure()`` ran); ``True`` attaches a
        fresh in-memory tracer exposed as ``tracer_`` after fit;
        ``False`` disables tracing for this estimator regardless of the
        global; a ``Tracer`` or ``Sink`` is used directly.  When
        enabled, ``fit`` emits nested spans (``srda.fit`` →
        validate/responses/solve/embed), per-iteration LSQR events, and
        an ``srda.flam`` counter.
    validate_operators:
        When True, ``fit`` runs
        :func:`repro.analysis.contracts.verify_operator` on the actual
        operator it is about to solve with (adjointness, linearity,
        shape contracts) and emits an ``srda.contract_check`` span.
        Raises :class:`~repro.exceptions.ContractViolationError` on a
        violation — the debug switch for custom operators.
    n_jobs:
        Worker count for the LSQR path's operator products.  ``None``
        or 1 keeps the direct single-core kernels; ``k > 1`` (or
        ``-1`` for every core) routes products through a row-sharded
        operator (:class:`repro.parallel.ShardedOperator`) on a thread
        backend.  The shard layout depends only on the data shape,
        never on the worker count, so every parallel fit is bitwise
        identical at any ``n_jobs`` and on any backend; against the
        direct single-core path the fit agrees to the fold tolerance
        of the sharded block products (~1e-15 per product).  Ignored
        by the normal-equations solver.
    backend:
        Execution backend for the sharded products: ``None`` (pick
        from ``n_jobs``), a name (``"serial"``/``"thread"``/
        ``"process"``/``"distributed"``), or a live
        :class:`repro.parallel.Backend` — the instance is shared, not
        closed, so one process pool (or worker cluster) can serve many
        fits.  ``"distributed"`` ships shards once to supervised
        localhost worker processes and streams only the ``c-1``
        operand/result vectors per iteration; if the cluster becomes
        unhealthy mid-fit the products fall back to a local backend —
        recorded in ``fit_report_.backend`` as e.g.
        ``"distributed->serial"`` — with bitwise-identical results.
    sketch:
        Sketch family for ``solver="sketched_lsqr"``: ``"countsketch"``
        (default; ``O(nnz)`` build), ``"sparse_sign"``, or ``"srht"``.
        Ignored by the other solvers.
    sketch_size:
        Rows of the sketch; ``None`` (default) uses
        :func:`repro.linalg.sketch.default_sketch_size` (≈ ``4 n``,
        capped at ``m``).
    sketch_seed:
        Seed of the sketch draw.  A fixed seed makes the whole sketched
        fit bitwise reproducible.

    Attributes
    ----------
    components_:
        ``(n, c-1)`` projection matrix.
    intercept_:
        Length ``c-1`` offset (``-μᵀA`` when centering, the absorbed
        bias weight otherwise).
    responses_:
        The ``(m, c-1)`` spectral responses used during fit.
    solver_used_:
        Which solver actually ran ("normal", "lsqr", or
        "sketched_lsqr"; a degraded sketched fit reports "lsqr", with
        the request kept in ``fit_report_.requested_solver``).
    centered_:
        Whether the fit used centering (True) or bias absorption.
    lsqr_iterations_:
        Iterations used per response column (LSQR path only).
    fit_report_:
        :class:`~repro.robustness.FitReport` with the solver actually
        used, any fallback-chain steps, the condition estimate, the
        effective α, and per-response LSQR termination codes.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        solver: str = "auto",
        centering: Union[str, bool] = "auto",
        max_iter: int = 20,
        tol: float = 1e-10,
        warm_start: bool = False,
        block: bool = True,
        on_invalid: str = "raise",
        trace=None,
        validate_operators: bool = False,
        n_jobs: Optional[int] = None,
        backend: Union[str, Backend, None] = None,
        sketch: str = "countsketch",
        sketch_size: Optional[int] = None,
        sketch_seed: int = 0,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if solver not in ("auto", "normal", "lsqr", "sketched_lsqr"):
            raise ValueError(f"unknown solver {solver!r}")
        if centering not in ("auto", True, False):
            raise ValueError("centering must be 'auto', True, or False")
        if max_iter < 1:
            raise ValueError("max_iter must be positive")
        if on_invalid not in ("raise", "warn"):
            raise ValueError("on_invalid must be 'raise' or 'warn'")
        effective_n_jobs(n_jobs)  # validate early; stored verbatim below
        if backend is not None and not isinstance(backend, (str, Backend)):
            raise ValueError(
                "backend must be None, a backend name, or a Backend"
            )
        from repro.linalg.sketch import SKETCH_KINDS

        if sketch not in SKETCH_KINDS:
            raise ValueError(
                f"unknown sketch {sketch!r}; expected one of {SKETCH_KINDS}"
            )
        if sketch_size is not None and sketch_size < 1:
            raise ValueError("sketch_size must be positive or None")
        self.alpha = float(alpha)
        self.solver = solver
        self.centering = centering
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.warm_start = bool(warm_start)
        self.block = bool(block)
        self.on_invalid = on_invalid
        self.trace = trace
        self.validate_operators = bool(validate_operators)
        self.n_jobs = n_jobs
        self.backend = backend
        self.sketch = sketch
        self.sketch_size = sketch_size
        self.sketch_seed = int(sketch_seed)
        self.tracer_: Optional[Tracer] = None
        self.components_ = None
        self.intercept_ = None
        self.classes_ = None
        self.centroids_ = None
        self.responses_ = None
        self.solver_used_: Optional[str] = None
        self.centered_: Optional[bool] = None
        self.lsqr_iterations_: Optional[List[int]] = None
        self.fit_report_: Optional[FitReport] = None

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "SRDA":
        """Learn the ``c - 1`` projective functions from labeled data.

        Complexity: O(iters·c·(nnz + m + n) + m·c^2) — the paper's
        linear-time claim: response generation (``m·c²``) plus
        ``c - 1`` regressions at ``2·nnz + 3m + 5n`` flam per LSQR
        iteration.  Dense inputs have ``nnz = m·n``.
        """
        tracer = resolve_tracer(self.trace)
        self.tracer_ = tracer if tracer.enabled else None
        self._fit_tracer = tracer
        with tracer.span(
            "srda.fit", alpha=self.alpha, solver=self.solver
        ) as fit_span:
            return self._fit_phases(X, y, tracer, fit_span)

    def _fit_phases(self, X, y, tracer: Tracer, fit_span) -> "SRDA":
        """The fit pipeline, one observability span per phase."""
        report = FitReport()
        self.fit_report_ = report
        with tracer.span("srda.validate"):
            X, classes, y_indices = validate_data(
                X,
                y,
                on_invalid=self.on_invalid,
                min_classes=1 if self.on_invalid == "warn" else 2,
            )
        self.classes_ = classes
        n_classes = classes.shape[0]
        if n_classes < 2:
            return self._fit_single_class(X, y_indices, report)
        counts = np.bincount(y_indices, minlength=n_classes)
        singletons = int(np.sum(counts == 1))
        if singletons:
            report.add_warning(
                f"{singletons} of {n_classes} classes have a single "
                "sample; their within-class scatter is zero and the fit "
                "may overfit those classes",
                emit=self.on_invalid == "warn",
            )
        with tracer.span("srda.responses", n_classes=int(n_classes)):
            responses = generate_responses(y_indices, n_classes)
        self.responses_ = responses

        sparse_input = isinstance(X, CSRMatrix) or is_sparse(X)
        solver = self._resolve_solver(X, sparse_input)
        report.requested_solver = solver
        center = (
            not sparse_input if self.centering == "auto" else bool(self.centering)
        )
        if center and sparse_input and solver == "normal":
            raise ValueError(
                "centering sparse input densifies it; use solver='lsqr' "
                "(implicit centering) or centering=False"
            )
        fit_span.set_attribute("solver_used", solver)
        fit_span.set_attribute("shape", [int(s) for s in X.shape])

        self.lsqr_iterations_ = None
        with tracer.span("srda.solve", solver=solver, centered=center):
            if center:
                components, intercept = self._fit_centered(
                    X, responses, solver, sparse_input, report, tracer
                )
            else:
                components, intercept = self._fit_augmented(
                    X, responses, solver, sparse_input, report, tracer
                )
        if solver == "sketched_lsqr" and report.solver == "lsqr":
            # _build_precondition refused (wide data) and the fit
            # degraded to plain LSQR; solver_used_ reports what ran,
            # report.requested_solver keeps what was asked for.
            solver = "lsqr"
            fit_span.set_attribute("solver_used", solver)
        self.solver_used_ = solver
        self.centered_ = center
        self.components_ = components
        self.intercept_ = intercept
        with tracer.span("srda.embed"):
            self._store_centroids(self.transform(X), y_indices)
        return self

    def _contract_check(self, op, tracer: Tracer) -> None:
        """Run :func:`verify_operator` on the actual solve operator."""
        from repro.analysis.contracts import verify_operator

        with tracer.span(
            "srda.contract_check", operator=type(op).__name__
        ) as span:
            contract = verify_operator(op)
            span.set_attribute("checks", len(contract.checks))
            span.set_attribute("ok", contract.ok)

    def _instrument_operator(self, op, tracer: Tracer):
        """Contract-check and/or flam-count the operator fit solves with."""
        if self.validate_operators:
            self._contract_check(op, tracer)
        if tracer.enabled:
            from repro.complexity.counter import FlamCountingOperator

            op = FlamCountingOperator(
                op, metrics=tracer.metrics, metric="srda.flam"
            )
        return op

    def _base_operator(self, X):
        """Data operator for the LSQR path, sharded when parallel.

        Returns ``(op, sharded)`` where ``sharded`` is the
        :class:`~repro.parallel.ShardedOperator` to close after the
        solve, or ``None`` on the direct path.  The direct path is
        byte-for-byte the pre-parallel code — ``n_jobs=None`` adds no
        wrapper and no overhead.
        """
        if self.backend is None and effective_n_jobs(self.n_jobs) <= 1:
            return as_operator(X), None
        sharded = ShardedOperator(X, backend=self.backend, n_jobs=self.n_jobs)
        return sharded, sharded

    def _fit_single_class(self, X, y_indices, report: FitReport) -> "SRDA":
        """Degenerate one-class fit: a zero-dimensional embedding.

        With ``c = 1`` there are ``c - 1 = 0`` discriminant directions;
        the model still supports ``transform`` (an ``(m, 0)`` embedding)
        and ``predict`` (always the single class) so pipelines survive
        pathological splits.
        """
        n = X.shape[1]
        report.add_warning(
            "only one class present; fitting a zero-dimensional "
            "embedding (predict will always return that class)"
        )
        report.solver = "degenerate"
        report.requested_solver = self.solver
        self.responses_ = np.zeros((X.shape[0], 0))
        self.solver_used_ = None
        self.centered_ = False
        self.components_ = np.zeros((n, 0))
        self.intercept_ = np.zeros(0)
        self.lsqr_iterations_ = None
        self._store_centroids(np.zeros((X.shape[0], 0)), y_indices)
        return self

    def _resolve_solver(self, X, sparse_input: bool) -> str:
        if self.solver != "auto":
            return self.solver
        if sparse_input:
            return "lsqr"
        m, n = X.shape
        return "normal" if min(m, n) <= _AUTO_NORMAL_LIMIT else "lsqr"

    # ------------------------------------------------------------------
    # Centered path — exactly Eqn 14 (dense data, or sparse via LSQR)
    # ------------------------------------------------------------------
    def _fit_centered(self, X, responses, solver, sparse_input, report, tracer):
        if solver == "normal":
            X = np.asarray(X, dtype=np.float64)
            mean = X.mean(axis=0)
            centered = X - mean
            zero_var = int(np.sum(~centered.any(axis=0)))
            if zero_var:
                report.add_warning(
                    f"{zero_var} features have zero variance; they carry "
                    "no discriminant information and make the Gram "
                    "matrix singular at alpha=0",
                    emit=self.on_invalid == "warn",
                )
            if self.validate_operators:
                self._contract_check(as_operator(centered), tracer)
            components = self._ridge_normal(centered, responses, report)
        else:
            base, sharded = self._base_operator(X)
            try:
                centering_op = CenteringOperator(base)
                mean = centering_op.column_means
                if solver == "sketched_lsqr":
                    self._precondition = self._build_precondition(
                        centering_op, report
                    )
                op = self._instrument_operator(centering_op, tracer)
                components = self._ridge_lsqr(op, responses, report)
                _note_parallel_backend(report, sharded)
            finally:
                self._precondition = None
                if sharded is not None:
                    sharded.close()
        intercept = -(mean @ components)
        return components, intercept

    # ------------------------------------------------------------------
    # Augmented path — Section III-B bias absorption
    # ------------------------------------------------------------------
    def _fit_augmented(self, X, responses, solver, sparse_input, report, tracer):
        if solver == "normal":
            if sparse_input:
                X = (
                    X.to_dense()
                    if isinstance(X, CSRMatrix)
                    else np.asarray(X.todense(), dtype=np.float64)
                )
            X_aug = np.hstack([X, np.ones((X.shape[0], 1))])
            if self.validate_operators:
                self._contract_check(as_operator(X_aug), tracer)
            weights = self._ridge_normal(X_aug, responses, report)
        else:
            base, sharded = self._base_operator(X)
            try:
                augmented = AppendOnesOperator(base)
                if solver == "sketched_lsqr":
                    self._precondition = self._build_precondition(
                        augmented, report
                    )
                op = self._instrument_operator(augmented, tracer)
                weights = self._ridge_lsqr(op, responses, report)
                _note_parallel_backend(report, sharded)
            finally:
                self._precondition = None
                if sharded is not None:
                    sharded.close()
        return weights[:-1], weights[-1]

    def _build_precondition(self, op, report):
        """Sketch the actual fit operator into a right preconditioner.

        Runs on the structural operator (centering / append-ones
        wrapper, possibly around a sharded operator) *before*
        instrumentation, so the sketch pass sees the exact system the
        solver will iterate on while the flam counter only meters the
        iteration itself.  ``alpha`` is folded into the sketch Gram so
        the factor preconditions the damped system exactly.

        Returns ``None`` — degrading the fit to plain LSQR, with a
        :class:`~repro.robustness.RobustnessWarning` — when the data is
        wide (``n >= m``): the preconditioner's ``(n, n)`` Gram and
        Cholesky factor would then dominate the data itself, and its
        per-iteration triangular solves cost more than the products
        they save.
        """
        m_rows, n_cols = op.shape
        if n_cols >= m_rows:
            report.add_warning(
                f"sketched_lsqr right-preconditions through an "
                f"(n x n) sketch Gram, which only pays for tall "
                f"systems; X is {m_rows} x {n_cols} (n >= m), so the "
                "fit fell back to plain LSQR"
            )
            return None
        from repro.linalg.sketch import build_preconditioner

        return build_preconditioner(
            op,
            alpha=self.alpha,
            sketch=self.sketch,
            sketch_size=self.sketch_size,
            seed=self.sketch_seed,
        )

    # ------------------------------------------------------------------
    # Ridge solvers shared by both paths
    # ------------------------------------------------------------------
    def _ridge_normal(
        self, X: FloatArray, targets: FloatArray, report: FitReport
    ) -> FloatArray:
        """Normal equations (Eqn 20), dual (Eqn 21) when wide, on dense X.

        Both systems go through :func:`repro.robustness.guarded_solve`,
        so a rank-deficient Gram matrix (including the ``alpha = 0``
        limit of Theorem 2) degrades through the fallback chain —
        jittered ridge, then a minimum-norm LSQR rescue — instead of
        raising ``NotPositiveDefiniteError``.
        """
        m, n = X.shape
        if n <= m:
            gram = X.T @ X
            result = guarded_solve(
                gram, X.T @ targets, alpha=self.alpha, report=report
            )
            solution = result.x
        else:
            # Dual: (XXᵀ + αI) B = Ȳ in m dims, then A = Xᵀ B — exact
            # because Xᵀ(XXᵀ + αI)⁻¹ = (XᵀX + αI)⁻¹Xᵀ.
            outer = X @ X.T
            result = guarded_solve(
                outer, targets, alpha=self.alpha, report=report
            )
            solution = X.T @ result.x
        if result.fallbacks:
            report.add_warning(
                f"normal-equations solve degraded to {result.solver} "
                f"(effective_alpha={result.effective_alpha:.3g}, "
                f"condition~{result.condition_estimate:.3g})"
            )
        return solution

    def _ridge_lsqr(
        self, op, targets: FloatArray, report: FitReport
    ) -> FloatArray:
        """LSQR with damping √α over all target columns.

        The default (``block=True``) carries every column through one
        blocked Golub–Kahan iteration; ``block=False`` falls back to a
        sequential :func:`~repro.linalg.lsqr.lsqr` call per column.
        Both paths feed the same per-column diagnostics into the
        report.  When tracing is enabled, every solver iteration lands
        as an event on the enclosing ``srda.solve`` span.  (The tracer
        rides ``self._fit_tracer`` rather than the signature so that
        fault-injection wrappers around this method keep working.)
        """
        starts = self._warm_start_matrix(op.shape[1], targets.shape[1])
        damp = float(np.sqrt(self.alpha))
        tracer = getattr(self, "_fit_tracer", None)
        hook = tracer.iteration_hook() if tracer is not None else None
        precondition = getattr(self, "_precondition", None)
        if self.block:
            blocked = block_lsqr(
                op,
                targets,
                damp=damp,
                atol=self.tol,
                btol=self.tol,
                iter_lim=self.max_iter,
                X0=starts,
                on_iteration=hook,
                precondition=precondition,
            )
            weights = np.asarray(blocked.X, dtype=np.float64)
            columns = [blocked.column(j) for j in range(targets.shape[1])]
        else:
            weights = np.empty((op.shape[1], targets.shape[1]))
            columns = []
            for j in range(targets.shape[1]):
                result = lsqr(
                    op,
                    targets[:, j],
                    damp=damp,
                    atol=self.tol,
                    btol=self.tol,
                    iter_lim=self.max_iter,
                    x0=None if starts is None else starts[:, j],
                    on_iteration=hook,
                    precondition=precondition,
                )
                weights[:, j] = result.x
                columns.append(result)
        self.lsqr_iterations_ = _record_lsqr_columns(
            columns, report, self.tol, self.alpha
        )
        if precondition is not None:
            report.solver = "sketched_lsqr"
        return weights

    def _warm_start_matrix(self, n_weights: int, n_targets: int):
        """Previous solution as LSQR starting points, when compatible."""
        if not self.warm_start or self.components_ is None:
            return None
        previous = self.components_
        if self.centered_ is False:
            # augmented path solved for [components; intercept]
            previous = np.vstack([previous, self.intercept_[None, :]])
        if previous.shape != (n_weights, n_targets):
            return None
        return previous

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SRDA(alpha={self.alpha}, solver={self.solver!r}, "
            f"centering={self.centering!r}, max_iter={self.max_iter})"
        )


def srda_alpha_path(
    X,
    y,
    alphas,
    centering: Union[str, bool] = "auto",
    max_iter: int = 20,
    tol: float = 1e-10,
    on_invalid: str = "raise",
    trace=None,
    n_jobs: Optional[int] = None,
    backend: Union[str, Backend, None] = None,
    solver: str = "lsqr",
    sketch: str = "countsketch",
    sketch_size: Optional[int] = None,
    sketch_seed: int = 0,
) -> List[SRDA]:
    """Fit SRDA for every ``alpha`` with ONE pass over the data.

    The Golub–Kahan basis built by LSQR depends only on the operator and
    the right-hand sides — the damping ``√α`` enters solely through the
    scalar QR recurrences.  This function therefore bidiagonalizes once
    (:class:`repro.linalg.block_lsqr.SharedBidiagonalization`,
    ``2·max_iter + 1`` block products) and replays the recurrences per
    alpha at zero additional operator cost.  Each fitted model is
    numerically identical to ``SRDA(alpha=a, solver="lsqr").fit(X, y)``
    run cold with the same ``max_iter``/``tol``.

    This is the engine behind the Fig-5 alpha sweep and
    :func:`repro.eval.model_selection.grid_search_alpha_srda`: a grid of
    nine alphas costs one fit's worth of data passes instead of nine.

    Parameters
    ----------
    X, y:
        Training data and labels, as for :meth:`SRDA.fit`.
    alphas:
        Iterable of non-negative regularization values.
    centering, max_iter, tol, on_invalid:
        As the :class:`SRDA` constructor.
    trace:
        Observability control, as :class:`SRDA`'s ``trace`` parameter.
        When enabled the sweep emits one ``srda.alpha_path`` span with
        a nested ``srda.bidiagonalize`` span (the single data pass) and
        one ``srda.replay`` span per alpha (the zero-cost recurrence
        replays); with ``solver="sketched_lsqr"`` the nested spans are
        one ``sketch.build`` and one ``srda.sketched_solve`` per alpha.
    n_jobs, backend:
        Parallel operator products for the shared data pass, exactly as
        :class:`SRDA`'s parameters of the same names.  On the ``"lsqr"``
        path the replayed recurrences touch no data, so only the shared
        bidiagonalization speeds up; on the ``"sketched_lsqr"`` path the
        per-alpha solves also run through the sharded operator.
    solver:
        ``"lsqr"`` (default) shares one bidiagonalization and replays it
        per alpha — total data passes ``2·max_iter + 1`` regardless of
        grid size.  ``"sketched_lsqr"`` shares one sketch pass and its
        Gram instead: each alpha then pays only an ``n × n`` Cholesky of
        ``gram + α I`` plus a *short* preconditioned solve (typically
        2–5× fewer iterations).  For long grids over well-separated
        alphas the replayed basis can degrade at extreme damping; the
        sketched path solves each alpha exactly, with per-alpha
        iteration counts that shrink as alpha grows.
    sketch, sketch_size, sketch_seed:
        As the :class:`SRDA` constructor; only used by
        ``solver="sketched_lsqr"``.

    Returns
    -------
    list of fitted :class:`SRDA`, one per alpha, in input order.
    """
    alphas = [float(a) for a in alphas]
    if any(a < 0 for a in alphas):
        raise ValueError("alpha must be non-negative")
    if solver not in ("lsqr", "sketched_lsqr"):
        raise ValueError(
            f"alpha-path solver must be 'lsqr' or 'sketched_lsqr', "
            f"got {solver!r}"
        )
    if not alphas:
        return []
    tracer = resolve_tracer(trace)

    def make_model(alpha: float) -> SRDA:
        return SRDA(
            alpha=alpha,
            solver=solver,
            centering=centering,
            max_iter=max_iter,
            tol=tol,
            on_invalid=on_invalid,
            sketch=sketch,
            sketch_size=sketch_size,
            sketch_seed=sketch_seed,
        )

    X, classes, y_indices = validate_data(
        X,
        y,
        on_invalid=on_invalid,
        min_classes=1 if on_invalid == "warn" else 2,
    )
    n_classes = classes.shape[0]
    if n_classes < 2:
        # Degenerate one-class data: nothing to share, every alpha
        # yields the same zero-dimensional embedding.
        return [make_model(alpha).fit(X, y) for alpha in alphas]

    counts = np.bincount(y_indices, minlength=n_classes)
    singletons = int(np.sum(counts == 1))
    responses = generate_responses(y_indices, n_classes)

    sparse_input = isinstance(X, CSRMatrix) or is_sparse(X)
    center = not sparse_input if centering == "auto" else bool(centering)
    if backend is None and effective_n_jobs(n_jobs) <= 1:
        base = as_operator(X)
        sharded = None
    else:
        sharded = ShardedOperator(X, backend=backend, n_jobs=n_jobs)
        base = sharded
    if center:
        op = CenteringOperator(base)
        mean = op.column_means
    else:
        op = AppendOnesOperator(base)
        mean = None

    # Per-class means of the raw features (one block product): the
    # embedding centroid of class k is linear in the class mean, so
    # every per-alpha model gets its centroids without another pass.
    indicator = np.zeros((X.shape[0], n_classes))
    indicator[np.arange(X.shape[0]), y_indices] = 1.0 / counts[y_indices]
    class_means = base.rmatmat(indicator).T

    with tracer.span(
        "srda.alpha_path",
        n_alphas=len(alphas),
        max_iter=int(max_iter),
        solver=solver,
    ):
        backend_report = FitReport()
        models: List[SRDA] = []

        engine = solver
        if solver == "sketched_lsqr":
            op_rows, op_cols = op.shape
            if op_cols >= op_rows:
                backend_report.add_warning(
                    f"sketched_lsqr right-preconditions through an "
                    f"(n x n) sketch Gram, which only pays for tall "
                    f"systems; X is {op_rows} x {op_cols} (n >= m), "
                    "so the alpha path fell back to the replayed "
                    "bidiagonalization engine"
                )
                engine = "lsqr"

        def assemble(alpha: float, weights, columns) -> None:
            # Shared per-alpha model assembly: identical for the
            # replayed and the sketched engines, so the fitted models
            # differ only in how the weights were produced.
            model = make_model(alpha)
            report = FitReport()
            report.requested_solver = solver
            report.backend = backend_report.backend
            for note in backend_report.warnings:
                # Already emitted once for the shared pass; the
                # per-alpha copies are record-only.
                report.add_warning(note, emit=False)
            if singletons:
                report.add_warning(
                    f"{singletons} of {n_classes} classes have a single "
                    "sample; their within-class scatter is zero and the fit "
                    "may overfit those classes",
                    emit=on_invalid == "warn",
                )
            model.lsqr_iterations_ = _record_lsqr_columns(
                columns, report, tol, alpha
            )
            if engine == "sketched_lsqr":
                report.solver = "sketched_lsqr"
            if center:
                components = weights
                intercept = -(mean @ components)
            else:
                components = weights[:-1]
                intercept = weights[-1]
            model.fit_report_ = report
            model.classes_ = classes
            model.responses_ = responses
            model.solver_used_ = engine
            model.centered_ = center
            model.components_ = components
            model.intercept_ = intercept
            model.centroids_ = class_means @ components + intercept[None, :]
            models.append(model)

        if engine == "sketched_lsqr":
            from repro.linalg.sketch import (
                default_sketch_size,
                preconditioner_from_gram,
                sketch_apply,
                sketch_operator,
            )

            try:
                m_rows, n_cols = op.shape
                size = (
                    default_sketch_size(m_rows, n_cols)
                    if sketch_size is None
                    else max(1, min(int(sketch_size), m_rows))
                )
                S = sketch_operator(sketch, m_rows, size, seed=sketch_seed)
                # One sketch pass and one Gram serve the whole grid;
                # each alpha below only re-factors gram + alpha*I.
                with tracer.span(
                    "sketch.build",
                    kind=S.kind,
                    sketch_size=int(size),
                    rows=int(m_rows),
                    cols=int(n_cols),
                    alpha=0.0,
                ):
                    sketched = sketch_apply(S, op)
                    gram = sketched.T @ sketched
                _note_parallel_backend(backend_report, sharded)
                for alpha in alphas:
                    with tracer.span("srda.sketched_solve", alpha=alpha):
                        pre = preconditioner_from_gram(
                            gram,
                            alpha=alpha,
                            kind=S.kind,
                            sketch_size=size,
                        )
                        solved = block_lsqr(
                            op,
                            responses,
                            damp=float(np.sqrt(alpha)),
                            atol=tol,
                            btol=tol,
                            iter_lim=max_iter,
                            on_iteration=tracer.iteration_hook(),
                            precondition=pre,
                        )
                    weights = np.asarray(solved.X, dtype=np.float64)
                    columns = [
                        solved.column(j) for j in range(responses.shape[1])
                    ]
                    assemble(alpha, weights, columns)
            finally:
                # Unlike the replayed path, the per-alpha solves here
                # DO touch the data — the sharded operator must stay
                # open until the whole grid is solved.
                if sharded is not None:
                    sharded.close()
            return models

        try:
            with tracer.span("srda.bidiagonalize"):
                shared = SharedBidiagonalization(
                    op, responses, iter_lim=max_iter
                )
            _note_parallel_backend(backend_report, sharded)
        finally:
            # The per-alpha replays touch no data — the sharded
            # operator (and any pool it owns) can go away right here.
            if sharded is not None:
                sharded.close()

        for alpha in alphas:
            with tracer.span("srda.replay", alpha=alpha):
                solved = shared.solve(
                    damp=float(np.sqrt(alpha)),
                    atol=tol,
                    btol=tol,
                    on_iteration=tracer.iteration_hook(),
                )
            weights = np.asarray(solved.X, dtype=np.float64)
            columns = [solved.column(j) for j in range(responses.shape[1])]
            assemble(alpha, weights, columns)
    return models
