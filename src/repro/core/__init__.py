"""The paper's primary contribution: Spectral Regression Discriminant Analysis.

- :mod:`repro.core.base` — the shared estimator protocol (label encoding,
  validation, nearest-centroid prediction in the embedding).
- :mod:`repro.core.responses` — the spectral half: closed-form eigenvectors
  of the graph matrix ``W``, orthogonalized by Gram–Schmidt (Eqn 15/16).
- :mod:`repro.core.graph` — the graph-embedding view of LDA (Eqn 6/7) and
  the generalized graph builders the paper points to.
- :mod:`repro.core.srda` — the SRDA estimator with both solvers (normal
  equations with the dual trick, and LSQR).
- :mod:`repro.core.kernel_srda` — the kernelized extension (spectral
  regression KDA, reference [14] of the paper).
"""

from repro.core.kernel_srda import KernelSRDA
from repro.core.responses import generate_responses
from repro.core.semi_supervised import SemiSupervisedSRDA
from repro.core.sparse_srda import SparseSRDA
from repro.core.solver_config import SolverConfig
from repro.core.spectral_embedding import SpectralRegressionEmbedding
from repro.core.srda import SRDA, srda_alpha_path

__all__ = [
    "KernelSRDA",
    "SRDA",
    "SemiSupervisedSRDA",
    "SolverConfig",
    "SparseSRDA",
    "SpectralRegressionEmbedding",
    "generate_responses",
    "srda_alpha_path",
]
