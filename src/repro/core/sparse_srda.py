"""Sparse SRDA — ℓ1-regularized projections (the framework's ref [15]).

The spectral-regression framework's key flexibility is that step 2 is
*any* regression.  Swapping ridge for the elastic net yields projective
functions with few non-zero weights — interpretable discriminant
directions (which pixels / terms matter) at a modest accuracy cost.
The spectral step is byte-for-byte the same as :class:`SRDA`'s; the
regression step runs our coordinate-descent solver per response.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import LinearEmbedder, validate_data
from repro.core.responses import generate_responses
from repro.linalg.coordinate_descent import elastic_net
from repro.linalg.sparse import CSRMatrix, is_sparse
from repro.observability import Tracer, resolve_tracer


class SparseSRDA(LinearEmbedder):
    """Discriminant analysis with elastic-net-sparse projections.

    Parameters
    ----------
    alpha:
        Overall penalty strength.
    l1_ratio:
        1.0 = pure lasso (sparsest), 0.0 = ridge (recovers SRDA's
        normal-equations solution), default 0.9.
    max_iter, tol:
        Coordinate-descent controls.
    trace:
        Observability control, as :class:`repro.core.srda.SRDA`'s
        parameter of the same name.  When enabled, ``fit`` emits
        ``sparse_srda.fit`` with nested validate/responses/solve/embed
        spans and one ``elastic_net.column`` event per response
        (sweeps used, non-zeros produced).

    Attributes
    ----------
    components_:
        ``(n, c-1)`` sparse projection matrix.
    sparsity_:
        Fraction of zero weights in ``components_``.
    n_iter_:
        Coordinate sweeps used per response.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        l1_ratio: float = 0.9,
        max_iter: int = 1000,
        tol: float = 1e-6,
        trace=None,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0.0 <= l1_ratio <= 1.0:
            raise ValueError("l1_ratio must lie in [0, 1]")
        self.alpha = float(alpha)
        self.l1_ratio = float(l1_ratio)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.trace = trace
        self.tracer_: Optional[Tracer] = None
        self.components_ = None
        self.intercept_ = None
        self.classes_ = None
        self.centroids_ = None
        self.sparsity_: Optional[float] = None
        self.n_iter_: Optional[List[int]] = None

    def fit(self, X, y) -> "SparseSRDA":
        """Fit sparse projective functions from labeled data."""
        tracer = resolve_tracer(self.trace)
        self.tracer_ = tracer if tracer.enabled else None
        with tracer.span(
            "sparse_srda.fit", alpha=self.alpha, l1_ratio=self.l1_ratio
        ):
            return self._fit_phases(X, y, tracer)

    def _fit_phases(self, X, y, tracer: Tracer) -> "SparseSRDA":
        with tracer.span("sparse_srda.validate"):
            X, classes, y_indices = validate_data(X, y)
        self.classes_ = classes
        with tracer.span(
            "sparse_srda.responses", n_classes=int(classes.shape[0])
        ):
            responses = generate_responses(y_indices, classes.shape[0])

        sparse_input = isinstance(X, CSRMatrix) or is_sparse(X)
        if sparse_input and not isinstance(X, CSRMatrix):
            X = CSRMatrix.from_scipy(X)

        # center through the intercept: responses are mean-zero, so only
        # the feature means matter; for sparse input we keep the matrix
        # untouched and absorb the means into the intercept afterwards
        # (the elastic-net solve runs on the raw matrix — for TF-style
        # non-negative data the column means are small and the ℓ1
        # solution is insensitive to the shift; dense input is centered
        # exactly).
        if sparse_input:
            means = X.column_means()
            design = X
        else:
            means = X.mean(axis=0)
            design = X - means

        n = X.shape[1]
        weights = np.empty((n, responses.shape[1]))
        iterations = []
        with tracer.span(
            "sparse_srda.solve", n_responses=int(responses.shape[1])
        ):
            for j in range(responses.shape[1]):
                result = elastic_net(
                    design,
                    responses[:, j],
                    alpha=self.alpha,
                    l1_ratio=self.l1_ratio,
                    max_iter=self.max_iter,
                    tol=self.tol,
                )
                weights[:, j] = result.coef
                iterations.append(result.n_iter)
                tracer.event(
                    "elastic_net.column",
                    column=j,
                    sweeps=int(result.n_iter),
                    nonzeros=int(np.count_nonzero(result.coef)),
                )
        self.n_iter_ = iterations

        self.components_ = weights
        self.intercept_ = -(means @ weights)
        self.sparsity_ = float(np.mean(weights == 0.0))
        with tracer.span("sparse_srda.embed"):
            self._store_centroids(self.transform(X), y_indices)
        return self

    def selected_features(self) -> np.ndarray:
        """Indices of features with a non-zero weight in any projection."""
        self._check_fitted()
        return np.flatnonzero(np.any(self.components_ != 0.0, axis=1))
