"""Semi-supervised SRDA — the generalization the paper points to.

Section III notes the approach "can be generalized by constructing the
graph matrix W in the unsupervised or semi-supervised way" (refs
[12]–[16]).  This module provides that estimator: the spectral step runs
on a *blended* graph (LDA blocks on labeled pairs + k-NN affinity over
everything), producing responses for all samples — labeled and
unlabeled — and the regression step is unchanged.

Because the blended graph has no closed-form eigenvectors, the responses
come from a dense eigensolve of the (m, m) normalized affinity — this
estimator therefore targets moderate sample counts; the fully labeled
:class:`repro.core.srda.SRDA` keeps the closed-form fast path.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import LinearEmbedder, as_dense, encode_labels
from repro.core.estimator import warn_deprecated_param
from repro.core.graph import graph_responses, semi_supervised_affinity
from repro.core.solver_config import SolverConfig, config_alias
from repro.linalg.cholesky import cholesky, solve_factored
from repro.linalg.lsqr import lsqr
from repro.linalg.operators import CenteringOperator, as_operator
from repro.observability import Tracer, resolve_tracer


class SemiSupervisedSRDA(LinearEmbedder):
    """Spectral-regression discriminant analysis with partial labels.

    Parameters
    ----------
    alpha:
        Regression regularization, as in :class:`SRDA`.
    n_neighbors:
        k for the unsupervised affinity component.
    supervised_weight:
        Weight of the LDA-block component on labeled pairs; 0 makes the
        method fully unsupervised (spectral embedding + regression).
    n_components:
        Embedding dimensions; defaults to ``c - 1`` when labels exist,
        else must be given explicitly.
    config:
        A :class:`~repro.core.solver_config.SolverConfig`; only its
        ``solver`` field is consulted here and must be ``"normal"``
        (default) or ``"lsqr"``.  Passing ``solver=`` as a keyword is
        deprecated and merges into the config with a warning.
    max_iter, tol:
        LSQR controls.
    trace:
        Observability control, as :class:`repro.core.srda.SRDA`'s
        parameter of the same name.  When enabled, ``fit`` emits
        ``semi_srda.fit`` with nested affinity/responses/solve/embed
        spans and per-iteration LSQR events on the iterative path.

    Notes
    -----
    ``fit(X, y)`` expects ``y`` with ``-1`` marking unlabeled samples.
    ``predict`` assigns the nearest centroid of the *labeled* training
    samples in the learned embedding.
    """

    _deprecated_params = {"solver": "config"}

    def __init__(
        self,
        alpha: float = 1.0,
        n_neighbors: int = 5,
        supervised_weight: float = 1.0,
        n_components: Optional[int] = None,
        config: Optional[SolverConfig] = None,
        max_iter: int = 20,
        tol: float = 1e-10,
        trace=None,
        solver: Optional[str] = None,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if config is None:
            config = SolverConfig(solver="normal")
        elif not isinstance(config, SolverConfig):
            raise ValueError(
                f"config must be a SolverConfig, got {type(config).__name__}"
            )
        if solver is not None:
            warn_deprecated_param(type(self), "solver", "config")
            config = config.replace(solver=solver)
        if config.solver not in ("normal", "lsqr"):
            raise ValueError(
                f"unknown solver {config.solver!r}; SemiSupervisedSRDA "
                "supports 'normal' or 'lsqr'"
            )
        self.alpha = float(alpha)
        self.n_neighbors = int(n_neighbors)
        self.supervised_weight = float(supervised_weight)
        self.n_components = n_components
        self.config = config
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.trace = trace
        self.tracer_: Optional[Tracer] = None
        self.components_ = None
        self.intercept_ = None
        self.classes_ = None
        self.centroids_ = None
        self.responses_ = None
        self.lsqr_iterations_: Optional[List[int]] = None

    solver = config_alias("solver")

    def fit(self, X, y) -> "SemiSupervisedSRDA":
        """Fit from a partially labeled sample (``y == -1`` = unlabeled)."""
        tracer = resolve_tracer(self.trace)
        self.tracer_ = tracer if tracer.enabled else None
        with tracer.span(
            "semi_srda.fit",
            alpha=self.alpha,
            solver=self.solver,
            supervised_weight=self.supervised_weight,
        ):
            return self._fit_phases(X, y, tracer)

    def _fit_phases(self, X, y, tracer: Tracer) -> "SemiSupervisedSRDA":
        X = as_dense(X)
        y = np.asarray(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must have one entry per sample")
        labeled_mask = y != -1
        if not labeled_mask.any():
            raise ValueError(
                "need at least one labeled sample; for the fully "
                "unsupervised variant pass supervised_weight=0 and "
                "label at least the centroid-defining samples"
            )
        classes, encoded = encode_labels(y[labeled_mask])
        if classes.shape[0] < 2:
            raise ValueError("need labeled samples from at least 2 classes")
        self.classes_ = classes
        y_indices = np.full(y.shape[0], -1, dtype=np.int64)
        y_indices[labeled_mask] = encoded

        n_components = self.n_components
        if n_components is None:
            n_components = classes.shape[0] - 1

        # spectral step on the blended graph
        with tracer.span(
            "semi_srda.affinity",
            n_neighbors=self.n_neighbors,
            n_labeled=int(labeled_mask.sum()),
        ):
            W = semi_supervised_affinity(
                X,
                y_indices,
                classes.shape[0],
                n_neighbors=self.n_neighbors,
                supervised_weight=self.supervised_weight,
            )
        with tracer.span(
            "semi_srda.responses", n_components=int(n_components)
        ):
            responses = graph_responses(W, n_components=n_components)
        self.responses_ = responses

        # regression step — identical machinery to supervised SRDA
        mean = X.mean(axis=0)
        centered = X - mean
        with tracer.span("semi_srda.solve", solver=self.solver):
            if self.solver == "normal":
                components = self._ridge_normal(centered, responses)
            else:
                op = CenteringOperator(as_operator(X), column_means=mean)
                components = self._ridge_lsqr(op, responses, tracer)
        self.components_ = components
        self.intercept_ = -(mean @ components)

        with tracer.span("semi_srda.embed"):
            Z_labeled = self.transform(X[labeled_mask])
            self._store_centroids(Z_labeled, encoded)
        return self

    def _ridge_normal(self, X: np.ndarray, targets: np.ndarray) -> np.ndarray:
        m, n = X.shape
        if self.alpha == 0.0:
            solution, _, _, _ = np.linalg.lstsq(X, targets, rcond=None)
            return solution
        if n <= m:
            gram = X.T @ X
            gram[np.diag_indices_from(gram)] += self.alpha
            return solve_factored(cholesky(gram), X.T @ targets)
        outer = X @ X.T
        outer[np.diag_indices_from(outer)] += self.alpha
        return X.T @ solve_factored(cholesky(outer), targets)

    def _ridge_lsqr(
        self, op, targets: np.ndarray, tracer: Optional[Tracer] = None
    ) -> np.ndarray:
        weights = np.empty((op.shape[1], targets.shape[1]))
        iterations = []
        hook = tracer.iteration_hook() if tracer is not None else None
        for j in range(targets.shape[1]):
            result = lsqr(
                op,
                targets[:, j],
                damp=float(np.sqrt(self.alpha)),
                atol=self.tol,
                btol=self.tol,
                iter_lim=self.max_iter,
                on_iteration=hook,
            )
            weights[:, j] = result.x
            iterations.append(result.itn)
        self.lsqr_iterations_ = iterations
        return weights
