"""Response generation — the spectral half of SRDA (Section III, step 1).

The graph matrix ``W`` of LDA (Eqn 6) is block diagonal with one rank-one
block ``(1/m_k) 1 1ᵀ`` per class, so its eigenstructure is known in closed
form: eigenvalue 1 with multiplicity ``c`` (eigenvectors = the class
indicator vectors, Eqn 15) and eigenvalue 0 elsewhere.  Because 1 is
repeated, *any* orthogonal basis of the indicator span works.  The paper
picks the basis adapted to the regression step:

1. take the all-ones vector ``e`` (which is inside the indicator span but
   orthogonal to the row space of the centered data) as the first vector;
2. Gram–Schmidt the class indicators against it;
3. discard ``e``.

The ``c - 1`` survivors ``ȳ¹ … ȳ^{c-1}`` satisfy (Eqn 16)::

    ȳᵢᵀ e = 0,     ȳᵢᵀ ȳⱼ = 0  (i ≠ j)

and each is *piecewise constant on classes* — two samples with the same
label always receive the same response value.  That is the property that
later makes same-class points collapse to one embedding point in the
exact-fit regime (Corollary 3).

Cost: ``O(m c²)`` flam and ``O(m c)`` memory, as quoted in Table I's
derivation — negligible next to the regression step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro._typing import FloatArray

from repro.exceptions import InvariantViolationError
from repro.linalg.gram_schmidt import orthonormalize


def indicator_matrix(y_indices: FloatArray, n_classes: int) -> FloatArray:
    """The ``c`` eigenvectors of ``W`` with eigenvalue 1 (Eqn 15).

    Complexity: O(m·c) — the matrix itself, one scatter per sample.

    Column ``k`` is the 0/1 indicator of class ``k``.  (The paper orders
    samples by class so these look like padded blocks of ones; with
    arbitrary sample order they are the same vectors, permuted.)
    """
    y_indices = np.asarray(y_indices, dtype=np.int64)
    if y_indices.ndim != 1:
        raise ValueError("y_indices must be 1-D")
    if y_indices.size and (y_indices.min() < 0 or y_indices.max() >= n_classes):
        raise ValueError("class index out of range")
    m = y_indices.shape[0]
    Y = np.zeros((m, n_classes))
    Y[np.arange(m), y_indices] = 1.0
    return Y


def generate_responses(
    y_indices: FloatArray,
    n_classes: int,
    rng: Optional[np.random.Generator] = None,
) -> FloatArray:
    """Produce the ``(m, c-1)`` response matrix ``Ȳ = [ȳ¹ … ȳ^{c-1}]``.

    Complexity: O(m·c^2) — Table I's quoted cost for the spectral step
    (Gram–Schmidt over ``c + 1`` length-``m`` columns).

    Parameters
    ----------
    y_indices:
        Encoded class index of each sample (values in ``[0, n_classes)``).
    n_classes:
        Number of classes ``c``; must be ≥ 2.
    rng:
        Optional generator.  When given, the class indicators are
        orthogonalized in a random order (equivalent up to rotation —
        useful for tests that check rotation invariance of SRDA);
        otherwise the natural class order is used, deterministically.

    Returns
    -------
    Responses with orthonormal columns, each orthogonal to the all-ones
    vector and piecewise constant on classes.
    """
    if n_classes < 2:
        raise ValueError("need at least 2 classes to build responses")
    y_indices = np.asarray(y_indices, dtype=np.int64)
    m = y_indices.shape[0]
    indicators = indicator_matrix(y_indices, n_classes)
    counts = np.bincount(y_indices, minlength=n_classes)
    if np.any(counts == 0):
        missing = np.flatnonzero(counts == 0)
        raise ValueError(f"classes with no samples: {missing.tolist()}")

    if rng is not None:
        order = rng.permutation(n_classes)
        indicators = indicators[:, order]

    ones = np.ones((m, 1))
    stacked = np.hstack([ones, indicators])
    Q, kept = orthonormalize(stacked)
    if kept[0] != 0:  # pragma: no cover - ones always survives first
        raise InvariantViolationError("all-ones vector unexpectedly dropped")
    responses = Q[:, 1:]
    if responses.shape[1] != n_classes - 1:
        raise InvariantViolationError(
            f"expected {n_classes - 1} responses, got {responses.shape[1]}; "
            "the indicator span degenerated (should be impossible when "
            "every class is non-empty)"
        )
    return responses


def response_table_from_counts(
    counts: FloatArray, tol: float = 1e-10
) -> FloatArray:
    """The ``(c, c-1)`` per-class response table from class counts alone.

    Complexity: O(c^3) — weighted Gram–Schmidt over ``c + 1``
    coefficient vectors of length ``c``; independent of ``m``.

    Every vector in the span of ``[1, e_1 … e_c]`` is piecewise constant
    on classes, so it is determined by its ``c`` per-class values, and
    inner products reduce to count-weighted dot products:
    ``⟨u, w⟩ = Σ_k m_k u_k w_k``.  Running the same modified
    Gram–Schmidt as :func:`generate_responses` — two projection passes,
    the same relative drop tolerance — on the ``(c, c+1)`` coefficient
    matrix ``[1_c, I_c]`` under that weighted inner product reproduces
    the response *table* without ever materializing a length-``m``
    vector: the full ``(m, c-1)`` response matrix is
    ``table[y_indices]``.

    This is the engine behind :meth:`repro.core.srda.SRDA.partial_fit`:
    the counts are *integers*, accumulated by commutative addition, so
    the table is a deterministic function of the class histogram —
    bitwise identical under any batch ordering of the same data.

    Parameters
    ----------
    counts:
        Per-class sample counts ``m_k``; every entry must be positive.
    tol:
        Relative drop tolerance, as :func:`orthonormalize`.

    Returns
    -------
    ``(c, c-1)`` table whose column ``j`` holds response ``ȳʲ``'s value
    on each class; rows indexed by encoded class, columns satisfy the
    Eqn-16 invariants under the count-weighted inner product.
    """
    counts = np.asarray(counts)
    if counts.ndim != 1:
        raise ValueError("counts must be 1-D")
    n_classes = counts.shape[0]
    if n_classes < 2:
        raise ValueError("need at least 2 classes to build responses")
    if np.any(counts <= 0):
        missing = np.flatnonzero(counts <= 0)
        raise ValueError(f"classes with no samples: {missing.tolist()}")
    weights = counts.astype(np.float64)

    # Coefficient columns of [1, e_1 … e_c] in the per-class-value
    # basis: the all-ones vector is constant 1 on every class, the
    # indicator of class k is the unit vector delta_k.
    stacked = np.hstack([np.ones((n_classes, 1)), np.eye(n_classes)])
    columns = []
    kept = []
    for j in range(n_classes + 1):
        v = stacked[:, j].copy()
        original_norm = float(np.sqrt(weights @ (v * v)))
        if original_norm == 0.0:  # pragma: no cover - counts all positive
            continue
        for _ in range(2):  # "twice is enough" — as orthonormalize()
            for q in columns:
                v -= float(weights @ (q * v)) * q
        norm = float(np.sqrt(weights @ (v * v)))
        if norm <= tol * original_norm:
            continue
        columns.append(v / norm)
        kept.append(j)
    if not kept or kept[0] != 0:  # pragma: no cover - ones survives first
        raise InvariantViolationError("all-ones vector unexpectedly dropped")
    table = (
        np.column_stack(columns[1:])
        if len(columns) > 1
        else np.zeros((n_classes, 0))
    )
    if table.shape[1] != n_classes - 1:
        raise InvariantViolationError(
            f"expected {n_classes - 1} responses, got {table.shape[1]}; "
            "the indicator span degenerated (should be impossible when "
            "every class is non-empty)"
        )
    return table


def response_table(
    responses: FloatArray, y_indices: FloatArray, n_classes: int
) -> FloatArray:
    """Collapse responses to one row per class.

    Complexity: O(m·c) — one masked scan of the response matrix per
    class (the ``(m, c-1)`` matrix is read ``c`` times at worst).

    Because each response column is piecewise constant on classes, the
    whole ``(m, c-1)`` matrix is determined by a ``(c, c-1)`` table of
    per-class values.  This is what lets ``transform`` on unseen data be
    meaningful and is asserted by the property tests.
    """
    table = np.zeros((n_classes, responses.shape[1]))
    for k in range(n_classes):
        rows = responses[y_indices == k]
        if rows.shape[0] == 0:
            continue
        table[k] = rows[0]
        if not np.allclose(rows, rows[0], atol=1e-8):
            raise ValueError(
                f"responses are not piecewise constant on class {k}"
            )
    return table


def validate_responses(
    responses: FloatArray, y_indices: FloatArray, atol: float = 1e-8
) -> Tuple[float, float]:
    """Check the Eqn-16 invariants; returns (max ones-dot, max cross-dot).

    Complexity: O(m·c^2) — the ``ȲᵀȲ`` Gram matrix dominates.

    Intended for tests and debugging: both values should be ~0 and the
    diagonal of ``ȲᵀȲ`` should be ~1.
    """
    ones_dots = np.abs(responses.sum(axis=0))
    gram = responses.T @ responses
    off = gram - np.diag(np.diag(gram))
    max_ones = float(ones_dots.max()) if ones_dots.size else 0.0
    max_cross = float(np.abs(off).max()) if off.size else 0.0
    if max_ones > atol or max_cross > atol:
        raise ValueError(
            f"responses violate Eqn 16: ones-dot={max_ones:.2e}, "
            f"cross-dot={max_cross:.2e}"
        )
    return max_ones, max_cross
