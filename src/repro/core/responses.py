"""Response generation — the spectral half of SRDA (Section III, step 1).

The graph matrix ``W`` of LDA (Eqn 6) is block diagonal with one rank-one
block ``(1/m_k) 1 1ᵀ`` per class, so its eigenstructure is known in closed
form: eigenvalue 1 with multiplicity ``c`` (eigenvectors = the class
indicator vectors, Eqn 15) and eigenvalue 0 elsewhere.  Because 1 is
repeated, *any* orthogonal basis of the indicator span works.  The paper
picks the basis adapted to the regression step:

1. take the all-ones vector ``e`` (which is inside the indicator span but
   orthogonal to the row space of the centered data) as the first vector;
2. Gram–Schmidt the class indicators against it;
3. discard ``e``.

The ``c - 1`` survivors ``ȳ¹ … ȳ^{c-1}`` satisfy (Eqn 16)::

    ȳᵢᵀ e = 0,     ȳᵢᵀ ȳⱼ = 0  (i ≠ j)

and each is *piecewise constant on classes* — two samples with the same
label always receive the same response value.  That is the property that
later makes same-class points collapse to one embedding point in the
exact-fit regime (Corollary 3).

Cost: ``O(m c²)`` flam and ``O(m c)`` memory, as quoted in Table I's
derivation — negligible next to the regression step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro._typing import FloatArray

from repro.exceptions import InvariantViolationError
from repro.linalg.gram_schmidt import orthonormalize


def indicator_matrix(y_indices: FloatArray, n_classes: int) -> FloatArray:
    """The ``c`` eigenvectors of ``W`` with eigenvalue 1 (Eqn 15).

    Complexity: O(m·c) — the matrix itself, one scatter per sample.

    Column ``k`` is the 0/1 indicator of class ``k``.  (The paper orders
    samples by class so these look like padded blocks of ones; with
    arbitrary sample order they are the same vectors, permuted.)
    """
    y_indices = np.asarray(y_indices, dtype=np.int64)
    if y_indices.ndim != 1:
        raise ValueError("y_indices must be 1-D")
    if y_indices.size and (y_indices.min() < 0 or y_indices.max() >= n_classes):
        raise ValueError("class index out of range")
    m = y_indices.shape[0]
    Y = np.zeros((m, n_classes))
    Y[np.arange(m), y_indices] = 1.0
    return Y


def generate_responses(
    y_indices: FloatArray,
    n_classes: int,
    rng: Optional[np.random.Generator] = None,
) -> FloatArray:
    """Produce the ``(m, c-1)`` response matrix ``Ȳ = [ȳ¹ … ȳ^{c-1}]``.

    Complexity: O(m·c^2) — Table I's quoted cost for the spectral step
    (Gram–Schmidt over ``c + 1`` length-``m`` columns).

    Parameters
    ----------
    y_indices:
        Encoded class index of each sample (values in ``[0, n_classes)``).
    n_classes:
        Number of classes ``c``; must be ≥ 2.
    rng:
        Optional generator.  When given, the class indicators are
        orthogonalized in a random order (equivalent up to rotation —
        useful for tests that check rotation invariance of SRDA);
        otherwise the natural class order is used, deterministically.

    Returns
    -------
    Responses with orthonormal columns, each orthogonal to the all-ones
    vector and piecewise constant on classes.
    """
    if n_classes < 2:
        raise ValueError("need at least 2 classes to build responses")
    y_indices = np.asarray(y_indices, dtype=np.int64)
    m = y_indices.shape[0]
    indicators = indicator_matrix(y_indices, n_classes)
    counts = np.bincount(y_indices, minlength=n_classes)
    if np.any(counts == 0):
        missing = np.flatnonzero(counts == 0)
        raise ValueError(f"classes with no samples: {missing.tolist()}")

    if rng is not None:
        order = rng.permutation(n_classes)
        indicators = indicators[:, order]

    ones = np.ones((m, 1))
    stacked = np.hstack([ones, indicators])
    Q, kept = orthonormalize(stacked)
    if kept[0] != 0:  # pragma: no cover - ones always survives first
        raise InvariantViolationError("all-ones vector unexpectedly dropped")
    responses = Q[:, 1:]
    if responses.shape[1] != n_classes - 1:
        raise InvariantViolationError(
            f"expected {n_classes - 1} responses, got {responses.shape[1]}; "
            "the indicator span degenerated (should be impossible when "
            "every class is non-empty)"
        )
    return responses


def response_table(
    responses: FloatArray, y_indices: FloatArray, n_classes: int
) -> FloatArray:
    """Collapse responses to one row per class.

    Complexity: O(m·c) — one masked scan of the response matrix per
    class (the ``(m, c-1)`` matrix is read ``c`` times at worst).

    Because each response column is piecewise constant on classes, the
    whole ``(m, c-1)`` matrix is determined by a ``(c, c-1)`` table of
    per-class values.  This is what lets ``transform`` on unseen data be
    meaningful and is asserted by the property tests.
    """
    table = np.zeros((n_classes, responses.shape[1]))
    for k in range(n_classes):
        rows = responses[y_indices == k]
        if rows.shape[0] == 0:
            continue
        table[k] = rows[0]
        if not np.allclose(rows, rows[0], atol=1e-8):
            raise ValueError(
                f"responses are not piecewise constant on class {k}"
            )
    return table


def validate_responses(
    responses: FloatArray, y_indices: FloatArray, atol: float = 1e-8
) -> Tuple[float, float]:
    """Check the Eqn-16 invariants; returns (max ones-dot, max cross-dot).

    Complexity: O(m·c^2) — the ``ȲᵀȲ`` Gram matrix dominates.

    Intended for tests and debugging: both values should be ~0 and the
    diagonal of ``ȲᵀȲ`` should be ~1.
    """
    ones_dots = np.abs(responses.sum(axis=0))
    gram = responses.T @ responses
    off = gram - np.diag(np.diag(gram))
    max_ones = float(ones_dots.max()) if ones_dots.size else 0.0
    max_cross = float(np.abs(off).max()) if off.size else 0.0
    if max_ones > atol or max_cross > atol:
        raise ValueError(
            f"responses violate Eqn 16: ones-dot={max_ones:.2e}, "
            f"cross-dot={max_cross:.2e}"
        )
    return max_ones, max_cross
