"""Unsupervised spectral-regression embedding (refs [12], [13], [16]).

The fully unsupervised member of the family: responses come from the
leading non-trivial eigenvectors of a k-NN affinity graph (a Laplacian
eigenmap), and the regression step turns them into *linear* projective
functions that extend the embedding to unseen samples — the regularized
locality-preserving-indexing construction.

The graph eigenproblem is solved with our Lanczos iteration through the
normalized affinity operator, so only mat-vecs over the (sparse-able)
graph are needed; for the small graphs in the test-suite a dense solve
is equivalent and Lanczos is cross-checked against it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import NotFittedError, as_dense, working_dtype
from repro.core.graph import knn_affinity
from repro.linalg.cholesky import cholesky, solve_factored
from repro.linalg.eigen import lanczos_eigsh
from repro.core.estimator import ReproEstimator
from repro.linalg.lsqr import lsqr
from repro.linalg.operators import CenteringOperator, as_operator


class SpectralRegressionEmbedding(ReproEstimator):
    """Linear out-of-sample extension of a graph spectral embedding.

    Parameters
    ----------
    n_components:
        Embedding dimensionality.
    alpha:
        Regression regularization.
    n_neighbors:
        k for the affinity graph.
    affinity:
        ``"binary"`` or ``"heat"`` (see :func:`knn_affinity`).
    solver:
        ``"normal"`` or ``"lsqr"`` for the regression step.
    max_iter, tol:
        LSQR controls.
    """

    def __init__(
        self,
        n_components: int = 2,
        alpha: float = 1.0,
        n_neighbors: int = 5,
        affinity: str = "heat",
        solver: str = "normal",
        max_iter: int = 30,
        tol: float = 1e-10,
    ) -> None:
        if n_components < 1:
            raise ValueError("n_components must be positive")
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if solver not in ("normal", "lsqr"):
            raise ValueError(f"unknown solver {solver!r}")
        self.n_components = int(n_components)
        self.alpha = float(alpha)
        self.n_neighbors = int(n_neighbors)
        self.affinity = affinity
        self.solver = solver
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.components_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None
        self.responses_: Optional[np.ndarray] = None
        self.lsqr_iterations_: Optional[List[int]] = None

    def _graph_responses_lanczos(self, W: np.ndarray) -> np.ndarray:
        """Top non-trivial eigenvectors of D^{-1/2} W D^{-1/2} via Lanczos."""
        degrees = W.sum(axis=1)
        degrees = np.where(degrees > 0, degrees, 1.0)
        inv_sqrt = 1.0 / np.sqrt(degrees)
        S = (inv_sqrt[:, None] * W) * inv_sqrt[None, :]
        S = 0.5 * (S + S.T)
        k = self.n_components + 1  # +1 for the trivial top eigenvector
        _, vectors = lanczos_eigsh(S, k=min(k, S.shape[0]), seed=0)
        responses = inv_sqrt[:, None] * vectors[:, 1:k]
        norms = np.linalg.norm(responses, axis=0)
        norms = np.where(norms > 0, norms, 1.0)
        return responses / norms

    def fit(self, X, y=None) -> "SpectralRegressionEmbedding":
        """Learn the linear embedding from unlabeled data."""
        X = as_dense(X)
        m = X.shape[0]
        if self.n_components >= m:
            raise ValueError("n_components must be smaller than n_samples")
        W = knn_affinity(X, n_neighbors=self.n_neighbors, mode=self.affinity)
        responses = self._graph_responses_lanczos(W)
        self.responses_ = responses

        mean = X.mean(axis=0)
        centered = X - mean
        if self.solver == "normal":
            components = self._ridge_normal(centered, responses)
        else:
            op = CenteringOperator(as_operator(X), column_means=mean)
            components = self._ridge_lsqr(op, responses)
        self.components_ = components
        self.intercept_ = -(mean @ components)
        return self

    def _ridge_normal(self, X: np.ndarray, targets: np.ndarray) -> np.ndarray:
        m, n = X.shape
        if self.alpha == 0.0:
            solution, _, _, _ = np.linalg.lstsq(X, targets, rcond=None)
            return solution
        if n <= m:
            gram = X.T @ X
            gram[np.diag_indices_from(gram)] += self.alpha
            return solve_factored(cholesky(gram), X.T @ targets)
        outer = X @ X.T
        outer[np.diag_indices_from(outer)] += self.alpha
        return X.T @ solve_factored(cholesky(outer), targets)

    def _ridge_lsqr(self, op, targets: np.ndarray) -> np.ndarray:
        weights = np.empty((op.shape[1], targets.shape[1]))
        iterations = []
        for j in range(targets.shape[1]):
            result = lsqr(
                op,
                targets[:, j],
                damp=float(np.sqrt(self.alpha)),
                atol=self.tol,
                btol=self.tol,
                iter_lim=self.max_iter,
            )
            weights[:, j] = result.x
            iterations.append(result.itn)
        self.lsqr_iterations_ = iterations
        return weights

    def transform(self, X) -> np.ndarray:
        """Embed (possibly unseen) samples linearly.

        Follows the :func:`~repro.core.base.working_dtype` contract:
        float32 input yields a float32 embedding.
        """
        if self.components_ is None:
            raise NotFittedError(
                "SpectralRegressionEmbedding must be fitted before use"
            )
        dtype = working_dtype(X)
        X = as_dense(X)
        Z = X @ self.components_ + self.intercept_
        return Z.astype(dtype, copy=False)

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Fit and embed the training data."""
        return self.fit(X).transform(X)
