"""The unified estimator protocol: params, cloning, the registry.

Every public estimator in this package mixes in :class:`ReproEstimator`
and thereby speaks the sklearn parameter protocol:

- ``get_params()`` / ``set_params(**p)`` — introspected from the
  constructor signature, so an estimator's parameters are *exactly* its
  ``__init__`` keywords (sklearn's convention: constructors only store);
- ``clone(est)`` — a fresh unfitted instance with the same parameters;
- ``fit(X, y) -> self``, ``transform``, ``fit_transform`` and a uniform
  ``fit_report_`` attribute (``None`` where an estimator records no
  solver diagnostics).

Renamed constructor arguments stay importable for one deprecation
cycle: a class lists them in ``_deprecated_params`` (old name → new
name), keeps the old keyword in its signature with a ``None`` sentinel,
and calls :func:`warn_deprecated_param` when it sees a non-sentinel
value.  ``get_params`` never reports deprecated names, so a
get/set/clone round-trip silently migrates old spellings.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Any, Callable, ClassVar, Dict, List, Optional, Type, TypeVar

from repro.exceptions import InvariantViolationError

E = TypeVar("E", bound="ReproEstimator")


class ReproDeprecationWarning(FutureWarning):
    """A constructor argument spelling scheduled for removal.

    Subclasses ``FutureWarning`` so end users see it by default
    (``DeprecationWarning`` is hidden outside ``__main__``).
    """


def warn_deprecated_param(
    cls: type, old: str, new: str, stacklevel: int = 3
) -> None:
    """Emit the standard deprecation message for a renamed argument."""
    warnings.warn(
        f"{cls.__name__}({old}=...) is deprecated; use {new}=... "
        "instead (the old spelling will be removed in a future release)",
        ReproDeprecationWarning,
        stacklevel=stacklevel,
    )


class ReproEstimator:
    """Mixin providing the shared parameter protocol.

    Requirements on subclasses (checked by the parametrized round-trip
    test in ``tests/core/test_estimator_api.py``):

    - ``__init__`` takes only explicit keyword-able parameters (no
      ``*args``/``**kwargs``) and stores each one verbatim on ``self``
      under the same name;
    - deprecated argument spellings appear in ``_deprecated_params``
      and default to a ``None`` sentinel in the signature.
    """

    #: Old constructor-argument name → current name.  Old names are
    #: excluded from ``get_params`` and mapped (with a warning) by
    #: ``set_params``.
    _deprecated_params: ClassVar[Dict[str, str]] = {}

    #: Uniform diagnostics surface: estimators whose fit records solver
    #: diagnostics overwrite this with a ``FitReport``; for the rest it
    #: stays ``None`` rather than raising ``AttributeError``.
    fit_report_: Optional[Any] = None

    #: Live runtime plumbing set during fit (tracer handles carry
    #: thread locks) that cannot cross a pickle or ``deepcopy``
    #: boundary.  ``__getstate__`` drops these names, and the copy gets
    #: them back as ``None`` — the serving layer relies on this to
    #: deep-copy a fitted model before ``partial_fit`` so the served
    #: original is never mutated.
    _runtime_attrs: ClassVar[tuple] = ("tracer_", "_fit_tracer")

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        for name in self._runtime_attrs:
            state.pop(name, None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        for name in self._runtime_attrs:
            self.__dict__.setdefault(name, None)

    @classmethod
    def _param_names(cls) -> List[str]:
        """Constructor parameter names, minus deprecated spellings."""
        signature = inspect.signature(cls.__init__)
        names = []
        for name, parameter in signature.parameters.items():
            if name == "self":
                continue
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                raise TypeError(
                    f"{cls.__name__}.__init__ must not use *args/**kwargs"
                )
            if name in cls._deprecated_params:
                continue
            names.append(name)
        return names

    def get_params(self, deep: bool = True) -> Dict[str, Any]:
        """Current constructor parameters as a dict.

        ``deep`` is accepted for sklearn signature compatibility; no
        estimator here nests another, so it has no effect.
        """
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self: E, **params: Any) -> E:
        """Update parameters in place; returns ``self``.

        Unknown names raise ``ValueError`` (catching typos is the whole
        point of the sklearn contract); deprecated names are mapped to
        their replacement with a :class:`ReproDeprecationWarning`.
        """
        if not params:
            return self
        valid = self._param_names()
        for name, value in params.items():
            target = name
            if name in self._deprecated_params:
                prop = getattr(type(self), name, None)
                if isinstance(prop, property) and prop.fset is not None:
                    # Classes that fold several old knobs into one new
                    # parameter (e.g. SolverConfig) expose each old name
                    # as an aliasing property whose setter warns and
                    # migrates the value field-wise — assigning the raw
                    # value to the *target* would clobber the group.
                    setattr(self, name, value)
                    continue
                target = self._deprecated_params[name]
                warn_deprecated_param(type(self), name, target)
            if target not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for "
                    f"{type(self).__name__}; valid parameters: "
                    f"{sorted(valid)}"
                )
            setattr(self, target, value)
        return self

    def fitted_attributes(self) -> Dict[str, Any]:
        """Fitted-state markers currently set on this instance.

        The sklearn convention: fitted state lives in public attributes
        with a trailing underscore (``components_``, ``coef_``,
        ``fit_report_``, ...).  Only non-``None`` values count — every
        constructor initializes its markers to ``None``.
        """
        return {
            name: value
            for name, value in vars(self).items()
            if name.endswith("_")
            and not name.startswith("_")
            and value is not None
        }

    def is_fitted(self) -> bool:
        """True once ``fit`` has populated any fitted-state marker.

        The registry promotion path in :mod:`repro.serving` refuses
        unfitted models with this check, so it must stay accurate for
        every estimator — the shared API tests assert it flips on fit
        and resets on :func:`clone`.
        """
        return bool(self.fitted_attributes())

    def clone(self: E) -> E:
        """A new unfitted instance with this estimator's parameters."""
        return clone(self)


def clone(estimator: E) -> E:
    """Construct a fresh unfitted copy from ``get_params()``.

    Works on anything implementing the protocol (not just
    :class:`ReproEstimator` subclasses).  Fitted state (trailing
    underscore attributes) is *not* copied — same semantics as
    ``sklearn.base.clone`` — and the copy is verified to carry none,
    so a constructor that leaks fitted-looking state fails loudly here
    rather than corrupting a registry promotion.
    """
    params = estimator.get_params()
    new = type(estimator)(**params)
    reconstructed = new.get_params()
    for name, value in params.items():
        if reconstructed.get(name) is not value and reconstructed.get(
            name
        ) != value:
            raise InvariantViolationError(
                f"{type(estimator).__name__} does not store parameter "
                f"{name!r} verbatim (got {reconstructed.get(name)!r}, "
                f"expected {value!r}); constructors must only store"
            )
    if isinstance(new, ReproEstimator) and new.is_fitted():
        leaked = sorted(new.fitted_attributes())
        raise InvariantViolationError(
            f"{type(estimator).__name__}() initializes fitted-state "
            f"markers {leaked} to non-None values; constructors must "
            "leave all trailing-underscore attributes as None"
        )
    return new


def all_estimators() -> Dict[str, Callable[[], Type[ReproEstimator]]]:
    """Name → class loader for every public estimator.

    Values are zero-argument callables (lazy imports keep this module
    free of circular dependencies); ``all_estimators()["SRDA"]()``
    yields the class.  The shared API tests parametrize over this
    registry, so adding an estimator here opts it into the protocol
    contract.
    """

    def _core(name: str) -> Callable[[], Type[ReproEstimator]]:
        def load() -> Type[ReproEstimator]:
            import repro

            return getattr(repro, name)

        return load

    names = (
        "SRDA",
        "KernelSRDA",
        "SparseSRDA",
        "SemiSupervisedSRDA",
        "SpectralRegressionEmbedding",
        "LDA",
        "RLDA",
        "IDRQR",
        "PCA",
        "RidgeClassifier",
    )
    return {name: _core(name) for name in names}
