"""The graph-embedding view of LDA (Section II-A).

The between-class scatter factors through a graph matrix: with centered
data ``X̄`` (samples as rows here, transposing the paper's convention)

    S_b = X̄ᵀ W X̄                                         (Eqn 7)

where ``W`` is block "diagonal" over classes with entries ``1/m_k``
between same-class samples and 0 otherwise (Eqn 6).  The LDA eigenproblem
``S_b a = λ S_t a`` then becomes ``X̄ᵀWX̄ a = λ X̄ᵀX̄ a`` (Eqn 8), which is
the form Theorem 1 exploits.

This module provides ``W`` and the scatter matrices both ways (direct
definitions Eqn 2/3 and the graph factorization) so tests can verify the
identity, plus the generalized graph builders the paper points to for
unsupervised / semi-supervised extensions (references [12]–[16]).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.base import class_counts


def lda_weight_matrix(y_indices: np.ndarray, n_classes: int) -> np.ndarray:
    """Dense ``(m, m)`` LDA graph matrix ``W`` of Eqn 6.

    ``W[i, j] = 1/m_k`` when samples ``i`` and ``j`` both belong to class
    ``k``, else 0.  Materialized densely — this is an analysis/testing
    tool; SRDA itself never forms it (that is the whole point).
    """
    y_indices = np.asarray(y_indices, dtype=np.int64)
    counts = class_counts(y_indices, n_classes)
    same_class = y_indices[:, None] == y_indices[None, :]
    weights = 1.0 / counts[y_indices]
    return same_class * weights[None, :]


def center_rows(X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(X - μ, μ)`` with ``μ`` the global sample mean."""
    X = np.asarray(X, dtype=np.float64)
    mean = X.mean(axis=0)
    return X - mean, mean


def within_class_scatter(X: np.ndarray, y_indices: np.ndarray, n_classes: int) -> np.ndarray:
    """``S_w = Σ_k Σ_{i∈k} (xᵢ - μ_k)(xᵢ - μ_k)ᵀ``  (Eqn 2)."""
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[1]
    Sw = np.zeros((n, n))
    for k in range(n_classes):
        rows = X[y_indices == k]
        if rows.shape[0] == 0:
            continue
        centered = rows - rows.mean(axis=0)
        Sw += centered.T @ centered
    return Sw


def between_class_scatter(
    X: np.ndarray, y_indices: np.ndarray, n_classes: int
) -> np.ndarray:
    """``S_b = Σ_k m_k (μ_k - μ)(μ_k - μ)ᵀ``  (Eqn 3)."""
    X = np.asarray(X, dtype=np.float64)
    mean = X.mean(axis=0)
    n = X.shape[1]
    Sb = np.zeros((n, n))
    counts = class_counts(y_indices, n_classes)
    for k in range(n_classes):
        if counts[k] == 0:
            continue
        diff = X[y_indices == k].mean(axis=0) - mean
        Sb += counts[k] * np.outer(diff, diff)
    return Sb


def total_scatter(X: np.ndarray) -> np.ndarray:
    """``S_t = Σᵢ (xᵢ - μ)(xᵢ - μ)ᵀ = S_b + S_w``."""
    centered, _ = center_rows(X)
    return centered.T @ centered


def between_scatter_via_graph(
    X: np.ndarray, y_indices: np.ndarray, n_classes: int
) -> np.ndarray:
    """``S_b = X̄ᵀ W X̄`` (Eqn 7) — the graph-embedding factorization."""
    centered, _ = center_rows(X)
    W = lda_weight_matrix(y_indices, n_classes)
    return centered.T @ W @ centered


def scaled_indicator(y_indices: np.ndarray, n_classes: int) -> np.ndarray:
    """``E`` with ``E[i, k] = 1/√m_k`` for ``i`` in class ``k``, else 0.

    Satisfies ``W = E Eᵀ`` — the rank-``c`` factorization behind the
    ``H = Uᵀ E`` cross-product trick in the LDA baseline (§II-B).
    """
    y_indices = np.asarray(y_indices, dtype=np.int64)
    counts = class_counts(y_indices, n_classes)
    m = y_indices.shape[0]
    E = np.zeros((m, n_classes))
    E[np.arange(m), y_indices] = 1.0 / np.sqrt(counts[y_indices])
    return E


def weight_matrix_eigenstructure(
    y_indices: np.ndarray, n_classes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Closed-form eigenpairs of ``W``: eigenvalue 1 × ``c``, 0 elsewhere.

    Returns ``(eigenvalues, eigenvectors)`` for the ``c`` unit-eigenvalue
    eigenvectors (normalized class indicators).  Used to verify Theorem 1
    numerically without a dense eigensolver.
    """
    from repro.core.responses import indicator_matrix

    counts = class_counts(y_indices, n_classes)
    indicators = indicator_matrix(y_indices, n_classes)
    eigvecs = indicators / np.sqrt(counts)[None, :]
    return np.ones(n_classes), eigvecs


# ----------------------------------------------------------------------
# Generalized graph builders (the paper's noted extension hooks)
# ----------------------------------------------------------------------

def knn_affinity(
    X: np.ndarray, n_neighbors: int = 5, mode: str = "binary"
) -> np.ndarray:
    """Symmetric k-nearest-neighbor affinity graph (unsupervised).

    ``mode="binary"`` gives 0/1 weights; ``mode="heat"`` uses the heat
    kernel ``exp(-‖xᵢ-xⱼ‖²/2σ²)`` with ``σ`` the median neighbor
    distance.  This is the graph used when SRDA is generalized to
    unsupervised subspace learning (refs [12], [13]).
    """
    X = np.asarray(X, dtype=np.float64)
    m = X.shape[0]
    if n_neighbors < 1 or n_neighbors >= m:
        raise ValueError("n_neighbors must be in [1, m)")
    sq = np.sum(X**2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.clip(d2, 0.0, None, out=d2)
    np.fill_diagonal(d2, np.inf)
    neighbor_idx = np.argsort(d2, axis=1)[:, :n_neighbors]

    W = np.zeros((m, m))
    rows = np.repeat(np.arange(m), n_neighbors)
    cols = neighbor_idx.ravel()
    if mode == "binary":
        W[rows, cols] = 1.0
    elif mode == "heat":
        neighbor_d2 = d2[rows, cols]
        sigma2 = np.median(neighbor_d2)
        if sigma2 <= 0:
            sigma2 = 1.0
        W[rows, cols] = np.exp(-neighbor_d2 / (2.0 * sigma2))
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return np.maximum(W, W.T)  # symmetrize


def semi_supervised_affinity(
    X: np.ndarray,
    y_indices: np.ndarray,
    n_classes: int,
    n_neighbors: int = 5,
    supervised_weight: float = 1.0,
) -> np.ndarray:
    """Blend the LDA graph on labeled samples with a kNN graph on all.

    ``y_indices`` uses ``-1`` for unlabeled samples.  Labeled pairs of
    the same class receive the LDA weight scaled by
    ``supervised_weight``; all samples additionally connect through the
    kNN affinity.  This mirrors the semi-supervised construction of the
    spectral-regression family (ref [16]).
    """
    y_indices = np.asarray(y_indices, dtype=np.int64)
    W = knn_affinity(X, n_neighbors=n_neighbors)
    labeled = y_indices >= 0
    if labeled.any():
        labels = y_indices[labeled]
        counts = np.bincount(labels, minlength=n_classes)
        idx = np.flatnonzero(labeled)
        same = labels[:, None] == labels[None, :]
        weights = supervised_weight / counts[labels]
        block = same * weights[None, :]
        W[np.ix_(idx, idx)] += block
    return W


def graph_laplacian(
    W: np.ndarray, normalized: bool = False
) -> np.ndarray:
    """Graph Laplacian ``D - W`` (or its symmetric normalization)."""
    W = np.asarray(W, dtype=np.float64)
    degrees = W.sum(axis=1)
    if not normalized:
        return np.diag(degrees) - W
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    return np.eye(W.shape[0]) - (inv_sqrt[:, None] * W) * inv_sqrt[None, :]


def graph_responses(
    W: np.ndarray,
    n_components: int,
    drop_constant: bool = True,
) -> np.ndarray:
    """Leading eigenvectors of an arbitrary affinity ``W`` as responses.

    Generalizes SRDA's closed-form responses to graphs without block
    structure: solve the (dense, small-``m``) eigenproblem ``W y = λ D y``
    and return the top ``n_components`` non-trivial eigenvectors.  With
    the LDA graph this reproduces the indicator span.
    """
    W = np.asarray(W, dtype=np.float64)
    degrees = W.sum(axis=1)
    degrees = np.where(degrees > 0, degrees, 1.0)
    inv_sqrt = 1.0 / np.sqrt(degrees)
    S = (inv_sqrt[:, None] * W) * inv_sqrt[None, :]
    eigvals, eigvecs = np.linalg.eigh(0.5 * (S + S.T))
    order = np.argsort(eigvals)[::-1]
    eigvecs = inv_sqrt[:, None] * eigvecs[:, order]
    start = 1 if drop_constant else 0
    selected = eigvecs[:, start : start + n_components]
    norms = np.linalg.norm(selected, axis=0)
    norms = np.where(norms > 0, norms, 1.0)
    return selected / norms
