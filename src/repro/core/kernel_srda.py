"""Kernel SRDA — the spectral-regression KDA extension (paper ref [14]).

The paper notes its framework generalizes beyond linear projections; the
companion ICDM'07 paper kernelizes the regression step.  The projective
function becomes ``f(x) = Σᵢ γᵢ K(x, xᵢ)``, and each response is fit by
kernel ridge regression:

    γ = argmin_γ ‖K γ - ȳ‖² + α γᵀKγ   ⇒   (K + αI) γ = ȳ

(using the standard RKHS-norm penalty; ``K + αI`` is SPD for α > 0, so
one Cholesky factorization serves all ``c - 1`` responses, exactly
mirroring the linear normal-equations path).

Implemented kernels: linear, RBF (``gamma`` defaults to ``1/n``),
polynomial, and precomputed Gram matrices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import (
    NotFittedError,
    as_dense,
    validate_data,
    working_dtype,
)
from repro.core.estimator import ReproEstimator
from repro.core.responses import generate_responses
from repro.observability import Tracer, resolve_tracer
from repro.robustness import FitReport, guarded_solve


def linear_kernel(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """``K[i, j] = xᵢ · yⱼ``."""
    return X @ Y.T


def rbf_kernel(X: np.ndarray, Y: np.ndarray, gamma: float) -> np.ndarray:
    """``K[i, j] = exp(-γ ‖xᵢ - yⱼ‖²)``."""
    x_sq = np.sum(X**2, axis=1)[:, None]
    y_sq = np.sum(Y**2, axis=1)[None, :]
    d2 = np.clip(x_sq + y_sq - 2.0 * (X @ Y.T), 0.0, None)
    return np.exp(-gamma * d2)


def polynomial_kernel(
    X: np.ndarray, Y: np.ndarray, degree: int, coef0: float, gamma: float
) -> np.ndarray:
    """``K[i, j] = (γ xᵢ·yⱼ + coef0)^degree``."""
    return (gamma * (X @ Y.T) + coef0) ** degree


class KernelSRDA(ReproEstimator):
    """Kernel discriminant analysis via spectral regression.

    Parameters
    ----------
    alpha:
        Regularization for the kernel ridge systems; must be > 0 (the
        kernel matrix is typically singular or near-singular otherwise).
    kernel:
        ``"linear"``, ``"rbf"``, ``"poly"``, or ``"precomputed"`` (then
        ``fit``/``transform`` take Gram matrices: ``(m, m)`` for fit,
        ``(m_test, m_train)`` for transform).
    gamma, degree, coef0:
        Kernel hyperparameters; ``gamma`` defaults to ``1 / n_features``.
    trace:
        Observability control, as :class:`~repro.core.srda.SRDA`'s
        ``trace`` parameter: ``fit`` emits a ``kernel_srda.fit`` span
        with nested validate/responses/gram/solve/embed phases.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        kernel: str = "rbf",
        gamma: Optional[float] = None,
        degree: int = 3,
        coef0: float = 1.0,
        trace=None,
    ) -> None:
        if alpha <= 0:
            raise ValueError("KernelSRDA requires alpha > 0")
        if kernel not in ("linear", "rbf", "poly", "precomputed"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.alpha = float(alpha)
        self.kernel = kernel
        self.gamma = gamma
        self.degree = int(degree)
        self.coef0 = float(coef0)
        self.trace = trace
        self.tracer_: Optional[Tracer] = None
        self.dual_coef_: Optional[np.ndarray] = None
        self.X_fit_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None
        self.centroids_: Optional[np.ndarray] = None
        self.fit_report_: Optional[FitReport] = None
        self._train_embedding: Optional[np.ndarray] = None

    def _gram(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        gamma = self.gamma
        if gamma is None:
            gamma = 1.0 / max(1, X.shape[1])
        if self.kernel == "linear":
            return linear_kernel(X, Y)
        if self.kernel == "rbf":
            return rbf_kernel(X, Y, gamma)
        return polynomial_kernel(X, Y, self.degree, self.coef0, gamma)

    def fit(self, X, y) -> "KernelSRDA":
        """Fit the kernel discriminant embedding."""
        tracer = resolve_tracer(self.trace)
        self.tracer_ = tracer if tracer.enabled else None
        with tracer.span(
            "kernel_srda.fit", alpha=self.alpha, kernel=self.kernel
        ):
            return self._fit_phases(X, y, tracer)

    def _fit_phases(self, X, y, tracer: Tracer) -> "KernelSRDA":
        with tracer.span("kernel_srda.validate"):
            X, classes, y_indices = validate_data(X, y)
        self.classes_ = classes
        with tracer.span(
            "kernel_srda.responses", n_classes=int(classes.shape[0])
        ):
            responses = generate_responses(y_indices, classes.shape[0])

        with tracer.span("kernel_srda.gram") as gram_span:
            if self.kernel == "precomputed":
                K = np.asarray(X, dtype=np.float64)
                if K.shape[0] != K.shape[1]:
                    raise ValueError(
                        "precomputed fit needs a square Gram matrix"
                    )
                self.X_fit_ = None
            else:
                X = as_dense(X)
                self.X_fit_ = X
                K = self._gram(X, X)
            gram_span.set_attribute("gram_rows", int(K.shape[0]))

        # K + αI is SPD in exact arithmetic, but a near-singular kernel
        # with a tiny alpha can still break the factorization — route
        # through the guarded chain and keep the diagnostics.
        report = FitReport(requested_solver="cholesky")
        self.fit_report_ = report
        with tracer.span("kernel_srda.solve") as solve_span:
            result = guarded_solve(
                K, responses, alpha=self.alpha, report=report
            )
            solve_span.set_attribute("solver", result.solver)
        if result.fallbacks:
            report.add_warning(
                f"kernel system solve degraded to {result.solver} "
                f"(effective_alpha={result.effective_alpha:.3g})"
            )
        self.dual_coef_ = result.x
        with tracer.span("kernel_srda.embed"):
            self._train_embedding = K @ self.dual_coef_
            self._store_centroids(self._train_embedding, y_indices)
        return self

    def _store_centroids(self, Z: np.ndarray, y_indices: np.ndarray) -> None:
        n_classes = self.classes_.shape[0]
        centroids = np.zeros((n_classes, Z.shape[1]))
        for k in range(n_classes):
            centroids[k] = Z[y_indices == k].mean(axis=0)
        self.centroids_ = centroids

    def transform(self, X) -> np.ndarray:
        """Embed samples: ``K(X, X_train) @ dual_coef``.

        The kernel itself is evaluated in float64 (RBF exponentials
        underflow badly at single precision); the returned embedding
        follows the :func:`~repro.core.base.working_dtype` contract —
        float32 input yields a float32 embedding.
        """
        if self.dual_coef_ is None:
            raise NotFittedError("KernelSRDA must be fitted before use")
        dtype = working_dtype(X)
        if self.kernel == "precomputed":
            K = np.asarray(X, dtype=np.float64)
            if K.shape[1] != self.dual_coef_.shape[0]:
                raise ValueError(
                    "precomputed transform needs shape (m_test, m_train)"
                )
        else:
            K = self._gram(as_dense(X), self.X_fit_)
        return (K @ self.dual_coef_).astype(dtype, copy=False)

    def fit_transform(self, X, y) -> np.ndarray:
        """Fit and return the training embedding (no extra kernel pass)."""
        self.fit(X, y)
        return self._train_embedding

    def decision_function(self, X) -> np.ndarray:
        """Per-class scores: higher = closer centroid in the embedding.

        Same contract as
        :meth:`repro.core.base.LinearEmbedder.decision_function`:
        ``(m, c)`` scores ``2 z·c_k - ‖c_k‖²``, ``argmax`` is the
        predicted class, float32 input yields float32 scores.
        """
        if self.dual_coef_ is None:
            raise NotFittedError("KernelSRDA must be fitted before use")
        if self.centroids_ is None:
            raise NotFittedError("fit() did not record class centroids")
        Z = self.transform(X)
        C = np.asarray(self.centroids_, dtype=Z.dtype)
        cross = Z @ C.T
        return 2.0 * cross - np.sum(C * C, axis=1)

    def predict(self, X) -> np.ndarray:
        """Nearest-centroid classification in the kernel embedding."""
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X, y) -> float:
        """Accuracy of :meth:`predict`."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
