"""Request batching — single-row predicts coalesced into block calls.

A serving front end receives rows one at a time, but every estimator in
this package answers a *block* of rows for nearly the price of one: the
prediction surface is a matmat against the fitted components, so the
per-request cost collapses when requests share a BLAS call.  The
:class:`BatchingPredictor` exploits exactly that:

- callers submit one row and block on a ticket;
- a single worker thread drains the queue, waits at most ``max_wait``
  seconds for stragglers (up to ``max_batch`` rows), stacks the rows
  into one **float32** matrix — the unified predict surface propagates
  float32 end-to-end, halving memory traffic — and issues one
  ``predict``/``decision_function``/``transform`` call;
- each ticket's wall-clock latency (submit → result available) lands in
  a :class:`repro.observability.Histogram`, so p50/p95/p99 and
  sustained throughput fall out of the metrics snapshot that
  ``python -m repro serve`` exposes at ``/metrics``.

The model is looked up *per batch* via a zero-argument callable, so a
registry promotion or rollback between batches takes effect on the next
batch with no queue drain or lock handshake.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

import numpy as np

from repro.observability import MetricsRegistry

#: Prediction-surface methods a batch may target.
BATCH_METHODS = ("predict", "decision_function", "transform")


@dataclass
class PredictorStats:
    """Point-in-time SLO summary derived from the metrics registry."""

    requests: int
    batches: int
    mean_batch_size: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    throughput_rows_per_s: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "throughput_rows_per_s": self.throughput_rows_per_s,
        }


def _caller_error(exc: BaseException) -> BaseException:
    """A per-caller copy of a worker-side failure.

    Every ticket in a failed group re-raises its error from a
    *different* caller thread; re-raising one shared exception object
    concurrently mutates a shared ``__traceback__``, so each caller
    gets its own instance, chained to the worker's original.
    """
    try:
        clone = type(exc)(*exc.args)
    except TypeError:
        clone = RuntimeError(f"{type(exc).__name__}: {exc}")
    clone.__cause__ = exc
    return clone


class _Ticket:
    """One pending request: a row, an event, and a result slot."""

    __slots__ = ("row", "method", "submitted_at", "done", "result", "error")

    def __init__(self, row: np.ndarray, method: str) -> None:
        self.row = row
        self.method = method
        self.submitted_at = time.perf_counter()
        self.done = threading.Event()
        self.result: Any = None
        self.error: Optional[BaseException] = None


class BatchingPredictor:
    """Coalesce single-row requests into block prediction calls.

    Parameters
    ----------
    model:
        A fitted estimator, or a zero-argument callable returning one
        (e.g. ``lambda: registry.active("srda")`` — promotions then
        apply from the next batch onward).
    max_batch:
        Upper bound on rows per block call.
    max_wait:
        Seconds the worker waits for stragglers after the first row of
        a batch arrives.  ``0`` degenerates to per-row calls (useful as
        the unbatched control in benchmarks).
    method:
        Default prediction surface: ``"predict"``,
        ``"decision_function"``, or ``"transform"``.
    metrics:
        Registry for SLO instruments; a private one is created when
        omitted.  Instrument names are ``serving.request_latency_s``,
        ``serving.batch_size``, ``serving.batch_duration_s`` and the
        counters ``serving.requests`` / ``serving.batches`` /
        ``serving.errors``.
    """

    def __init__(
        self,
        model: Any,
        max_batch: int = 64,
        max_wait: float = 0.002,
        method: str = "predict",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        if method not in BATCH_METHODS:
            raise ValueError(
                f"method must be one of {BATCH_METHODS}, got {method!r}"
            )
        self._supplier: Callable[[], Any] = (
            model if callable(model) else (lambda: model)
        )
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.method = method
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue: "queue.Queue[Optional[_Ticket]]" = queue.Queue()
        self._closed = threading.Event()
        # Orders submissions against close(): the shutdown sentinel
        # must be the last queue entry, or a ticket enqueued between
        # close()'s flag-set and its put() would hang behind it.
        self._lifecycle = threading.Lock()
        self._started_at: Optional[float] = None
        self._worker = threading.Thread(
            target=self._run, name="repro-serving-batcher", daemon=True
        )
        self._worker.start()

    # -- submission side --------------------------------------------------

    def submit(
        self, row: Sequence[float], method: Optional[str] = None
    ) -> _Ticket:
        """Enqueue one row; returns a ticket to wait on."""
        arr = np.asarray(row, dtype=np.float32)
        if arr.ndim != 1:
            raise ValueError(
                f"submit takes a single 1-D row, got shape {arr.shape}"
            )
        ticket = _Ticket(arr, method or self.method)
        with self._lifecycle:
            if self._closed.is_set():
                raise RuntimeError("BatchingPredictor is closed")
            self._queue.put(ticket)
        return ticket

    def predict(
        self,
        row: Sequence[float],
        method: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Submit one row and block until its result is ready."""
        ticket = self.submit(row, method=method)
        if not ticket.done.wait(timeout):
            raise TimeoutError("prediction did not complete in time")
        if ticket.error is not None:
            raise ticket.error
        return ticket.result

    # -- worker side ------------------------------------------------------

    def _collect(self) -> Optional[list]:
        """Block for the first ticket, then linger up to ``max_wait``."""
        try:
            first = self._queue.get(timeout=0.05)
        except queue.Empty:
            return None
        if first is None:  # shutdown sentinel
            return []
        batch = [first]
        deadline = time.perf_counter() + self.max_wait
        while len(batch) < self.max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                ticket = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if ticket is None:
                self._queue.put(None)  # keep the sentinel for next loop
                break
            batch.append(ticket)
        return batch

    def _serve_group(self, model: Any, method: str, group: list) -> None:
        started = time.perf_counter()
        try:
            X = np.stack([t.row for t in group]).astype(
                np.float32, copy=False
            )
            results = getattr(model, method)(X)
        # Sanctioned boundary: any model failure must reach the waiting
        # callers instead of killing the worker thread, which serves
        # every other in-flight request.
        except BaseException as exc:  # repro: noqa-RPR002
            self.metrics.counter("serving.errors").add(len(group))
            for ticket in group:
                ticket.error = _caller_error(exc)
                ticket.done.set()
            return
        finished = time.perf_counter()
        self.metrics.histogram("serving.batch_size").observe(len(group))
        self.metrics.histogram("serving.batch_duration_s").observe(
            finished - started
        )
        self.metrics.counter("serving.batches").add(1)
        latency = self.metrics.histogram("serving.request_latency_s")
        for i, ticket in enumerate(group):
            ticket.result = results[i]
            latency.observe(finished - ticket.submitted_at)
            ticket.done.set()
        self.metrics.counter("serving.requests").add(len(group))

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                if self._closed.is_set() and self._queue.empty():
                    return
                continue
            if not batch:  # sentinel with nothing queued before it
                return
            if self._started_at is None:
                self._started_at = time.perf_counter()
            model = self._supplier()
            # One block call per distinct method in the batch; order
            # within a group is preserved.
            for method in BATCH_METHODS:
                group = [t for t in batch if t.method == method]
                if group:
                    self._serve_group(model, method, group)

    # -- lifecycle and SLOs -----------------------------------------------

    def stats(self) -> PredictorStats:
        """Current SLO summary (latency percentiles, throughput)."""
        latency = self.metrics.histogram("serving.request_latency_s")
        sizes = self.metrics.histogram("serving.batch_size")
        requests = int(self.metrics.counter("serving.requests").value)
        elapsed = (
            time.perf_counter() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return PredictorStats(
            requests=requests,
            batches=int(self.metrics.counter("serving.batches").value),
            mean_batch_size=sizes.mean,
            p50_latency_s=latency.percentile(50.0),
            p95_latency_s=latency.percentile(95.0),
            p99_latency_s=latency.percentile(99.0),
            throughput_rows_per_s=(
                requests / elapsed if elapsed > 0 else 0.0
            ),
        )

    def close(self, timeout: float = 5.0) -> None:
        """Drain pending requests and stop the worker thread."""
        with self._lifecycle:
            if self._closed.is_set():
                return
            self._closed.set()
            self._queue.put(None)
        self._worker.join(timeout)

    def __enter__(self) -> "BatchingPredictor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
