"""Threaded HTTP front end for the serving layer — ``python -m repro serve``.

Standard-library only (:mod:`http.server` + :mod:`json`); one
:class:`~repro.serving.batching.BatchingPredictor` per server instance
serves the *active* version of a :class:`~repro.serving.registry.ModelRegistry`
entry, so promotions and rollbacks apply between batches without a
restart.  Endpoints:

- ``POST /predict`` — ``{"rows": [[...], ...], "method": "predict"}``;
  each row is routed through the batching queue individually (that is
  the point: concurrent clients coalesce into block calls) and the
  response carries labels/scores plus per-row latency.
- ``POST /partial_fit`` — ``{"rows": ..., "labels": ...}``; absorbs a
  batch into a **deep copy** of the active model, registered and
  promoted as a new version.  The served object is never mutated, so
  in-flight predicts keep a consistent model and ``/rollback``
  genuinely restores the pre-update version.
- ``POST /promote`` / ``POST /rollback`` — move the traffic pointer.
- ``GET /models`` — registry snapshot; ``GET /metrics`` — SLO
  instruments (p50/p95/p99 latency, batch sizes, throughput);
  ``GET /healthz`` — liveness.
- ``POST /shutdown`` — graceful stop (drains the batcher, flushes the
  tracer so the final metrics snapshot lands in ``--trace-jsonl``).

The JSON protocol is deliberately flat so a CI smoke test is a couple
of ``urllib`` calls.
"""

from __future__ import annotations

import copy
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.serving.batching import BATCH_METHODS, BatchingPredictor
from repro.serving.registry import ModelNotFoundError, ModelRegistry


def _jsonable(value: Any) -> Any:
    """Numpy results → plain JSON values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


class ServingApp:
    """The HTTP-agnostic request logic (unit-testable without sockets)."""

    def __init__(
        self,
        registry: ModelRegistry,
        model_name: str,
        max_batch: int = 64,
        max_wait: float = 0.002,
        tracer=None,
    ) -> None:
        self.registry = registry
        self.model_name = model_name
        self.tracer = tracer
        # Serializes /partial_fit: concurrent updates must stack on one
        # another, not both branch off the same base version.
        self._update_lock = threading.Lock()
        metrics = tracer.metrics if tracer is not None else None
        self.predictor = BatchingPredictor(
            lambda: self.registry.active(self.model_name),
            max_batch=max_batch,
            max_wait=max_wait,
            metrics=metrics,
        )

    # Each handler returns (status, payload).

    def predict(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        rows = body.get("rows")
        if rows is None:
            return 400, {"error": "missing 'rows'"}
        method = body.get("method", "predict")
        if method not in BATCH_METHODS:
            return 400, {
                "error": f"method must be one of {list(BATCH_METHODS)}"
            }
        try:
            X = np.asarray(rows, dtype=np.float32)
        except (TypeError, ValueError) as exc:
            return 400, {
                "error": f"rows must be a numeric 2-D array: {exc}"
            }
        if X.ndim == 1:
            X = X[None, :]
        if X.ndim != 2:
            return 400, {"error": f"rows must be 2-D, got shape {X.shape}"}
        tickets = [self.predictor.submit(row, method=method) for row in X]
        results = []
        for ticket in tickets:
            if not ticket.done.wait(30.0):
                return 504, {"error": "prediction timed out"}
            if ticket.error is not None:
                return 500, {"error": str(ticket.error)}
            results.append(_jsonable(ticket.result))
        return 200, {
            "results": results,
            "method": method,
            "model": self.model_name,
            "version": self.registry.active_version(self.model_name),
        }

    def partial_fit(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        rows, labels = body.get("rows"), body.get("labels")
        if rows is None or labels is None:
            return 400, {"error": "missing 'rows' or 'labels'"}
        try:
            X = np.asarray(rows, dtype=np.float64)
            y = np.asarray(labels)
        except (TypeError, ValueError) as exc:
            return 400, {
                "error": f"rows/labels must be rectangular arrays: {exc}"
            }
        # The batch is absorbed by a deep copy, never the served object:
        # the batcher keeps predicting against the old version's fully
        # consistent state, the promote below swaps traffic atomically,
        # and /rollback genuinely restores the pre-update model.
        with self._update_lock:
            model = self.registry.active(self.model_name)
            if not callable(getattr(model, "partial_fit", None)):
                return 409, {
                    "error": f"{type(model).__name__} has no partial_fit"
                }
            candidate = copy.deepcopy(model)
            try:
                candidate.partial_fit(X, y)
            except (ValueError, RuntimeError) as exc:
                return 400, {"error": str(exc)}
            version = self.registry.register(
                self.model_name,
                candidate,
                note=f"partial_fit +{X.shape[0]} rows",
            )
            self.registry.promote(self.model_name, version)
        report = getattr(candidate, "fit_report_", None)
        incremental = getattr(report, "incremental", None)
        return 200, {
            "model": self.model_name,
            "version": version,
            "incremental": incremental,
        }

    def promote(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        version = body.get("version")
        if version is None:
            return 400, {"error": "missing 'version'"}
        try:
            self.registry.promote(self.model_name, int(version))
        except ModelNotFoundError as exc:
            return 404, {"error": str(exc)}
        return 200, {
            "model": self.model_name,
            "active_version": self.registry.active_version(self.model_name),
        }

    def rollback(self, _body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        try:
            version = self.registry.rollback(self.model_name)
        except ValueError as exc:
            return 409, {"error": str(exc)}
        return 200, {"model": self.model_name, "active_version": version}

    def models(self) -> Tuple[int, Dict[str, Any]]:
        return 200, self.registry.describe()

    def metrics(self) -> Tuple[int, Dict[str, Any]]:
        stats = self.predictor.stats().as_dict()
        snapshot = self.predictor.metrics.snapshot()
        return 200, {"slo": stats, "instruments": snapshot}

    def close(self) -> None:
        self.predictor.close()
        if self.tracer is not None:
            self.tracer.flush()


class _Handler(BaseHTTPRequestHandler):
    app: ServingApp  # injected by make_server
    server_version = "repro-serve/1.0"

    def log_message(self, *_args) -> None:  # quiet by default
        pass

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        try:
            return json.loads(self.rfile.read(length).decode())
        except json.JSONDecodeError:
            return {"__malformed__": True}

    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        if self.path == "/healthz":
            self._send(200, {"status": "ok"})
        elif self.path == "/models":
            self._send(*self.app.models())
        elif self.path == "/metrics":
            self._send(*self.app.metrics())
        else:
            self._send(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server convention
        body = self._body()
        if body.get("__malformed__"):
            self._send(400, {"error": "request body is not valid JSON"})
            return
        if self.path == "/predict":
            self._send(*self.app.predict(body))
        elif self.path == "/partial_fit":
            self._send(*self.app.partial_fit(body))
        elif self.path == "/promote":
            self._send(*self.app.promote(body))
        elif self.path == "/rollback":
            self._send(*self.app.rollback(body))
        elif self.path == "/shutdown":
            self._send(200, {"status": "shutting down"})
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
        else:
            self._send(404, {"error": f"unknown path {self.path}"})


def make_server(
    app: ServingApp, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` threaded HTTP server.

    ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address``.
    """
    handler = type("BoundHandler", (_Handler,), {"app": app})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve_forever(
    app: ServingApp, host: str, port: int, ready: Optional[Any] = None
) -> None:
    """Run the server until ``/shutdown`` (or KeyboardInterrupt)."""
    server = make_server(app, host, port)
    bound = server.server_address
    print(f"repro serve listening on http://{bound[0]}:{bound[1]}")
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
        app.close()
