"""Versioned model store with a register / promote / rollback lifecycle.

The registry is the control plane of the serving layer: traffic always
flows to the *active* version of a named model, and operators move that
pointer — never the models themselves.  The rules:

- :meth:`ModelRegistry.register` accepts only *fitted* estimators
  (checked via :meth:`~repro.core.estimator.ReproEstimator.is_fitted`,
  which is why ``clone`` dropping fitted state on every estimator is a
  hard protocol requirement) and assigns a monotonically increasing
  version number per name;
- the first registered version of a name is promoted automatically
  (a service with zero active models serves nothing); later versions
  stay staged until an explicit :meth:`~ModelRegistry.promote`;
- every promotion is appended to a history, and
  :meth:`~ModelRegistry.rollback` pops it — rollback is "undo the last
  promotion", not "guess an older version";
- models are never mutated or re-fitted in place by the registry; an
  updated model (e.g. after ``partial_fit``) is registered as a *new*
  version so a bad update stays rollback-able.

All methods take one lock, so interleaved register/promote/predict
races resolve to some serial order; lookups return the model object
itself (estimators are not mutated by ``predict``/``transform``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class ModelNotFoundError(KeyError):
    """Unknown model name or version."""


@dataclass(frozen=True)
class ModelRecord:
    """One immutable registry entry."""

    name: str
    version: int
    model: Any
    registered_at: float
    note: str = ""

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary (for ``/models`` and CLI listings)."""
        return {
            "name": self.name,
            "version": self.version,
            "estimator": type(self.model).__name__,
            "registered_at": self.registered_at,
            "note": self.note,
        }


@dataclass
class _ModelLine:
    """All versions of one model name plus its promotion history."""

    records: Dict[int, ModelRecord] = field(default_factory=dict)
    next_version: int = 1
    #: Promotion history; the last entry is the active version.
    promoted: List[int] = field(default_factory=list)


def _require_fitted(model: Any) -> None:
    is_fitted = getattr(model, "is_fitted", None)
    if callable(is_fitted):
        if not is_fitted():
            raise ValueError(
                f"refusing to register an unfitted "
                f"{type(model).__name__}; fit() it first"
            )
        return
    # Duck-typed models outside the ReproEstimator protocol must at
    # least expose a prediction surface.
    if not any(
        callable(getattr(model, method, None))
        for method in ("predict", "decision_function", "transform")
    ):
        raise ValueError(
            f"{type(model).__name__} exposes no predict/decision_function/"
            "transform method; nothing to serve"
        )


class ModelRegistry:
    """Thread-safe, versioned store of fitted estimators."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._lines: Dict[str, _ModelLine] = {}

    def _line(self, name: str) -> _ModelLine:
        line = self._lines.get(name)
        if line is None:
            raise ModelNotFoundError(f"no model registered as {name!r}")
        return line

    def register(self, name: str, model: Any, note: str = "") -> int:
        """Store a fitted model under ``name``; returns its version.

        The first version of a name is promoted immediately; later
        versions stay staged until :meth:`promote`.
        """
        if not name:
            raise ValueError("model name must be non-empty")
        _require_fitted(model)
        with self._lock:
            line = self._lines.setdefault(name, _ModelLine())
            version = line.next_version
            line.next_version += 1
            line.records[version] = ModelRecord(
                name=name,
                version=version,
                model=model,
                registered_at=time.time(),
                note=note,
            )
            if not line.promoted:
                line.promoted.append(version)
            return version

    def promote(self, name: str, version: int) -> None:
        """Point traffic for ``name`` at ``version``."""
        with self._lock:
            line = self._line(name)
            if version not in line.records:
                raise ModelNotFoundError(
                    f"{name!r} has no version {version}; "
                    f"known: {sorted(line.records)}"
                )
            if line.promoted and line.promoted[-1] == version:
                return  # already active; keep history minimal
            line.promoted.append(version)

    def rollback(self, name: str) -> int:
        """Undo the last promotion; returns the now-active version."""
        with self._lock:
            line = self._line(name)
            if len(line.promoted) < 2:
                raise ValueError(
                    f"{name!r} has no prior promotion to roll back to"
                )
            line.promoted.pop()
            return line.promoted[-1]

    def active_version(self, name: str) -> int:
        """Version currently serving traffic for ``name``."""
        with self._lock:
            return self._line(name).promoted[-1]

    def active(self, name: str) -> Any:
        """The model currently serving traffic for ``name``."""
        with self._lock:
            line = self._line(name)
            return line.records[line.promoted[-1]].model

    def get(self, name: str, version: Optional[int] = None) -> ModelRecord:
        """A specific record (active version when ``version`` is None)."""
        with self._lock:
            line = self._line(name)
            if version is None:
                version = line.promoted[-1]
            record = line.records.get(version)
            if record is None:
                raise ModelNotFoundError(
                    f"{name!r} has no version {version}; "
                    f"known: {sorted(line.records)}"
                )
            return record

    def versions(self, name: str) -> List[int]:
        with self._lock:
            return sorted(self._line(name).records)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._lines)

    def describe(self) -> Dict[str, Any]:
        """JSON-safe snapshot of every line (for ``/models``)."""
        with self._lock:
            return {
                name: {
                    "active_version": line.promoted[-1],
                    "versions": [
                        line.records[v].describe()
                        for v in sorted(line.records)
                    ],
                }
                for name, line in self._lines.items()
            }
