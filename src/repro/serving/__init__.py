"""Model serving — the online half of the linear-time pitch.

Training in time linear in the data (the paper's headline) only pays
off in production if fitted models actually serve traffic and appended
rows are absorbed incrementally (:meth:`repro.core.srda.SRDA.partial_fit`)
instead of triggering cold refits.  This package is the zero-dependency
serving substrate:

- :class:`ModelRegistry` — versioned store of fitted
  :class:`~repro.core.estimator.ReproEstimator` models with
  register / promote / rollback lifecycle, safe for concurrent readers;
- :class:`BatchingPredictor` — a queue that coalesces single-row
  predict requests into block matmat calls (float32 end-to-end via the
  unified predict surface), with p50/p95/p99 latency and throughput
  recorded in :mod:`repro.observability` histograms;
- :mod:`repro.serving.server` — a threaded HTTP front end exposed as
  ``python -m repro serve``.

See ``docs/SERVING.md`` for the operational guide and
``benchmarks/bench_serving.py`` for the SLO benchmark.
"""

from repro.serving.batching import BatchingPredictor, PredictorStats
from repro.serving.registry import ModelRecord, ModelRegistry

__all__ = [
    "BatchingPredictor",
    "ModelRecord",
    "ModelRegistry",
    "PredictorStats",
]
