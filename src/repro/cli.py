"""Command-line interface: ``python -m repro <command>``.

Three commands mirror the repository's main entry points:

- ``bench`` — run one dataset's (algorithm × training size × split)
  sweep and print the paper-style error and time tables;
- ``table1`` — print the Table-I complexity model for a problem size;
- ``serve`` — expose a fitted (or demo) model over HTTP with request
  batching and SLO metrics (see ``docs/SERVING.md``);
- ``info`` — package version and component inventory.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

DATASET_BUILDERS = {
    "pie": lambda scale, seed: _faces(scale, seed),
    "isolet": lambda scale, seed: _isolet(scale, seed),
    "mnist": lambda scale, seed: _mnist(scale, seed),
    "news": lambda scale, seed: _news(scale, seed),
}


def _faces(scale, seed):
    from repro.datasets import make_faces

    if scale == "paper":
        return make_faces(seed=seed)
    # 80 images/subject keeps the declared default train sizes (up to
    # 60/class) feasible at the small scale
    return make_faces(n_subjects=20, images_per_subject=80, seed=seed)


def _isolet(scale, seed):
    from repro.datasets import make_spoken_letters

    if scale == "paper":
        return make_spoken_letters(seed=seed)
    # 60 train speakers = 120 samples/class, enough for the largest
    # declared size (110/class)
    return make_spoken_letters(
        n_train_speakers=60, n_test_speakers=10, seed=seed
    )


def _mnist(scale, seed):
    from repro.datasets import make_digits

    if scale == "paper":
        return make_digits(seed=seed)
    # 2000 train = 200/class, covering the declared sizes up to 170
    return make_digits(n_train=2000, n_test=400, seed=seed)


def _news(scale, seed):
    from repro.datasets import make_text

    if scale == "paper":
        return make_text(seed=seed)
    return make_text(n_docs=3000, vocab_size=26214, seed=seed)


def _algorithms(
    names: List[str],
    sparse: bool,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    solver: Optional[str] = None,
):
    from repro import IDRQR, LDA, RLDA, SRDA, SolverConfig

    parallel = {}
    if backend is not None:
        # Route SRDA's operator products through the chosen backend
        # (results are bitwise identical for a given data shape — the
        # shard layout never depends on the backend or worker count).
        parallel = {"backend": backend, "n_jobs": workers}
    # --solver overrides SRDA's solver choice on both the sparse path
    # (default "lsqr" per the paper's 20Newsgroups protocol) and the
    # dense path (default "auto").
    sparse_config = SolverConfig(
        solver=solver if solver is not None else "lsqr", **parallel
    )
    dense_config = SolverConfig(
        solver=solver if solver is not None else "auto", **parallel
    )
    registry = {
        "lda": ("LDA", lambda: LDA()),
        "rlda": ("RLDA", lambda: RLDA(alpha=1.0)),
        "srda": (
            "SRDA",
            (
                lambda: SRDA(
                    alpha=1.0, config=sparse_config, max_iter=15, tol=0.0,
                )
            )
            if sparse
            else (lambda: SRDA(alpha=1.0, config=dense_config)),
        ),
        "idrqr": ("IDR/QR", lambda: IDRQR(alpha=1.0)),
    }
    selected = {}
    for name in names:
        key = name.lower()
        if key not in registry:
            raise SystemExit(
                f"unknown algorithm {name!r}; choose from "
                f"{sorted(registry)}"
            )
        label, factory = registry[key]
        selected[label] = factory
    return selected


def _configure_tracing(args):
    """Install the global tracer per --trace-jsonl/--profile.

    Returns the in-memory sink that backs ``--profile`` (or ``None``),
    so the caller can render the table after the run.
    """
    if not (args.trace_jsonl or args.profile):
        return None
    from repro.observability import (
        InMemorySink,
        JsonlSink,
        MultiSink,
        configure,
    )

    sinks = []
    profile_sink = None
    if args.trace_jsonl:
        sinks.append(JsonlSink(args.trace_jsonl))
    if args.profile:
        profile_sink = InMemorySink()
        sinks.append(profile_sink)
    configure(sink=sinks[0] if len(sinks) == 1 else MultiSink(sinks))
    return profile_sink


def _finish_tracing(profile_sink) -> None:
    """Flush the global tracer and print the profile table if asked."""
    from repro.observability import format_profile, get_tracer

    tracer = get_tracer()
    if not tracer.enabled:
        return
    tracer.close()
    if profile_sink is not None:
        print()
        print(format_profile(profile_sink.spans, metrics=tracer.metrics))


def cmd_bench(args) -> int:
    from repro.eval import (
        format_error_table,
        format_time_table,
        run_experiment,
    )

    profile_sink = _configure_tracing(args)
    if args.cache:
        from repro.datasets.cache import cached

        dataset = cached(
            lambda: DATASET_BUILDERS[args.dataset](args.scale, args.seed),
            args.cache,
        )
    else:
        dataset = DATASET_BUILDERS[args.dataset](args.scale, args.seed)
    algorithms = _algorithms(
        args.algorithms,
        dataset.is_sparse,
        backend=args.backend,
        workers=args.workers,
        solver=args.solver,
    )
    sizes = None
    if args.sizes:
        raw = [float(s) for s in args.sizes.split(",")]
        sizes = [s if s < 1 else int(s) for s in raw]
    budget = args.memory_budget_gb * 1e9 if args.memory_budget_gb else None
    result = run_experiment(
        dataset,
        algorithms,
        train_sizes=sizes,
        n_splits=args.splits,
        seed=args.seed,
        memory_budget_bytes=budget,
        continue_on_error=not args.fail_fast,
        retries=args.retries,
        checkpoint_path=args.checkpoint,
        n_jobs=args.jobs,
    )
    print(format_error_table(result))
    print()
    print(format_time_table(result))
    _finish_tracing(profile_sink)
    return 0


def cmd_table1(args) -> int:
    from repro.complexity import table1

    rows = table1(args.m, args.n, args.c, k=args.k, s=args.s)
    print(
        f"Table I model at m={args.m}, n={args.n}, c={args.c}, "
        f"k={args.k}" + (f", s={args.s}" if args.s else "")
    )
    print(f"{'algorithm':28} {'flam':>14} {'memory (floats)':>16}")
    print("-" * 60)
    for name, row in rows.items():
        print(f"{name:28} {row['flam']:14.3e} {row['memory']:16.3e}")
    return 0


def cmd_serve(args) -> int:
    import numpy as np

    from repro.serving.registry import ModelRegistry
    from repro.serving.server import ServingApp, serve_forever

    tracer = None
    if args.trace_jsonl:
        from repro.observability import JsonlSink, configure, get_tracer

        configure(sink=JsonlSink(args.trace_jsonl))
        tracer = get_tracer()

    if args.model_path:
        from repro.io import load_model

        model = load_model(args.model_path)
        name = args.name or type(model).__name__.lower()
    else:
        # Demo model: a small synthetic problem so the server is
        # exercisable without any dataset on disk.
        from repro import SRDA, SolverConfig

        rng = np.random.default_rng(args.seed)
        centers = 4.0 * rng.standard_normal((args.classes, args.features))
        X = np.vstack(
            [
                centers[k]
                + rng.standard_normal(
                    (args.rows // args.classes, args.features)
                )
                for k in range(args.classes)
            ]
        )
        y = np.repeat(np.arange(args.classes), args.rows // args.classes)
        # Seed via partial_fit so POST /partial_fit extends this same
        # incremental stream instead of starting a fresh one.
        model = SRDA(
            alpha=1.0, config=SolverConfig(solver="lsqr"), tol=1e-8
        ).partial_fit(X, y)
        name = args.name or "srda-demo"
        print(
            f"fitted demo SRDA on {X.shape[0]}x{X.shape[1]} "
            f"synthetic rows ({args.classes} classes)"
        )

    registry = ModelRegistry()
    registry.register(name, model, note="served at startup")
    app = ServingApp(
        registry,
        name,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        tracer=tracer,
    )
    try:
        serve_forever(app, args.host, args.port)
    finally:
        if tracer is not None:
            tracer.close()
    return 0


def cmd_info(_args) -> int:
    import repro

    print(f"repro {repro.__version__} — SRDA (ICDE 2008) reproduction")
    print("estimators: " + ", ".join(sorted(repro.all_estimators())))
    print("datasets:   pie, isolet, mnist, news (synthetic, Table II shapes)")
    print("run 'python -m repro bench --help' to reproduce a table")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SRDA paper reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    bench = commands.add_parser("bench", help="run a table sweep")
    bench.add_argument("dataset", choices=sorted(DATASET_BUILDERS))
    bench.add_argument(
        "--algorithms", nargs="+", default=["lda", "rlda", "srda", "idrqr"]
    )
    bench.add_argument(
        "--sizes",
        help="comma-separated per-class counts or ratios (<1), "
        "e.g. '10,20,30' or '0.05,0.1'",
    )
    bench.add_argument("--splits", type=int, default=3)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--scale", choices=("small", "paper"), default="small"
    )
    bench.add_argument(
        "--memory-budget-gb", type=float, default=None,
        help="fail algorithms whose predicted working set exceeds this",
    )
    bench.add_argument(
        "--fail-fast", action="store_true",
        help="abort the sweep on the first algorithm error instead of "
        "recording it as a failed cell and continuing",
    )
    bench.add_argument(
        "--retries", type=int, default=0,
        help="re-attempt a failed fit this many times before recording "
        "the failure",
    )
    bench.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="persist sweep progress to PATH after each split and "
        "resume from it on restart",
    )
    bench.add_argument(
        "--cache", default=None, metavar="PATH",
        help="load the dataset from this .npz cache (generating and "
        "saving it on first use; corrupt caches are regenerated)",
    )
    bench.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run each split's per-algorithm cells on N worker threads "
        "(-1 = all cores); results are bitwise identical to --jobs 1",
    )
    bench.add_argument(
        "--backend", default=None,
        choices=("serial", "thread", "process", "distributed"),
        help="execution backend for SRDA's operator products; "
        "'distributed' ships shards once to supervised localhost "
        "worker processes and degrades to a local backend (recorded "
        "in the fit report) if the cluster becomes unhealthy",
    )
    bench.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker count for --backend (-1 = all cores)",
    )
    bench.add_argument(
        "--solver", default=None,
        choices=("auto", "normal", "lsqr", "sketched_lsqr"),
        help="override SRDA's solver; 'sketched_lsqr' adds a "
        "sketch-and-precondition step that cuts LSQR iteration counts "
        "2-5x at equal accuracy on ill-conditioned data",
    )
    bench.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="write observability spans, solver iteration events, and "
        "metrics to PATH as JSON Lines (validate with "
        "'python -m repro.observability PATH')",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="print a per-span wall-time profile (and counters) after "
        "the sweep",
    )
    bench.set_defaults(func=cmd_bench)

    model = commands.add_parser("table1", help="print the complexity model")
    model.add_argument("--m", type=int, required=True)
    model.add_argument("--n", type=int, required=True)
    model.add_argument("--c", type=int, default=10)
    model.add_argument("--k", type=int, default=20)
    model.add_argument("--s", type=float, default=None)
    model.set_defaults(func=cmd_table1)

    serve = commands.add_parser(
        "serve",
        help="serve a fitted model over HTTP with request batching",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8321,
        help="0 binds an ephemeral port (printed at startup)",
    )
    serve.add_argument(
        "--model-path", default=None, metavar="PATH",
        help="serve a model saved with repro.io.save_model; omitted = "
        "fit a demo SRDA on synthetic data",
    )
    serve.add_argument(
        "--name", default=None,
        help="registry name for the served model",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="max rows coalesced into one block predict",
    )
    serve.add_argument(
        "--max-wait", type=float, default=0.002,
        help="seconds to wait for stragglers after a batch opens",
    )
    serve.add_argument("--rows", type=int, default=600)
    serve.add_argument("--features", type=int, default=32)
    serve.add_argument("--classes", type=int, default=6)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--trace-jsonl", default=None, metavar="PATH",
        help="write spans and the final SLO metrics snapshot "
        "(p50/p95/p99 latency histograms) to PATH as JSON Lines",
    )
    serve.set_defaults(func=cmd_serve)

    info = commands.add_parser("info", help="package summary")
    info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", file=sys.stderr)
        return 130
    except (ValueError, RuntimeError, OSError) as exc:
        # Dataset errors (CorruptCacheError), solver errors
        # (NotPositiveDefiniteError, SolverFailure), and I/O failures all
        # derive from these; surface one actionable line, not a
        # traceback.  Genuine bugs (TypeError, AssertionError, ...)
        # still propagate.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
