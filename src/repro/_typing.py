"""Shared numpy typing aliases for the typed public surface.

The numeric contracts PR 2 committed to — float32 propagating end to
end, operators always returning 1-D/2-D float arrays of the declared
value dtype — only become machine-checkable once the signatures say
them.  These aliases are the vocabulary those signatures use; keeping
them in one private module means the whole package agrees on what "a
float vector" is, and a future dtype-policy change touches one file.

Conventions
-----------
- ``FloatArray`` is the working type of every kernel: a real floating
  ndarray whose dtype is one of the supported *value dtypes* (float64,
  or float32 on the low-memory path — see
  :func:`repro.linalg.sparse.as_value_dtype`).
- ``Float64Array`` is for quantities deliberately accumulated in double
  precision regardless of the data dtype (norm estimates, scalar QR
  recurrences, condition numbers).
- ``MatrixLike`` is what user-facing entry points accept: anything
  :func:`repro.linalg.operators.as_operator` can wrap.  It is spelled
  ``Any`` rather than a Union because scipy.sparse has no type stubs;
  the runtime check lives in ``as_operator`` itself.
"""

from __future__ import annotations

from typing import Any, Tuple, Union

import numpy as np
from numpy.typing import ArrayLike, DTypeLike, NDArray

__all__ = [
    "ArrayLike",
    "BoolArray",
    "DTypeLike",
    "Float64Array",
    "FloatArray",
    "FloatDType",
    "IntArray",
    "MatrixLike",
    "NDArray",
    "Shape2D",
]

#: Any real floating ndarray (float32 or float64 in practice).
FloatArray = NDArray[np.floating[Any]]

#: Double-precision ndarray — deliberate float64 accumulation.
Float64Array = NDArray[np.float64]

#: Integer index arrays (int64 throughout the CSR substrate).
IntArray = NDArray[np.integer[Any]]

#: Boolean masks.
BoolArray = NDArray[np.bool_]

#: The dtype object of a value-dtype array.
FloatDType = np.dtype[np.floating[Any]]

#: ``(n_rows, n_cols)`` of an operator or matrix.
Shape2D = Tuple[int, int]

#: Anything accepted where a data matrix is expected: dense array-likes,
#: our CSRMatrix, scipy.sparse matrices (unstubbed, hence Any), or a
#: LinearOperator.  Validated at runtime by ``as_operator``.
MatrixLike = Union[ArrayLike, Any]
