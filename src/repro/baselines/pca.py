"""PCA — the substrate behind the classical two-stage PCA+LDA pipeline.

Section II-A observes that the SVD of the centered data *is* the PCA of
the data, which "justifies the rationale behind the two-stage PCA+LDA
approach" (Belhumeur et al.'s Fisherfaces, ref [5]).  We implement PCA on
the same cross-product SVD kernel so that identity is testable, and
provide :class:`PCALDA`, the two-stage pipeline itself, as an extra
point of comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import NotFittedError, as_dense, working_dtype
from repro.core.estimator import ReproEstimator
from repro.linalg.svd import cross_product_svd


class PCA(ReproEstimator):
    """Principal component analysis via the cross-product SVD.

    Parameters
    ----------
    n_components:
        Components to keep; ``None`` keeps the full numerical rank.

    Attributes
    ----------
    components_:
        ``(n, d)`` orthonormal principal directions.
    singular_values_:
        Singular values of the centered data for the kept directions.
    explained_variance_:
        Per-direction variance ``σ²/(m-1)``.
    """

    def __init__(self, n_components: Optional[int] = None) -> None:
        self.n_components = n_components
        self.components_: Optional[np.ndarray] = None
        self.singular_values_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None

    def fit(self, X, y=None) -> "PCA":
        """Fit the principal directions (``y`` ignored, for API parity)."""
        X = as_dense(X)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        m = X.shape[0]
        if m < 2:
            raise ValueError("PCA needs at least 2 samples")
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, s, V = cross_product_svd(centered)
        if self.n_components is not None:
            V = V[:, : self.n_components]
            s = s[: self.n_components]
        self.components_ = V
        self.singular_values_ = s
        self.explained_variance_ = s**2 / (m - 1)
        return self

    def transform(self, X) -> np.ndarray:
        """Project onto the principal directions.

        Follows the :func:`~repro.core.base.working_dtype` contract:
        float32 input yields a float32 embedding.
        """
        if self.components_ is None:
            raise NotFittedError("PCA must be fitted before use")
        dtype = working_dtype(X)
        X = as_dense(X)
        Z = (X - self.mean_) @ self.components_
        return Z.astype(dtype, copy=False)

    def fit_transform(self, X, y=None) -> np.ndarray:
        """Fit and project in one pass."""
        return self.fit(X).transform(X)

    def inverse_transform(self, Z: np.ndarray) -> np.ndarray:
        """Map embedded points back to the original space."""
        if self.components_ is None:
            raise NotFittedError("PCA must be fitted before use")
        return Z @ self.components_.T + self.mean_


class PCALDA(ReproEstimator):
    """The classical two-stage PCA+LDA pipeline (Fisherfaces).

    Reduces to ``pca_components`` dimensions first (restoring the
    non-singularity of the scatter matrices), then runs LDA there.  The
    paper's analysis shows the SVD-based LDA subsumes this; the class
    exists so that equivalence can be demonstrated empirically.
    """

    def __init__(self, pca_components: Optional[int] = None) -> None:
        self.pca_components = pca_components
        self.pca_: Optional[PCA] = None
        self.lda_ = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X, y) -> "PCALDA":
        """Fit PCA then LDA in the reduced space."""
        from repro.baselines.lda import LDA

        X = as_dense(X)
        y = np.asarray(y)
        n_components = self.pca_components
        if n_components is None:
            # Standard Fisherfaces choice: keep rank of the centered data.
            n_components = min(X.shape[0] - 1, X.shape[1])
        self.pca_ = PCA(n_components=n_components).fit(X)
        Z = self.pca_.transform(X)
        self.lda_ = LDA().fit(Z, y)
        self.classes_ = self.lda_.classes_
        return self

    def transform(self, X) -> np.ndarray:
        """Apply both stages."""
        if self.pca_ is None:
            raise NotFittedError("PCALDA must be fitted before use")
        return self.lda_.transform(self.pca_.transform(X))

    def predict(self, X) -> np.ndarray:
        """Nearest-centroid prediction through both stages."""
        if self.pca_ is None:
            raise NotFittedError("PCALDA must be fitted before use")
        return self.lda_.predict(self.pca_.transform(X))

    def score(self, X, y) -> float:
        """Accuracy of :meth:`predict`."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
