"""One-vs-rest ridge classification on SRDA's solver substrate.

SRDA's central move is replacing an eigenproblem with ridge regressions.
This module provides the *plain* regression classifier — one-hot targets,
same solvers — as a control: it shares every line of numerical machinery
with SRDA but regresses on raw indicators instead of the spectral
responses, so ablations can isolate what the response construction buys.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.base import NotFittedError, validate_data, working_dtype
from repro.linalg.lsqr import FAILURE_ISTOPS, ISTOP_REASONS, lsqr
from repro.linalg.operators import AppendOnesOperator, as_operator
from repro.linalg.sparse import CSRMatrix, is_sparse
from repro.core.estimator import ReproEstimator, warn_deprecated_param
from repro.core.solver_config import SolverConfig, config_alias
from repro.robustness import FitReport, guarded_solve


class RidgeClassifier(ReproEstimator):
    """Multi-class ridge regression on ±1 one-vs-rest targets.

    Parameters
    ----------
    alpha:
        Tikhonov regularization (> 0 for the normal path).
    config:
        A :class:`~repro.core.solver_config.SolverConfig`; only its
        ``solver`` field is consulted here — ``"normal"``, ``"lsqr"``,
        or ``"auto"`` (LSQR for sparse input).  Passing ``solver=`` as
        a keyword is deprecated and merges into the config.
    max_iter, tol:
        LSQR controls, as in :class:`repro.core.srda.SRDA`.
    """

    _deprecated_params = {"solver": "config"}

    def __init__(
        self,
        alpha: float = 1.0,
        config: Optional[SolverConfig] = None,
        max_iter: int = 20,
        tol: float = 1e-10,
        solver: Optional[str] = None,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        if config is None:
            config = SolverConfig()
        elif not isinstance(config, SolverConfig):
            raise ValueError(
                f"config must be a SolverConfig, got {type(config).__name__}"
            )
        if solver is not None:
            warn_deprecated_param(type(self), "solver", "config")
            config = config.replace(solver=solver)
        if config.solver not in ("auto", "normal", "lsqr"):
            raise ValueError(
                f"unknown solver {config.solver!r}; RidgeClassifier "
                "supports 'auto', 'normal', or 'lsqr'"
            )
        self.alpha = float(alpha)
        self.config = config
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None
        self.lsqr_iterations_: Optional[List[int]] = None
        self.fit_report_: Optional[FitReport] = None

    solver = config_alias("solver")

    def fit(self, X, y) -> "RidgeClassifier":
        """Fit one ridge regression per class against ±1 targets."""
        report = FitReport(requested_solver=self.solver)
        self.fit_report_ = report
        X, classes, y_indices = validate_data(X, y)
        self.classes_ = classes
        m = y_indices.shape[0]
        n_classes = classes.shape[0]
        targets = -np.ones((m, n_classes))
        targets[np.arange(m), y_indices] = 1.0

        sparse_input = isinstance(X, CSRMatrix) or is_sparse(X)
        solver = self.solver
        if solver == "auto":
            solver = "lsqr" if sparse_input else "normal"

        if solver == "normal":
            if sparse_input:
                X = (
                    X.to_dense()
                    if isinstance(X, CSRMatrix)
                    else np.asarray(X.todense(), dtype=np.float64)
                )
            X_aug = np.hstack([X, np.ones((m, 1))])
            n_aug = X_aug.shape[1]
            if self.alpha == 0.0:
                # Minimum-norm least squares is the α→0 limit and never
                # fails; record it as the solver used.
                weights, _, _, _ = np.linalg.lstsq(X_aug, targets, rcond=None)
                report.solver = "lstsq"
                report.effective_alpha = 0.0
            elif n_aug <= m:
                gram = X_aug.T @ X_aug
                solve = guarded_solve(
                    gram, X_aug.T @ targets, alpha=self.alpha, report=report
                )
                weights = solve.x
            else:
                outer = X_aug @ X_aug.T
                solve = guarded_solve(
                    outer, targets, alpha=self.alpha, report=report
                )
                weights = X_aug.T @ solve.x
            self.lsqr_iterations_ = None
        else:
            op = AppendOnesOperator(as_operator(X))
            weights = np.empty((op.shape[1], n_classes))
            iterations = []
            istops = []
            residuals = []
            for k in range(n_classes):
                result = lsqr(
                    op,
                    targets[:, k],
                    damp=float(np.sqrt(self.alpha)),
                    atol=self.tol,
                    btol=self.tol,
                    iter_lim=self.max_iter,
                )
                weights[:, k] = result.x
                iterations.append(result.itn)
                istops.append(result.istop)
                residuals.append(float(result.r2norm))
                if result.istop in FAILURE_ISTOPS:
                    report.converged = False
                    report.add_warning(
                        f"LSQR failed on class {k}: istop={result.istop} "
                        f"({ISTOP_REASONS[result.istop]})"
                    )
            self.lsqr_iterations_ = iterations
            report.solver = "lsqr"
            report.effective_alpha = self.alpha
            report.lsqr_istop = istops
            report.lsqr_iterations = iterations
            report.lsqr_residuals = residuals

        self.coef_ = weights[:-1]
        self.intercept_ = weights[-1]
        return self

    def decision_function(self, X) -> np.ndarray:
        """Per-class regression scores.

        ``(m, c)`` scores; ``argmax`` over a row is the predicted class.
        Follows the :func:`~repro.core.base.working_dtype` contract
        (float32 input yields float32 scores).
        """
        if self.coef_ is None:
            raise NotFittedError("RidgeClassifier must be fitted before use")
        dtype = working_dtype(X)
        coef = np.asarray(self.coef_, dtype=dtype)
        if isinstance(X, CSRMatrix):
            scores = X.matmat(coef)
        elif is_sparse(X):
            scores = np.asarray(X @ coef)
        else:
            X = np.asarray(X)
            if X.dtype != dtype:
                X = X.astype(dtype)
            scores = X @ coef
        scores = scores + np.asarray(self.intercept_, dtype=dtype)
        return scores.astype(dtype, copy=False)

    def transform(self, X) -> np.ndarray:
        """Embed samples into score space.

        The one-vs-rest regression scores *are* the model's learned
        ``c``-dimensional representation; exposing them as ``transform``
        gives the ablation baseline the same embed surface as the
        discriminant estimators.  Identical to
        :meth:`decision_function`.
        """
        return self.decision_function(X)

    def predict(self, X) -> np.ndarray:
        """Class with the highest regression score."""
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]

    def score(self, X, y) -> float:
        """Accuracy of :meth:`predict`."""
        return float(np.mean(self.predict(X) == np.asarray(y)))
