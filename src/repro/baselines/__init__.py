"""Comparison algorithms from the paper's evaluation (Section IV-B).

- :mod:`repro.baselines.lda` — classic LDA, singularity handled by SVD
  exactly as Section II-A describes (including the ``H``-matrix
  cross-product trick).
- :mod:`repro.baselines.rlda` — regularized LDA (Friedman, ref [21]).
- :mod:`repro.baselines.idrqr` — IDR/QR (Ye et al., ref [22]).
- :mod:`repro.baselines.pca` — PCA, the substrate behind the two-stage
  PCA+LDA connection the paper points out.
- :mod:`repro.baselines.ridge` — one-vs-rest ridge classification, a
  plain-regression control that shares SRDA's solver substrate.
"""

from repro.baselines.idrqr import IDRQR
from repro.baselines.lda import LDA
from repro.baselines.pca import PCA
from repro.baselines.rlda import RLDA
from repro.baselines.ridge import RidgeClassifier

__all__ = ["IDRQR", "LDA", "PCA", "RLDA", "RidgeClassifier"]
