"""IDR/QR (Ye, Li, Xiong, Park, Janardan & Kumar, KDD'04 — ref [22]).

IDR/QR sidesteps the large SVD by observing that LDA's useful directions
live (approximately) in the span of the ``c`` class centroids.  The
algorithm:

1. Form the centered centroid matrix ``C = [μ₁ - μ, …, μ_c - μ]``
   (``n × c``) and take its thin QR factorization, ``C = Q R`` — an
   ``O(n c²)`` step in place of LDA's ``O(m n t)`` SVD.
2. Project all data onto ``span(Q)`` (``c`` dimensions) and run a small
   regularized discriminant problem there: ``B̃ v = λ (W̃ + εI) v`` with
   ``B̃ = Qᵀ S_b Q`` and ``W̃ = Qᵀ S_w Q``, both ``c × c``.
3. The transformation is ``G = Q V``.

As the paper stresses, IDR/QR is fast but has no exact relationship to
the LDA objective (the centroid span discards within-class structure
outside it), which is the explanation offered for its consistently
higher error in Tables III–IX.  It also still forms the centered data
to build the reduced scatters, so it hits the same memory wall as LDA
on the largest text runs (Table X's missing cells).

The *incremental* part of the name (:meth:`IDRQR.partial_fit`) is Ye et
al.'s update rule for streaming samples: class counts, class sums and
the global sum are exact sufficient statistics for the centroid matrix
and between-class scatter; the reduced within-class scatter is updated
*approximately* — the new sample's projected deviation is accumulated
against the Q basis current at arrival, and the basis refresh does not
re-project history.  That approximation is the algorithm's documented
trade-off for O(n·c²) updates.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import LinearEmbedder, as_dense, class_counts, validate_data
from repro.linalg.dense import generalized_eigh
from repro.linalg.gram_schmidt import gram_schmidt_qr


class IDRQR(LinearEmbedder):
    """Incremental dimension reduction via QR decomposition.

    Parameters
    ----------
    alpha:
        Regularizer ε added to the reduced within-class scatter so the
        small generalized eigenproblem is well posed (Ye et al. use a
        fixed small constant; 1.0 mirrors the other baselines' default).
        The pre-rename ``ridge`` spelling completed its deprecation
        cycle and has been removed.
    n_components:
        Dimensions to keep; defaults to ``c - 1``.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        n_components: Optional[int] = None,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)
        self.n_components = n_components
        self.components_ = None
        self.intercept_ = None
        self.classes_ = None
        self.centroids_ = None
        self.mean_: Optional[np.ndarray] = None
        # incremental sufficient statistics (populated by fit/partial_fit)
        self._class_counts: Optional[np.ndarray] = None
        self._class_sums: Optional[np.ndarray] = None
        self._total_sum: Optional[np.ndarray] = None
        self._n_seen: int = 0
        self._Q: Optional[np.ndarray] = None
        self._Sw_reduced: Optional[np.ndarray] = None

    def fit(self, X, y) -> "IDRQR":
        """Fit the QR-reduced discriminant transformation."""
        X, classes, y_indices = validate_data(X, y)
        X = as_dense(X)
        self.classes_ = classes
        n_classes = classes.shape[0]
        counts = class_counts(y_indices, n_classes)

        self.mean_ = X.mean(axis=0)
        centroids = np.vstack(
            [X[y_indices == k].mean(axis=0) for k in range(n_classes)]
        )
        C = (centroids - self.mean_).T  # (n, c)

        # Step 1: thin QR of the centroid matrix (rank-deficient safe:
        # dependent centroid directions are dropped).
        Q, _, _ = gram_schmidt_qr(C)
        if Q.shape[1] == 0:
            raise ValueError("all class centroids coincide; IDR/QR undefined")

        # Step 2: scatters in the c-dimensional reduced space.  Projecting
        # the samples first keeps everything O(m·n·c).
        Z = (X - self.mean_) @ Q  # (m, r)
        centroid_z = (centroids - self.mean_) @ Q
        Sb_r = (centroid_z * counts[:, None]).T @ centroid_z
        within = Z - centroid_z[y_indices]
        Sw_r = within.T @ within

        eigvals, V = generalized_eigh(Sb_r, Sw_r, regularization=self.alpha)

        d = n_classes - 1 if self.n_components is None else self.n_components
        d = min(d, V.shape[1])
        self.components_ = Q @ V[:, :d]
        self.intercept_ = -(self.mean_ @ self.components_)
        self._store_centroids(self.transform(X), y_indices)

        # record sufficient statistics so partial_fit can continue
        self._class_counts = counts.astype(np.float64)
        self._class_sums = centroids * counts[:, None]
        self._total_sum = X.sum(axis=0)
        self._n_seen = X.shape[0]
        self._Q = Q
        self._Sw_reduced = Sw_r
        return self

    # ------------------------------------------------------------------
    # Incremental update (Ye et al., the "I" in IDR/QR)
    # ------------------------------------------------------------------
    def partial_fit(self, X, y) -> "IDRQR":
        """Absorb a batch of new samples without refitting from scratch.

        Exact for the centroid structure (counts/sums are sufficient
        statistics); approximate for the reduced within-class scatter,
        which accumulates each sample's projected deviation against the
        Q basis in force when it arrives — Ye et al.'s documented
        trade-off.  Labels must come from the classes seen by ``fit``.
        """
        if self._Q is None:
            return self.fit(X, y)
        X = as_dense(X)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[1] != self._class_sums.shape[1]:
            raise ValueError("partial_fit batch has the wrong feature count")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        unknown = set(np.unique(y)) - set(self.classes_)
        if unknown:
            raise ValueError(
                f"partial_fit saw labels unseen during fit: {sorted(unknown)}"
            )
        label_to_index = {label: k for k, label in enumerate(self.classes_)}
        y_indices = np.array([label_to_index[label] for label in y])
        n_classes = self.classes_.shape[0]

        # 1. accumulate the within-scatter contribution of the new
        #    samples against the *current* basis and pre-update means
        safe_counts = np.maximum(self._class_counts, 1.0)
        old_class_means = self._class_sums / safe_counts[:, None]
        deviations = (X - old_class_means[y_indices]) @ self._Q
        self._Sw_reduced = self._Sw_reduced + deviations.T @ deviations

        # 2. exact update of the centroid sufficient statistics
        for k in range(n_classes):
            mask = y_indices == k
            if mask.any():
                self._class_counts[k] += mask.sum()
                self._class_sums[k] += X[mask].sum(axis=0)
        self._total_sum = self._total_sum + X.sum(axis=0)
        self._n_seen += X.shape[0]
        self.mean_ = self._total_sum / self._n_seen

        # 3. refresh the basis from the updated centroid matrix; pad or
        #    truncate the accumulated reduced scatter if the rank moved
        counts = self._class_counts
        centroids = self._class_sums / np.maximum(counts, 1.0)[:, None]
        C = (centroids - self.mean_).T
        Q_new, _, _ = gram_schmidt_qr(C)
        r_old = self._Q.shape[1]
        r_new = Q_new.shape[1]
        # express the accumulated scatter in the new basis through the
        # overlap map (exact when span(Q) is unchanged)
        overlap = Q_new.T @ self._Q  # (r_new, r_old)
        Sw_r = overlap @ self._Sw_reduced @ overlap.T
        self._Q = Q_new
        self._Sw_reduced = Sw_r

        # 4. re-solve the small eigenproblem
        centroid_z = (centroids - self.mean_) @ Q_new
        Sb_r = (centroid_z * counts[:, None]).T @ centroid_z
        eigvals, V = generalized_eigh(Sb_r, Sw_r, regularization=self.alpha)
        d = n_classes - 1 if self.n_components is None else self.n_components
        d = min(d, V.shape[1])
        self.components_ = Q_new @ V[:, :d]
        self.intercept_ = -(self.mean_ @ self.components_)
        # refresh embedded centroids from the class means (streaming-safe)
        embedded = centroids @ self.components_ + self.intercept_
        self.centroids_ = embedded
        return self
