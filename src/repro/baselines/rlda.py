"""Regularized LDA (Friedman 1989 — the paper's RLDA baseline).

RLDA replaces the singular within-class scatter with ``S_w + αI`` and
solves

    S_b a = λ (S_w + αI) a.

For high-dimensional data we work in the SVD-reduced coordinates, as the
paper does for plain LDA: with ``X̄ = U Σ Vᵀ``, every eigenvector with
λ ≠ 0 lies in ``span(V)`` (``S_b``'s range is inside it, and
``(S_w + αI)⁻¹`` preserves the split ``span(V) ⊕ null(X̄)``), so with
``a = V g`` the problem reduces to the ``r × r`` generalized symmetric
problem

    S_b^r g = λ (S_w^r + αI) g,
    S_b^r = Σ (UᵀWU) Σ,   S_t^r = Σ²,   S_w^r = S_t^r - S_b^r.

This is exact, not an approximation — the reduction changes coordinates,
not the model.  Note that RLDA still pays the full SVD of the centered
data: its cost and memory match LDA's, which is why it falls off the
paper's Table X at the same point LDA does.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import LinearEmbedder, as_dense, validate_data
from repro.core.graph import scaled_indicator
from repro.linalg.dense import generalized_eigh
from repro.linalg.svd import cross_product_svd


class RLDA(LinearEmbedder):
    """Regularized Linear Discriminant Analysis.

    Parameters
    ----------
    alpha:
        Ridge added to the within-class scatter (paper default: 1.0).
    n_components:
        Dimensions to keep; defaults to ``c - 1``.
    svd_tol:
        Rank tolerance of the reduction SVD.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        n_components: Optional[int] = None,
        svd_tol: float = 1e-10,
    ) -> None:
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)
        self.n_components = n_components
        self.svd_tol = float(svd_tol)
        self.components_ = None
        self.intercept_ = None
        self.classes_ = None
        self.centroids_ = None
        self.eigenvalues_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None

    def fit(self, X, y) -> "RLDA":
        """Fit via SVD reduction plus a small generalized eigenproblem."""
        X, classes, y_indices = validate_data(X, y)
        X = as_dense(X)  # same densification hazard as LDA, by design
        self.classes_ = classes
        n_classes = classes.shape[0]

        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        U, s, V = cross_product_svd(centered, tol=self.svd_tol)
        if s.shape[0] == 0:
            raise ValueError("data has zero variance; RLDA is undefined")

        E = scaled_indicator(y_indices, n_classes)
        H = U.T @ E  # (r, c)
        # Reduced scatters in V-coordinates.
        Sb_r = (s[:, None] * (H @ H.T)) * s[None, :]
        St_r = np.diag(s**2)
        Sw_r = St_r - Sb_r

        eigvals, G = generalized_eigh(Sb_r, Sw_r, regularization=self.alpha)

        d = n_classes - 1 if self.n_components is None else self.n_components
        d = min(d, G.shape[1])
        self.eigenvalues_ = eigvals[:d]
        self.components_ = V @ G[:, :d]
        self.intercept_ = -(self.mean_ @ self.components_)
        self._store_centroids(self.transform(X), y_indices)
        return self
