"""Classic LDA, solved by SVD exactly as Section II-A prescribes.

With samples as rows and ``X̄`` the centered data, LDA solves

    X̄ᵀ W X̄ a = λ X̄ᵀ X̄ a                                   (Eqn 8)

``X̄ᵀX̄`` is singular whenever ``n > m``; the paper's fix is the economy
SVD ``X̄ = U Σ Vᵀ``.  Substituting ``a = V Σ⁻¹ b`` reduces Eqn 8 to the
*ordinary* symmetric eigenproblem

    (Uᵀ W U) b = λ b

and with ``W = E Eᵀ`` (``E`` the √-scaled class indicators) the reduced
matrix factors as ``H Hᵀ`` with ``H = Uᵀ E`` of size ``(r, c)`` — so its
leading eigenvectors come from the SVD of the skinny ``H``, computed via
the small ``c × c`` cross-product (§II-B's trick, implemented in
:func:`repro.linalg.svd.cross_product_svd`).

The cost is dominated by the SVD of ``X̄``: ``O(m n t + t³)`` time and
``O(mn + mt + nt)`` memory with ``t = min(m, n)`` — the quantities SRDA
is measured against.  A naive scatter-matrix route is included for
cross-validation on small problems.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import LinearEmbedder, as_dense, validate_data
from repro.core.graph import scaled_indicator
from repro.linalg.svd import cross_product_svd


class LDA(LinearEmbedder):
    """Linear Discriminant Analysis (SVD route of Section II-A).

    Parameters
    ----------
    n_components:
        Dimensions to keep; defaults to ``c - 1`` (the rank bound of the
        between-class scatter).
    svd_tol:
        Rank tolerance passed to the cross-product SVD.

    Attributes
    ----------
    eigenvalues_:
        The LDA eigenvalues λ (trace ratios) of the kept directions;
        each lies in [0, 1] since ``S_b ⪯ S_t``.
    """

    def __init__(
        self, n_components: Optional[int] = None, svd_tol: float = 1e-10
    ) -> None:
        self.n_components = n_components
        self.svd_tol = float(svd_tol)
        self.components_ = None
        self.intercept_ = None
        self.classes_ = None
        self.centroids_ = None
        self.eigenvalues_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None

    def fit(self, X, y) -> "LDA":
        """Fit by SVD of the centered data plus the small H-problem."""
        X, classes, y_indices = validate_data(X, y)
        X = as_dense(X)  # LDA cannot exploit sparsity — the paper's point
        self.classes_ = classes
        n_classes = classes.shape[0]

        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_

        # Step 1 (paper): SVD of the centered data.
        U, s, V = cross_product_svd(centered, tol=self.svd_tol)
        if s.shape[0] == 0:
            raise ValueError("data has zero variance; LDA is undefined")

        # Step 2: eigenvectors of UᵀWU = H Hᵀ with H = Uᵀ E, via the SVD
        # of the (r, c) matrix H — computed from its c × c cross-product.
        E = scaled_indicator(y_indices, n_classes)
        H = U.T @ E
        B, sigma, _ = cross_product_svd(H, tol=self.svd_tol)
        eigenvalues = sigma**2

        d = n_classes - 1 if self.n_components is None else self.n_components
        d = min(d, B.shape[1])
        B = B[:, :d]
        self.eigenvalues_ = eigenvalues[:d]

        # Step 3: recover a = V Σ⁻¹ b.
        self.components_ = V @ (B / s[:, None])
        self.intercept_ = -(self.mean_ @ self.components_)
        self._store_centroids(self.transform(X), y_indices)
        return self


class ScatterLDA(LinearEmbedder):
    """Naive LDA from explicit scatter matrices (small-``n`` oracle).

    Solves ``S_b a = λ S_t a`` by reduction through the Cholesky factor
    of ``S_t + εI``.  Only usable when ``n`` is modest and ``S_t`` is
    nonsingular (or ε > 0); exists so tests can check the SVD route
    against an independent construction.

    The regularizer is ``alpha`` (the pre-rename ``ridge`` spelling
    completed its deprecation cycle and has been removed, same schedule
    as :class:`~repro.baselines.idrqr.IDRQR`).
    """

    def __init__(
        self,
        n_components: Optional[int] = None,
        alpha: float = 0.0,
    ) -> None:
        self.n_components = n_components
        self.alpha = float(alpha)
        self.components_ = None
        self.intercept_ = None
        self.classes_ = None
        self.centroids_ = None
        self.eigenvalues_: Optional[np.ndarray] = None

    def fit(self, X, y) -> "ScatterLDA":
        from repro.core.graph import between_class_scatter, total_scatter
        from repro.linalg.dense import generalized_eigh

        X, classes, y_indices = validate_data(X, y)
        X = as_dense(X)
        self.classes_ = classes
        n_classes = classes.shape[0]

        Sb = between_class_scatter(X, y_indices, n_classes)
        St = total_scatter(X)
        eigvals, eigvecs = generalized_eigh(Sb, St, regularization=self.alpha)

        d = n_classes - 1 if self.n_components is None else self.n_components
        d = min(d, eigvecs.shape[1])
        self.eigenvalues_ = eigvals[:d]
        self.components_ = eigvecs[:, :d]
        mean = X.mean(axis=0)
        self.intercept_ = -(mean @ self.components_)
        self._store_centroids(self.transform(X), y_indices)
        return self
