"""Command-line front end: ``python -m repro.analysis [paths...]``.

Exit status is the CI contract: 0 when no findings survive suppression,
1 when any finding is reported, 2 on usage errors.  The JSON reporter
(``--format json``) emits a machine-readable document for tooling; the
text reporter prints one ``path:line:col: RPRnnn message`` line per
finding plus a summary.

``--complexity`` switches from AST linting to the empirical harness
(:mod:`repro.analysis.complexity.harness`): registered kernel probes
run at geometrically spaced sizes, fitted exponents are checked against
the docstring claims and the ``complexity_baseline.json`` ratchet, and
violations come back as RPR009 findings through the same reporters and
exit codes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from repro.analysis.linter import LintResult, lint_paths
from repro.analysis.rules import DEFAULT_RULES, rule_catalog

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Numeric-contract linter: AST rules (RPR001...) guarding the "
            "kernel invariants this reproduction depends on.  See "
            "docs/STATIC_ANALYSIS.md for the catalog and noqa policy."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="ID",
        help="print one rule's summary and rationale and exit",
    )
    complexity = parser.add_argument_group(
        "complexity contracts (rule RPR009)"
    )
    complexity.add_argument(
        "--complexity",
        action="store_true",
        help=(
            "run the empirical scaling harness instead of the AST "
            "linter; positional paths are ignored"
        ),
    )
    complexity.add_argument(
        "--complexity-scale",
        choices=("smoke", "full"),
        default="smoke",
        help="size ladder: smoke (CI, seconds) or full (baseline tier)",
    )
    complexity.add_argument(
        "--complexity-probes",
        metavar="NAMES",
        help="comma-separated probe names to run (default: all)",
    )
    complexity.add_argument(
        "--complexity-baseline",
        metavar="PATH",
        default="complexity_baseline.json",
        help="ratchet file (default: complexity_baseline.json)",
    )
    complexity.add_argument(
        "--update-complexity-baseline",
        action="store_true",
        help="rewrite the baseline from this run instead of checking it",
    )
    complexity.add_argument(
        "--complexity-report",
        metavar="PATH",
        help="also write the fitted-exponent report (CI artifact) here",
    )
    complexity.add_argument(
        "--complexity-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the probe problem draws (default: 0)",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip() for code in raw.split(",") if code.strip()]


def _report_text(result: LintResult, stream: TextIO) -> None:
    for finding in result.findings:
        stream.write(
            f"{finding.location}: {finding.rule_id} {finding.message}\n"
        )
    stream.write(
        f"{len(result.findings)} finding(s), "
        f"{result.n_suppressed} suppressed, "
        f"{result.n_files} file(s) checked\n"
    )


def _report_json(result: LintResult, stream: TextIO) -> None:
    document = {
        "findings": [finding.to_dict() for finding in result.findings],
        "n_findings": len(result.findings),
        "n_suppressed": result.n_suppressed,
        "n_files": result.n_files,
    }
    json.dump(document, stream, indent=2, sort_keys=True)
    stream.write("\n")


def _run_complexity(args: argparse.Namespace) -> int:
    # Imported here: the harness pulls in numpy and (lazily) the kernel
    # modules, none of which a plain lint run should pay for.
    from repro.analysis.complexity.harness import (
        baseline_payload,
        findings_from_results,
        load_baseline,
        run_harness,
        write_report,
    )
    from repro.analysis.complexity.probes import PROBES

    names = _split_codes(args.complexity_probes)
    if names:
        unknown = sorted(set(names) - set(PROBES))
        if unknown:
            print(
                f"unknown probe(s): {', '.join(unknown)}; "
                f"registered: {', '.join(sorted(PROBES))}",
                file=sys.stderr,
            )
            return 2
    results = run_harness(
        names=names, scale=args.complexity_scale, seed=args.complexity_seed
    )

    baseline_path = Path(args.complexity_baseline)
    if args.update_complexity_baseline:
        payload = baseline_payload(results, scale=args.complexity_scale)
        with baseline_path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote {len(results)} probe baseline(s) to {baseline_path}",
            file=sys.stderr,
        )
        findings = findings_from_results(results, baseline=None)
    else:
        baseline = load_baseline(baseline_path)
        findings = findings_from_results(results, baseline=baseline)

    if args.complexity_report:
        write_report(
            Path(args.complexity_report),
            results,
            findings,
            scale=args.complexity_scale,
        )

    result = LintResult(
        findings=findings, n_files=len(results), n_suppressed=0
    )
    if args.format == "json":
        _report_json(result, sys.stdout)
    else:
        for probe in results:
            sys.stderr.write(
                f"probe {probe.name}: claim {probe.claim} "
                f"(exponent {probe.claimed_exponent:.2f}), "
                f"fitted {probe.fitted_exponent:.2f}\n"
            )
        _report_text(result, sys.stdout)
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(rule_catalog())
        return 0
    if args.explain:
        wanted = args.explain.upper()
        for rule in DEFAULT_RULES:
            if rule.rule_id == wanted:
                print(f"{rule.rule_id} ({rule.name})")
                print(f"  {rule.summary}")
                print(f"  rationale: {rule.rationale}")
                return 0
        print(f"unknown rule {args.explain!r}", file=sys.stderr)
        return 2

    if args.complexity:
        return _run_complexity(args)

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    result = lint_paths(
        [Path(path) for path in args.paths],
        select=_split_codes(args.select),
        ignore=_split_codes(args.ignore),
    )
    if args.format == "json":
        _report_json(result, sys.stdout)
    else:
        _report_text(result, sys.stdout)
    return 0 if result.ok else 1
