"""Machine-checked complexity contracts.

Three coordinated pieces keep the paper's O(m·s) headline honest:

- :mod:`repro.analysis.complexity.grammar` — the ``Complexity: O(...)``
  docstring claim grammar (vocabulary ``m, n, c, nnz, s, k, iters``)
  that rule RPR008 requires of every public kernel function.
- :mod:`repro.analysis.complexity.probes` — the registry mapping claims
  to runnable probes (build a problem at size ``size``, return a
  measured cost).
- :mod:`repro.analysis.complexity.harness` — runs each probe at
  geometrically spaced sizes, fits the log–log slope with
  :func:`repro.complexity.counter.loglog_slope`, and reports RPR009
  findings when a fitted exponent exceeds its claim beyond tolerance or
  the checked-in ``complexity_baseline.json`` ratchet.

Only the grammar is imported eagerly — it is stdlib-only and feeds the
linter; the probes import kernel modules lazily so ``python -m
repro.analysis`` stays fast when the harness is not requested.
"""

from repro.analysis.complexity.grammar import (
    VOCABULARY,
    ClaimParseError,
    ComplexityClaim,
    claim_from_docstring,
    extract_claim_text,
    parse_claim,
)

__all__ = [
    "VOCABULARY",
    "ClaimParseError",
    "ComplexityClaim",
    "claim_from_docstring",
    "extract_claim_text",
    "parse_claim",
]
