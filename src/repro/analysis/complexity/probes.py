"""The probe registry: each ``Complexity:`` claim's runnable witness.

A :class:`ProbeSpec` names a kernel (module + qualname whose docstring
carries the claim), declares how the claim's variables grow with the
probe's single size parameter (the *couplings*), and knows how to build
a ready-to-time thunk at any size.  The harness sweeps each probe over
a geometric size ladder and compares the fitted log–log slope against
the claim's exponent under those couplings.

Every builder uses a seeded :class:`numpy.random.Generator` and does
its setup *outside* the timed thunk, so one-time costs of a different
complexity class (the CSR transpose build, sketch-operator draws,
response orthogonalization inputs) never pollute the slope.  Kernel
modules are imported lazily inside the builders: the registry itself is
imported by the lint CLI, which must stay import-light.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.complexity.grammar import (
    ComplexityClaim,
    claim_from_docstring,
)

__all__ = [
    "PROBES",
    "ProbeSpec",
    "claim_for",
    "register_probe",
    "resolve_target",
]

#: Geometric size ladders.  "smoke" is the CI tier (seconds); "full" is
#: what regenerates the checked-in baseline.  O(nnz) kernels get longer
#: ladders than whole-solver probes, whose constants are ~100× larger.
_KERNEL_SIZES: Mapping[str, Tuple[int, ...]] = {
    "smoke": (2_000, 4_000, 8_000, 16_000),
    "full": (8_000, 16_000, 32_000, 64_000, 128_000, 256_000),
}
_SOLVER_SIZES: Mapping[str, Tuple[int, ...]] = {
    "smoke": (1_500, 3_000, 6_000, 12_000),
    "full": (4_000, 8_000, 16_000, 32_000, 64_000),
}

#: Fixed non-size dimensions shared by the builders.  ``_N_COLS`` stays
#: well above ``_ROW_NNZ`` so column collisions stay rare and the CSR
#: problems keep every claim variable except {m, nnz} constant.
_N_COLS = 256
_ROW_NNZ = 8
_N_CLASSES = 6
_BLOCK_COLS = 5
_ITERATIONS = 8

Thunk = Callable[[], object]
Builder = Callable[[int, np.random.Generator], Thunk]


@dataclass(frozen=True)
class ProbeSpec:
    """One registered claim-to-measurement binding.

    ``module``/``qualname`` locate the object whose docstring carries
    the checked claim (``qualname`` may be dotted for methods).
    ``couplings`` maps claim variables to their growth rate in the
    probe's size parameter; variables absent from the mapping are held
    constant by the builder and treated as constants by the claim's
    exponent evaluation.

    ``measure`` selects the cost metric: ``"wall"`` (best-of-repeats
    seconds via ``measure_seconds``) or ``"flam"`` — the thunk returns
    the operation *count* for one invocation (a
    :class:`~repro.complexity.counter.FlamCountingOperator` total).
    Flam counts are deterministic, so flam probes can carry a much
    tighter per-probe ``tolerance`` than the wall-clock default; a
    ``tolerance`` of ``None`` uses the harness-wide band.
    """

    name: str
    module: str
    qualname: str
    couplings: Mapping[str, float]
    build: Builder
    sizes: Mapping[str, Tuple[int, ...]] = field(
        default_factory=lambda: _KERNEL_SIZES
    )
    note: str = ""
    measure: str = "wall"
    tolerance: Optional[float] = None

    def __post_init__(self) -> None:
        if self.measure not in ("wall", "flam"):
            raise ValueError(
                f"probe {self.name!r}: measure must be 'wall' or 'flam', "
                f"got {self.measure!r}"
            )

    def sizes_for(self, scale: str) -> Tuple[int, ...]:
        try:
            return self.sizes[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of "
                f"{sorted(self.sizes)}"
            ) from None


PROBES: Dict[str, ProbeSpec] = {}


def register_probe(spec: ProbeSpec) -> ProbeSpec:
    if spec.name in PROBES:
        raise ValueError(f"duplicate probe name {spec.name!r}")
    PROBES[spec.name] = spec
    return spec


def resolve_target(spec: ProbeSpec) -> Any:
    """Import and return the object carrying the probe's claim."""
    target: Any = importlib.import_module(spec.module)
    for part in spec.qualname.split("."):
        target = getattr(target, part)
    return target


def claim_for(spec: ProbeSpec) -> ComplexityClaim:
    """The parsed claim on the probe's target docstring.

    Raises :class:`ValueError` when the target carries no claim — a
    registered probe without a claim is a wiring bug, reported loudly
    rather than skipped.
    """
    target = resolve_target(spec)
    doc = target.__doc__
    if isinstance(target, property):  # claim lives on the getter
        doc = target.fget.__doc__ if target.fget else None
    claim = claim_from_docstring(doc)
    if claim is None:
        raise ValueError(
            f"probe {spec.name!r} targets {spec.module}:{spec.qualname} "
            "which has no Complexity: O(...) claim in its docstring"
        )
    return claim


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------
def _csr_problem(m: int, rng: np.random.Generator) -> Any:
    """A ``(m, 256)`` CSR matrix with exactly 8 stored entries per row.

    ``nnz = 8·m`` by construction, so scaling ``m`` scales ``nnz``
    linearly — the coupling every O(nnz) probe declares.
    """
    from repro.linalg.sparse import CSRMatrix

    nnz = m * _ROW_NNZ
    data = rng.standard_normal(nnz)
    indices = rng.integers(0, _N_COLS, size=nnz, dtype=np.int64)
    indptr = np.arange(m + 1, dtype=np.int64) * _ROW_NNZ
    return CSRMatrix(data, indices, indptr, (m, _N_COLS))


def _labels(m: int, rng: np.random.Generator) -> np.ndarray:
    """Length-``m`` labels over ``_N_CLASSES`` classes, all non-empty."""
    y = rng.integers(0, _N_CLASSES, size=m, dtype=np.int64)
    y[:_N_CLASSES] = np.arange(_N_CLASSES)
    return y


def _build_csr_matvec(m: int, rng: np.random.Generator) -> Thunk:
    A = _csr_problem(m, rng)
    x = rng.standard_normal(_N_COLS)
    return lambda: A.matvec(x)


def _build_csr_rmatvec(m: int, rng: np.random.Generator) -> Thunk:
    A = _csr_problem(m, rng)
    u = rng.standard_normal(m)
    A.rmatvec(u)  # warm the cached transpose outside the timed region
    return lambda: A.rmatvec(u)


def _build_csr_matmat(m: int, rng: np.random.Generator) -> Thunk:
    A = _csr_problem(m, rng)
    B = rng.standard_normal((_N_COLS, _BLOCK_COLS))
    return lambda: A.matmat(B)


def _flam_builder(kernel: str) -> Builder:
    """Noise-free probes: count flam charged per product, not seconds.

    A :class:`~repro.complexity.counter.FlamCountingOperator` charges
    exactly ``nnz`` per mat-vec (``nnz·c`` per block), so the fitted
    slope is the cost *model's* exponent with zero measurement noise —
    which is what lets these probes carry a 0.05 tolerance where
    wall-clock probes need 0.45.
    """

    def build(m: int, rng: np.random.Generator) -> Thunk:
        from repro.complexity.counter import FlamCountingOperator
        from repro.linalg.operators import CSROperator

        op = FlamCountingOperator(CSROperator(_csr_problem(m, rng)))
        if kernel == "matvec":
            x = rng.standard_normal(_N_COLS)
            operand: Any = x
            product: Callable[[], object] = lambda: op.matvec(operand)
        elif kernel == "rmatvec":
            operand = rng.standard_normal(m)
            product = lambda: op.rmatvec(operand)
        else:
            operand = rng.standard_normal((_N_COLS, _BLOCK_COLS))
            product = lambda: op.matmat(operand)

        def thunk() -> object:
            op.reset()
            product()
            return op.flam

        return thunk

    return build


def _kernel_dispatch_builder(kernel: str) -> Builder:
    """Wall probes for the kernel-dispatch layer's resolved backend.

    Measures whichever backend :func:`repro.linalg.kernels
    .active_backend` resolves to — the compiled C kernels when the
    extension is built, the numpy reference otherwise.  Both are
    O(nnz), so the claim holds either way; the baseline records the
    constant of whichever backend regenerated it.
    """

    def build(m: int, rng: np.random.Generator) -> Thunk:
        from repro.linalg import kernels

        A = _csr_problem(m, rng)
        if kernel == "matvec":
            x = rng.standard_normal(_N_COLS)
            kernels.csr_matvec(A, x)  # warm row-id / segment caches
            return lambda: kernels.csr_matvec(A, x)
        if kernel == "rmatvec":
            u = rng.standard_normal(m)
            kernels.csr_rmatvec(A, u)
            return lambda: kernels.csr_rmatvec(A, u)
        B = rng.standard_normal((_N_COLS, _BLOCK_COLS))
        kernels.csr_matmat(A, B)
        return lambda: kernels.csr_matmat(A, B)

    return build


def _sketch_builder(kind: str) -> Builder:
    def build(m: int, rng: np.random.Generator) -> Thunk:
        from repro.linalg.sketch import sketch_apply, sketch_operator

        A = _csr_problem(m, rng)
        S = sketch_operator(kind, m, sketch_size=64, seed=int(rng.integers(1 << 31)))
        sketch_apply(S, A)  # warm any lazy caches outside the timed region
        return lambda: sketch_apply(S, A)

    return build


def _build_responses(m: int, rng: np.random.Generator) -> Thunk:
    from repro.core.responses import generate_responses

    y = _labels(m, rng)
    return lambda: generate_responses(y, _N_CLASSES)


def _build_orthonormalize(m: int, rng: np.random.Generator) -> Thunk:
    from repro.linalg.gram_schmidt import orthonormalize

    V = rng.standard_normal((m, _N_CLASSES))
    return lambda: orthonormalize(V)


def _build_lsqr(m: int, rng: np.random.Generator) -> Thunk:
    from repro.linalg.lsqr import lsqr

    A = _csr_problem(m, rng)
    b = rng.standard_normal(m)
    A.rmatvec(b)  # warm the cached transpose
    return lambda: lsqr(A, b, atol=0.0, btol=0.0, conlim=0.0, iter_lim=_ITERATIONS)


def _build_block_lsqr(m: int, rng: np.random.Generator) -> Thunk:
    from repro.linalg.block_lsqr import block_lsqr

    A = _csr_problem(m, rng)
    B = rng.standard_normal((m, _BLOCK_COLS))
    A.rmatvec(B[:, 0])
    return lambda: block_lsqr(
        A, B, atol=0.0, btol=0.0, conlim=0.0, iter_lim=_ITERATIONS
    )


def _build_sharded_matvec(m: int, rng: np.random.Generator) -> Thunk:
    from repro.parallel.sharded import ShardedOperator

    A = _csr_problem(m, rng)
    op = ShardedOperator(A, n_shards=4, backend="serial")
    x = rng.standard_normal(_N_COLS)
    op.matvec(x)  # warm per-shard scratch buffers
    return lambda: op.matvec(x)


def _build_srda_fit(m: int, rng: np.random.Generator) -> Thunk:
    from repro.core.srda import SRDA
    from repro.core.solver_config import SolverConfig

    A = _csr_problem(m, rng)
    y = _labels(m, rng)
    A.rmatvec(np.ones(m))  # transpose build is a one-time cost

    def fit() -> object:
        # tol=0 disables early convergence exit, so every size pays
        # exactly max_iter block iterations and the slope measures the
        # per-iteration cost the paper's claim is about.
        model = SRDA(
            alpha=1.0, config=SolverConfig(solver="lsqr"), max_iter=6, tol=0.0
        )
        return model.fit(A, y)

    return fit


def _build_srda_partial_fit(m: int, rng: np.random.Generator) -> Thunk:
    from repro.core.srda import SRDA
    from repro.core.solver_config import SolverConfig

    # Two batches of m rows each: the thunk pays one cold batch and one
    # warm-started batch over the 2m-row accumulated stream, so the
    # slope measures the incremental path's per-row cost (solve over
    # accumulated rows + table lookup; the O(c^3) count-space
    # Gram-Schmidt is size-independent).  A fresh model per call keeps
    # the thunk re-runnable at constant cost.
    A = _csr_problem(m, rng)
    y_a = _labels(m, rng)
    B = _csr_problem(m, rng)
    y_b = _labels(m, rng)

    def fit() -> object:
        model = SRDA(
            alpha=1.0, config=SolverConfig(solver="lsqr"), max_iter=6, tol=0.0
        )
        model.partial_fit(A, y_a)
        return model.partial_fit(B, y_b)

    return fit


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
register_probe(
    ProbeSpec(
        name="csr_matvec",
        module="repro.linalg.sparse",
        qualname="CSRMatrix.matvec",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_build_csr_matvec,
        note="forward product, 8 stored entries per row",
    )
)
register_probe(
    ProbeSpec(
        name="csr_rmatvec",
        module="repro.linalg.sparse",
        qualname="CSRMatrix.rmatvec",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_build_csr_rmatvec,
        note="adjoint product with the transpose cache pre-built",
    )
)
register_probe(
    ProbeSpec(
        name="csr_matmat",
        module="repro.linalg.sparse",
        qualname="CSRMatrix.matmat",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_build_csr_matmat,
        note="5-column block product; c held constant",
    )
)
register_probe(
    ProbeSpec(
        name="countsketch_apply",
        module="repro.linalg.sketch",
        qualname="sketch_apply",
        couplings={"nnz": 1.0},
        build=_sketch_builder("countsketch"),
        note="CountSketch CSR fast path, 64 sketch rows held constant",
    )
)
register_probe(
    ProbeSpec(
        name="sparse_sign_apply",
        module="repro.linalg.sketch",
        qualname="sketch_apply",
        couplings={"nnz": 1.0},
        build=_sketch_builder("sparse_sign"),
        note="sparse-sign CSR fast path, 64 sketch rows held constant",
    )
)
register_probe(
    ProbeSpec(
        name="responses",
        module="repro.core.responses",
        qualname="generate_responses",
        couplings={"m": 1.0},
        build=_build_responses,
        note="6 classes held constant; the paper's O(m·c²) spectral step",
    )
)
register_probe(
    ProbeSpec(
        name="orthonormalize",
        module="repro.linalg.gram_schmidt",
        qualname="orthonormalize",
        couplings={"m": 1.0},
        build=_build_orthonormalize,
        note="modified Gram–Schmidt over 6 columns held constant",
    )
)
register_probe(
    ProbeSpec(
        name="lsqr_solve",
        module="repro.linalg.lsqr",
        qualname="lsqr",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_build_lsqr,
        sizes=_SOLVER_SIZES,
        note="8 iterations pinned (atol=btol=conlim=0)",
    )
)
register_probe(
    ProbeSpec(
        name="block_lsqr_solve",
        module="repro.linalg.block_lsqr",
        qualname="block_lsqr",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_build_block_lsqr,
        sizes=_SOLVER_SIZES,
        note="8 iterations pinned, 5 right-hand-side columns",
    )
)
register_probe(
    ProbeSpec(
        name="sharded_matvec",
        module="repro.parallel.sharded",
        qualname="ShardedOperator",
        couplings={"nnz": 1.0},
        build=_build_sharded_matvec,
        note="4 shards on the serial backend; coordinator overhead included",
    )
)
register_probe(
    ProbeSpec(
        name="srda_fit_sparse",
        module="repro.core.srda",
        qualname="SRDA.fit",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_build_srda_fit,
        sizes=_SOLVER_SIZES,
        note="full sparse fit, 6 block iterations pinned via tol=0",
    )
)
register_probe(
    ProbeSpec(
        name="csr_matvec_flam",
        module="repro.linalg.sparse",
        qualname="CSRMatrix.matvec",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_flam_builder("matvec"),
        note="flam count, not wall time — deterministic slope",
        measure="flam",
        tolerance=0.05,
    )
)
register_probe(
    ProbeSpec(
        name="csr_rmatvec_flam",
        module="repro.linalg.sparse",
        qualname="CSRMatrix.rmatvec",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_flam_builder("rmatvec"),
        note="flam count, not wall time — deterministic slope",
        measure="flam",
        tolerance=0.05,
    )
)
register_probe(
    ProbeSpec(
        name="csr_matmat_flam",
        module="repro.linalg.sparse",
        qualname="CSRMatrix.matmat",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_flam_builder("matmat"),
        note="flam count for a 5-column block; c held constant",
        measure="flam",
        tolerance=0.05,
    )
)
register_probe(
    ProbeSpec(
        name="kernel_dispatch_matvec",
        module="repro.linalg.kernels",
        qualname="csr_matvec",
        couplings={"nnz": 1.0},
        build=_kernel_dispatch_builder("matvec"),
        note="dispatch layer; backend resolves at run time "
        "(compiled when built, reference otherwise)",
    )
)
register_probe(
    ProbeSpec(
        name="kernel_dispatch_rmatvec",
        module="repro.linalg.kernels",
        qualname="csr_rmatvec",
        couplings={"nnz": 1.0},
        build=_kernel_dispatch_builder("rmatvec"),
        note="dispatch layer; backend resolves at run time "
        "(compiled when built, reference otherwise)",
    )
)
register_probe(
    ProbeSpec(
        name="kernel_dispatch_matmat",
        module="repro.linalg.kernels",
        qualname="csr_matmat",
        couplings={"nnz": 1.0},
        build=_kernel_dispatch_builder("matmat"),
        note="dispatch layer, 5-column block; backend resolves at "
        "run time (compiled when built, reference otherwise)",
    )
)
register_probe(
    ProbeSpec(
        name="srda_partial_fit",
        module="repro.core.srda",
        qualname="SRDA.partial_fit",
        couplings={"nnz": 1.0, "m": 1.0},
        build=_build_srda_partial_fit,
        sizes=_SOLVER_SIZES,
        note="cold batch + warm batch over 2m accumulated sparse rows, "
        "6 block iterations pinned via tol=0",
    )
)


def claimed_exponent(spec: ProbeSpec) -> float:
    """The claim's growth exponent under this probe's couplings."""
    return claim_for(spec).scaling_exponent(dict(spec.couplings))


def get_probe(name: str) -> ProbeSpec:
    try:
        return PROBES[name]
    except KeyError:
        raise ValueError(
            f"unknown probe {name!r}; registered: {sorted(PROBES)}"
        ) from None


def probe_names() -> Tuple[str, ...]:
    return tuple(sorted(PROBES))
