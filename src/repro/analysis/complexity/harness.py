"""The empirical half of the complexity contract (rule RPR009).

Runs every registered probe over its geometric size ladder with the
scaling primitives of :mod:`repro.complexity.counter`, fits the
log–log slope, and turns violations into :class:`~repro.analysis.rules.
Finding` records so they flow through the same reporters and exit-code
contract as the AST rules.

Two independent checks per probe:

- **tolerance** — the fitted exponent must not exceed the *claimed*
  exponent (the docstring claim evaluated under the probe's couplings)
  by more than ``DEFAULT_TOLERANCE``.  Wall-clock slopes are noisy and
  biased *low* by constant overhead at small sizes, so the band is
  generous; a real class change (O(nnz) decaying to O(m·n)) overshoots
  it by a multiple.  A probe with ``measure="flam"`` sweeps operation
  counts instead of seconds — deterministic, so those probes carry a
  much tighter per-probe ``tolerance`` override.
- **ratchet** — the fitted exponent must not exceed the value recorded
  in the checked-in ``complexity_baseline.json`` by more than
  ``RATCHET_MARGIN``.  This catches regressions that stay inside the
  absolute band (a claim with slack, quietly eaten).

``--update-complexity-baseline`` rewrites the baseline from the current
run; the diff is then reviewed like any other ratchet move.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.complexity.probes import (
    PROBES,
    ProbeSpec,
    claim_for,
    get_probe,
    resolve_target,
)
from repro.analysis.rules import Finding

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_TOLERANCE",
    "RATCHET_MARGIN",
    "ProbeResult",
    "baseline_payload",
    "findings_from_results",
    "load_baseline",
    "run_harness",
    "run_probe",
    "write_report",
]

DEFAULT_TOLERANCE = 0.45
RATCHET_MARGIN = 0.35
BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = "complexity_baseline.json"

#: Measurement knobs per scale tier: (repeats, min_time seconds).  The
#: smoke tier trades precision for CI latency; the full tier is what
#: regenerates the baseline.
_MEASUREMENT: Mapping[str, Tuple[int, float]] = {
    "smoke": (2, 0.01),
    "full": (3, 0.05),
}


@dataclass(frozen=True)
class ProbeResult:
    """One probe's sweep: the claim, its exponent, and the fit."""

    name: str
    module: str
    qualname: str
    claim: str
    claimed_exponent: float
    fitted_exponent: float
    sizes: Tuple[int, ...]
    costs: Tuple[float, ...]

    def to_json(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "qualname": self.qualname,
            "claim": self.claim,
            "claimed_exponent": round(self.claimed_exponent, 4),
            "fitted_exponent": round(self.fitted_exponent, 4),
            "sizes": list(self.sizes),
            "costs": [float(f"{c:.3e}") for c in self.costs],
        }


def run_probe(spec: ProbeSpec, scale: str = "smoke", seed: int = 0) -> ProbeResult:
    """Sweep one probe and fit its scaling exponent.

    Each size gets a child generator spawned from ``seed``, so a probe
    run is reproducible end to end while sizes stay independent draws.
    """
    from repro.complexity.counter import loglog_slope, measure_seconds

    claim = claim_for(spec)
    claimed = claim.scaling_exponent(dict(spec.couplings))
    repeats, min_time = _MEASUREMENT.get(scale, _MEASUREMENT["smoke"])
    sizes = spec.sizes_for(scale)
    root = np.random.default_rng(seed)
    streams = root.spawn(len(sizes))
    costs: List[float] = []
    for size, rng in zip(sizes, streams):
        thunk = spec.build(size, rng)
        if spec.measure == "flam":
            # The thunk returns a deterministic operation count: one
            # call is exact, no repeats or autoranging needed.
            costs.append(float(thunk()))  # type: ignore[arg-type]
        else:
            costs.append(
                measure_seconds(thunk, repeats=repeats, min_time=min_time)
            )
    fitted = loglog_slope(sizes, costs)
    return ProbeResult(
        name=spec.name,
        module=spec.module,
        qualname=spec.qualname,
        claim=claim.normalized(),
        claimed_exponent=claimed,
        fitted_exponent=fitted,
        sizes=tuple(sizes),
        costs=tuple(costs),
    )


def run_harness(
    names: Optional[Sequence[str]] = None,
    scale: str = "smoke",
    seed: int = 0,
) -> List[ProbeResult]:
    """Run the selected (default: all) probes in name order."""
    selected = sorted(names) if names else sorted(PROBES)
    return [run_probe(get_probe(name), scale=scale, seed=seed) for name in selected]


def _target_location(spec: ProbeSpec, root: Path) -> Tuple[str, int]:
    """(repo-relative path, def line) of the probe's claimed object."""
    target = resolve_target(spec)
    if isinstance(target, property):  # pragma: no cover - none registered
        target = target.fget
    try:
        source_file = inspect.getsourcefile(target)
        line = inspect.getsourcelines(target)[1]
    except (TypeError, OSError):  # pragma: no cover - builtins only
        source_file, line = None, 1
    if source_file is None:  # pragma: no cover
        return spec.module.replace(".", "/") + ".py", 1
    path = Path(source_file).resolve()
    try:
        return str(path.relative_to(root.resolve())), line
    except ValueError:  # pragma: no cover - run from outside the repo
        return str(path), line


def findings_from_results(
    results: Sequence[ProbeResult],
    baseline: Optional[Mapping[str, Any]] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    ratchet: float = RATCHET_MARGIN,
    root: Optional[Path] = None,
) -> List[Finding]:
    """RPR009 findings for exponent violations, reporter-ready."""
    root = root or Path.cwd()
    baseline_probes: Mapping[str, Any] = (
        baseline.get("probes", {}) if baseline else {}
    )
    findings: List[Finding] = []
    for result in results:
        spec = get_probe(result.name)
        path, line = _target_location(spec, root)
        band = spec.tolerance if spec.tolerance is not None else tolerance
        excess = result.fitted_exponent - result.claimed_exponent
        if excess > band:
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=0,
                    rule_id="RPR009",
                    message=(
                        f"probe {result.name!r}: measured scaling exponent "
                        f"{result.fitted_exponent:.2f} exceeds the claimed "
                        f"{result.claimed_exponent:.2f} (claim "
                        f"{result.claim}) by {excess:.2f} > tolerance "
                        f"{band:.2f}"
                    ),
                )
            )
            continue
        recorded = baseline_probes.get(result.name)
        if recorded is None:
            continue
        drift = result.fitted_exponent - float(recorded["fitted_exponent"])
        if drift > ratchet:
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=0,
                    rule_id="RPR009",
                    message=(
                        f"probe {result.name!r}: measured scaling exponent "
                        f"{result.fitted_exponent:.2f} drifted {drift:.2f} "
                        f"above the complexity_baseline.json value "
                        f"{float(recorded['fitted_exponent']):.2f} "
                        f"(ratchet margin {ratchet:.2f}); investigate, or "
                        "regenerate with --update-complexity-baseline"
                    ),
                )
            )
    return findings


def load_baseline(path: Path) -> Optional[Dict[str, Any]]:
    """The parsed baseline, or ``None`` when the file does not exist."""
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "probes" not in payload:
        raise ValueError(f"{path} is not a complexity baseline file")
    return payload


def baseline_payload(
    results: Sequence[ProbeResult],
    scale: str,
    tolerance: float = DEFAULT_TOLERANCE,
    ratchet: float = RATCHET_MARGIN,
) -> Dict[str, Any]:
    """The JSON document written to ``complexity_baseline.json``."""
    return {
        "version": BASELINE_VERSION,
        "scale": scale,
        "tolerance": tolerance,
        "ratchet_margin": ratchet,
        "probes": {result.name: result.to_json() for result in results},
    }


def write_report(
    path: Path,
    results: Sequence[ProbeResult],
    findings: Sequence[Finding],
    scale: str,
) -> None:
    """Persist the fitted-exponent report (the CI artifact)."""
    payload = {
        "scale": scale,
        "probes": {result.name: result.to_json() for result in results},
        "violations": [
            {
                "path": f.path,
                "line": f.line,
                "rule": f.rule_id,
                "message": f.message,
            }
            for f in findings
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
