"""The machine-checked complexity-claim grammar.

The paper's whole contribution is a complexity bound — SRDA trains in
``O(m·s)`` per LSQR iteration — yet an ``O(...)`` statement in prose is
just a comment: it can rot silently as PRs rewrite the hot paths.  This
module gives those statements a grammar, so the linter (rule RPR008)
can require every kernel entry point to carry a *parseable* claim and
the empirical harness (:mod:`repro.analysis.complexity.harness`, rule
RPR009) can cross-check the claimed exponent against measured scaling.

Claim syntax, one line inside a docstring::

    Complexity: O(nnz)
    Complexity: O(m·c^2)
    Complexity: O(iters·(nnz + m + n)) per right-hand side

Anything after the closing parenthesis is free prose.  The expression
grammar is::

    sum     := product ("+" product)*
    product := factor (("·" | "*" | juxtaposition) factor)*
    factor  := "log" factor | primary
    primary := VAR ("^" INT)? | INT | "(" sum ")"

with ``VAR`` restricted to the fixed vocabulary in :data:`VOCABULARY`.
Unicode conveniences are normalized before tokenizing: ``·``/``×`` mean
multiplication and superscript digits mean powers (``n²`` = ``n^2``),
so the claims stay readable in rendered docs.

Claims are *asymptotic in the scaled variables*: the harness drives one
problem size and asks each claim for its growth exponent under a
declared coupling (e.g. scaling ``m`` with fixed non-zeros per row
makes ``nnz`` grow linearly too).  ``log`` factors contribute their
true sub-polynomial growth to the exponent (≈ 0.1 over the probed
range), which keeps ``O(nnz log nnz)`` claims honest without failing
linear-time measurements.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Iterator, List, Mapping, Optional, Set, Tuple, Union

__all__ = [
    "CLAIM_MARKER_RE",
    "VOCABULARY",
    "ClaimParseError",
    "ComplexityClaim",
    "extract_claim_text",
    "parse_claim",
    "claim_from_docstring",
]

#: The variable vocabulary every claim must draw from.  The harness and
#: the docs table share these definitions; a claim using any other name
#: fails to parse (RPR008).
VOCABULARY: Mapping[str, str] = {
    "m": "samples / operator rows",
    "n": "features / operator columns",
    "c": "classes (equivalently: right-hand-side / response columns)",
    "nnz": "stored non-zeros of the sparse operand",
    "s": "average non-zeros per row (nnz = m·s); sketch rows where a "
    "module's docs say so",
    "k": "block width / subspace depth / shard count, per module docs",
    "iters": "solver iterations",
}

#: Detects the start of a claim line inside a docstring.  A literal
#: ``O(...)`` is how prose *mentions* the grammar (this module included)
#: — the lookahead keeps mentions from parsing as malformed claims.
CLAIM_MARKER_RE = re.compile(r"Complexity:\s*O\((?!\s*\.\.\.)")

#: Unicode spellings normalized before tokenizing.
_SUPERSCRIPTS = {
    "¹": "^1",
    "²": "^2",
    "³": "^3",
    "⁴": "^4",
    "⁵": "^5",
}

_TOKEN_RE = re.compile(r"\s*(?:(?P<name>[A-Za-z_]+)|(?P<int>\d+)|(?P<op>[·×*+^()]))")


class ClaimParseError(ValueError):
    """A ``Complexity: O(...)`` line that does not follow the grammar."""


# ----------------------------------------------------------------------
# Expression nodes.  Deliberately tiny: the only question the harness
# asks an expression is "how fast do you grow?", answered numerically by
# evaluation, so no symbolic manipulation is needed.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Const:
    value: float

    def evaluate(self, values: Mapping[str, float]) -> float:
        return self.value

    def render(self) -> str:
        return str(int(self.value))


@dataclass(frozen=True)
class _Var:
    name: str
    power: int = 1

    def evaluate(self, values: Mapping[str, float]) -> float:
        return values[self.name] ** self.power

    def render(self) -> str:
        return self.name if self.power == 1 else f"{self.name}^{self.power}"


@dataclass(frozen=True)
class _Log:
    arg: "_Node"

    def evaluate(self, values: Mapping[str, float]) -> float:
        return math.log(max(self.arg.evaluate(values), math.e))

    def render(self) -> str:
        return f"log {self.arg.render()}"


@dataclass(frozen=True)
class _Product:
    factors: Tuple["_Node", ...]

    def evaluate(self, values: Mapping[str, float]) -> float:
        out = 1.0
        for factor in self.factors:
            out *= factor.evaluate(values)
        return out

    def render(self) -> str:
        parts = []
        for factor in self.factors:
            rendered = factor.render()
            # sums (and log factors, whose argument would otherwise
            # absorb the next factor on re-parse) bind looser than "·"
            if isinstance(factor, (_Sum, _Log)):
                rendered = f"({rendered})"
            parts.append(rendered)
        return "·".join(parts)


@dataclass(frozen=True)
class _Sum:
    terms: Tuple["_Node", ...]

    def evaluate(self, values: Mapping[str, float]) -> float:
        return sum(term.evaluate(values) for term in self.terms)

    def render(self) -> str:
        return " + ".join(t.render() for t in self.terms)


_Node = Union[_Const, _Var, _Log, _Product, _Sum]


def _tokenize(text: str) -> List[str]:
    for uni, ascii_form in _SUPERSCRIPTS.items():
        text = text.replace(uni, ascii_form)
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ClaimParseError(
                f"unexpected character {remainder[0]!r} in claim {text!r}"
            )
        pos = match.end()
        token = match.group("name") or match.group("int") or match.group("op")
        if token in ("·", "×"):
            token = "*"
        tokens.append(token)
    return tokens


class _Parser:
    """Recursive-descent parser for the claim grammar."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> Optional[str]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ClaimParseError(f"claim {self.text!r} ended unexpectedly")
        self.pos += 1
        return token

    def parse(self) -> _Node:
        node = self.sum()
        if self.peek() is not None:
            raise ClaimParseError(
                f"trailing {self.peek()!r} in claim {self.text!r}"
            )
        return node

    def sum(self) -> _Node:
        terms = [self.product()]
        while self.peek() == "+":
            self.take()
            terms.append(self.product())
        if len(terms) == 1:
            return terms[0]
        return _Sum(tuple(terms))

    def product(self) -> _Node:
        factors = [self.factor()]
        while True:
            token = self.peek()
            if token == "*":
                self.take()
                factors.append(self.factor())
            elif token is not None and token not in ("+", ")"):
                # juxtaposition: "m s", "nnz log nnz"
                factors.append(self.factor())
            else:
                break
        if len(factors) == 1:
            return factors[0]
        return _Product(tuple(factors))

    def factor(self) -> _Node:
        if self.peek() == "log":
            self.take()
            return _Log(self.factor())
        return self.primary()

    def primary(self) -> _Node:
        token = self.take()
        if token == "(":
            inner = self.sum()
            if self.take() != ")":
                raise ClaimParseError(
                    f"unbalanced parentheses in claim {self.text!r}"
                )
            return inner
        if token.isdigit():
            return _Const(float(token))
        if token in VOCABULARY:
            if self.peek() == "^":
                self.take()
                exponent = self.take()
                if not exponent.isdigit():
                    raise ClaimParseError(
                        f"power must be an integer in claim {self.text!r}"
                    )
                return _Var(token, int(exponent))
            return _Var(token)
        raise ClaimParseError(
            f"unknown variable {token!r} in claim {self.text!r}; the "
            f"vocabulary is {{{', '.join(sorted(VOCABULARY))}}}"
        )


def _collect_variables(node: _Node) -> Tuple[str, ...]:
    names: Set[str] = set()

    def walk(current: _Node) -> None:
        if isinstance(current, _Var):
            names.add(current.name)
        elif isinstance(current, _Log):
            walk(current.arg)
        elif isinstance(current, (_Product, _Sum)):
            children: Tuple[_Node, ...] = (
                current.factors
                if isinstance(current, _Product)
                else current.terms
            )
            for child in children:
                walk(child)

    walk(node)
    return tuple(sorted(names))


@dataclass(frozen=True)
class ComplexityClaim:
    """A parsed ``Complexity: O(...)`` claim.

    ``raw`` is the text inside ``O(...)`` as written; ``variables`` the
    vocabulary symbols it uses.  :meth:`scaling_exponent` is the number
    the harness checks fitted log–log slopes against.
    """

    raw: str
    expression: _Node
    variables: Tuple[str, ...]

    def evaluate(self, values: Mapping[str, float]) -> float:
        """The claim's cost expression at concrete variable values."""
        missing = [v for v in self.variables if v not in values]
        if missing:
            raise ValueError(f"no value for claim variable(s) {missing}")
        return self.expression.evaluate(values)

    def scaling_exponent(
        self,
        couplings: Mapping[str, float],
        held: float = 8.0,
        span: Tuple[float, float] = (1e5, 1e8),
    ) -> float:
        """Growth exponent of the claim under a probe's size couplings.

        ``couplings`` maps each vocabulary variable to its growth rate
        against the probe's size parameter (``{"m": 1, "nnz": 1}``:
        rows and non-zeros both scale linearly; absent variables are
        held constant at ``held``).  Computed numerically over ``span``
        so sums, parentheses, and ``log`` factors all contribute their
        true growth — no symbolic expansion.
        """
        lo, hi = span

        def value_at(size: float) -> float:
            values = {
                name: held * size ** couplings.get(name, 0.0)
                for name in self.variables
            }
            return self.expression.evaluate(values)

        return float(
            (math.log(value_at(hi)) - math.log(value_at(lo)))
            / (math.log(hi) - math.log(lo))
        )

    def normalized(self) -> str:
        """Canonical rendering (``·`` products, ``^`` powers)."""
        return f"O({self.expression.render()})"


def extract_claim_text(docstring: str) -> Optional[str]:
    """The text inside the first ``Complexity: O(...)``, or ``None``.

    Raises :class:`ClaimParseError` when the marker is present but the
    parentheses never close — that is a malformed claim, not a missing
    one.
    """
    match = CLAIM_MARKER_RE.search(docstring)
    if match is None:
        return None
    depth = 1
    start = match.end()
    for pos in range(start, len(docstring)):
        char = docstring[pos]
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                return docstring[start:pos]
    raise ClaimParseError("Complexity: O( ... never closes its parenthesis")


def parse_claim(text: str) -> ComplexityClaim:
    """Parse the inside of ``O(...)`` into a :class:`ComplexityClaim`."""
    stripped = text.strip()
    if not stripped:
        raise ClaimParseError("empty complexity claim")
    expression = _Parser(stripped).parse()
    return ComplexityClaim(
        raw=stripped,
        expression=expression,
        variables=_collect_variables(expression),
    )


def claim_from_docstring(docstring: Optional[str]) -> Optional[ComplexityClaim]:
    """Extract and parse a docstring's claim; ``None`` when absent.

    Raises :class:`ClaimParseError` when a claim line is present but
    malformed — the caller (RPR008, the harness) decides how to report.
    """
    if not docstring:
        return None
    text = extract_claim_text(docstring)
    if text is None:
        return None
    return parse_claim(text)


def iter_claim_lines(docstring: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(0-based line offset, line)`` for each claim line."""
    for offset, line in enumerate(docstring.splitlines()):
        if CLAIM_MARKER_RE.search(line):
            yield offset, line
