"""repro.analysis — static and runtime checking of numeric contracts.

PR 1 and PR 2 made correctness promises that ordinary tests cannot keep
watch over as the codebase grows: every operator must satisfy the
adjoint identity ``⟨Ax, u⟩ = ⟨x, Aᵀu⟩`` (the graph-embedding
factorization of Theorem 1 silently breaks otherwise), float32 must
propagate end to end without silent float64 upcasts, and failures must
flow through the repro exception taxonomy so the guarded fallback
chains stay precise.  This subsystem turns those implicit contracts
into checked ones, in two complementary halves:

- **Static** — :mod:`repro.analysis.rules` defines AST lint rules
  (``RPR001``…) for numeric-kernel hazards; :mod:`repro.analysis.linter`
  runs them over source trees with per-line
  ``# repro: noqa-RPRnnn`` suppression; :mod:`repro.analysis.cli` is
  the ``python -m repro.analysis`` entry point CI gates on.
- **Runtime** — :mod:`repro.analysis.contracts` probes live operator
  instances: :func:`verify_operator` checks the adjoint identity,
  blocked-vs-sequential product agreement, and shape/dtype conformance
  on random probes, raising
  :class:`repro.exceptions.ContractViolationError` with every failed
  check named.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalog and noqa policy.
"""

from repro.analysis.contracts import ContractCheck, ContractReport, verify_operator
from repro.analysis.linter import Finding, LintResult, lint_paths, lint_source
from repro.analysis.rules import DEFAULT_RULES, Rule, rule_catalog

__all__ = [
    "ContractCheck",
    "ContractReport",
    "DEFAULT_RULES",
    "Finding",
    "LintResult",
    "Rule",
    "lint_paths",
    "lint_source",
    "rule_catalog",
    "verify_operator",
]
