"""The lint driver: parse files, run rules, honor noqa suppressions.

Suppression syntax (checked per physical line)::

    risky_call()  # repro: noqa-RPR002
    other_call()  # repro: noqa-RPR001,RPR004
    anything()    # repro: noqa

The bare form suppresses every rule on that line; the coded form only
the listed rules.  Suppressions are counted and reported so a tree
accumulating noqa comments is visible in CI output.

Files that fail to parse are reported as ``RPR000`` findings rather
than crashing the run — a syntax error in a kernel module is the most
severe finding there is.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import DEFAULT_RULES, NOQA_RE, Finding, Rule

__all__ = [
    "Finding",
    "LintResult",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})

#: Suppress-everything sentinel in the per-line noqa table.
_ALL = "*"


@dataclass
class LintResult:
    """Outcome of one lint run over a set of paths."""

    findings: List[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
        )


def _noqa_table(source: str) -> Dict[int, Set[str]]:
    """Line number → set of suppressed rule IDs (``{'*'}`` = all)."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line or "noqa" not in line:
            continue
        match = NOQA_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            table[lineno] = {_ALL}
        else:
            table[lineno] = {
                code.strip().upper() for code in codes.split(",")
            }
    return table


def _suppressed(finding: Finding, table: Dict[int, Set[str]]) -> bool:
    codes = table.get(finding.line)
    if codes is None:
        return False
    return _ALL in codes or finding.rule_id in codes


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """Lint one source string; returns ``(findings, n_suppressed)``.

    ``path`` determines rule scoping (kernel-module rules, package
    scoping) and is echoed into findings; it need not exist on disk —
    the fixture tests lint in-memory snippets under synthetic paths.
    """
    active = [
        rule
        for rule in (DEFAULT_RULES if rules is None else rules)
        if rule.applies_to(path)
    ]
    if not active:
        return [], 0
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        # Columns are 0-based everywhere else (ast col_offset), so the
        # 1-based SyntaxError offset is shifted down — both reporters
        # then print the same location for the same parse failure.
        return (
            [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=max((exc.offset or 1) - 1, 0),
                    rule_id="RPR000",
                    message=f"syntax error: {exc.msg}",
                )
            ],
            0,
        )
    except ValueError as exc:
        # ast.parse raises bare ValueError (no location) for sources
        # the tokenizer rejects outright, e.g. embedded null bytes.
        return (
            [
                Finding(
                    path=path,
                    line=1,
                    col=0,
                    rule_id="RPR000",
                    message=f"unparsable source: {exc}",
                )
            ],
            0,
        )
    table = _noqa_table(source)
    findings: List[Finding] = []
    n_suppressed = 0
    for rule in active:
        for finding in rule.check(tree, path):
            # Source-level rules with suppressible=False (the noqa
            # hygiene check) bypass the table: a noqa comment must not
            # be able to silence the rule that audits noqa comments.
            if rule.suppressible and _suppressed(finding, table):
                n_suppressed += 1
            else:
                findings.append(finding)
        for finding in rule.check_source(source, path):
            if rule.suppressible and _suppressed(finding, table):
                n_suppressed += 1
            else:
                findings.append(finding)
    return findings, n_suppressed


def lint_file(
    path: Path, rules: Optional[Sequence[Rule]] = None
) -> Tuple[List[Finding], int]:
    """Lint one file on disk; returns ``(findings, n_suppressed)``."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, Path(path).as_posix(), rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for candidate in sorted(entry.rglob("*.py")):
                if _SKIP_DIRS.intersection(candidate.parts):
                    continue
                yield candidate
        elif entry.suffix == ".py":
            yield entry


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence[Rule]] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint files and directories; the CLI's engine.

    Parameters
    ----------
    paths:
        Files or directory roots to walk.
    rules:
        Rule instances to run (default: :data:`DEFAULT_RULES`).
    select:
        When given, only rules with these IDs run.
    ignore:
        Rule IDs excluded after ``select`` is applied.
    """
    active: Sequence[Rule] = tuple(DEFAULT_RULES if rules is None else rules)
    if select is not None:
        wanted = {code.upper() for code in select}
        active = tuple(rule for rule in active if rule.rule_id in wanted)
    if ignore is not None:
        dropped = {code.upper() for code in ignore}
        active = tuple(rule for rule in active if rule.rule_id not in dropped)

    result = LintResult()
    for file_path in iter_python_files(paths):
        result.n_files += 1
        findings, suppressed = lint_file(file_path, active)
        result.findings.extend(findings)
        result.n_suppressed += suppressed
    result.findings = result.sorted_findings()
    return result
