"""AST lint rules for numeric-kernel hazards.

Each rule is a small AST visitor with a stable ID (``RPR001``…), a
one-line summary, and a rationale tied to a contract the solvers depend
on.  Rules are deliberately narrow: they flag the patterns that have
actually broken (or would silently break) the numerical guarantees of
this package, not general style.  Anything a rule flags can be
suppressed per line with ``# repro: noqa-RPRnnn`` — the suppression is
part of the contract too, because it forces the sanctioned sites to be
annotated and reviewable.

The rule set:

========  ==============================================================
RPR001    dtype-literal drift in kernel modules (``dtype=float``,
          ``np.float64(...)`` casts) — breaks float32 end-to-end
          propagation.
RPR002    bare or over-broad ``except`` — swallows the exception
          taxonomy the guarded fallback chains dispatch on.
RPR003    raising foreign exception types (``RuntimeError``,
          ``Exception``) from ``linalg``/``core``/``robustness`` —
          failures must flow through :mod:`repro.exceptions`.
RPR004    unseeded global-state ``np.random.*`` calls in ``src/`` —
          experiments must be reproducible from a recorded seed.
RPR005    operator classes defining ``matvec`` without ``rmatvec`` (or
          ``matmat`` without ``rmatmat``) — an adjoint pair with one
          side missing cannot satisfy ``⟨Ax, u⟩ = ⟨x, Aᵀu⟩`` and LSQR
          will fall back to a broken default or crash mid-iteration.
RPR006    mutable default arguments — shared state across calls
          corrupts per-fit diagnostics.
RPR007    a ``# repro: noqa`` suppression without an adjacent
          justification comment — sanctioned exceptions must say why
          they are sanctioned.
RPR008    a public function in a designated kernel module without a
          parseable ``Complexity: O(...)`` claim (or a malformed claim
          anywhere in package source) — the paper's bound must be
          machine-checkable, not prose.
RPR009    an empirically measured scaling exponent exceeding the
          docstring claim (produced by the
          :mod:`repro.analysis.complexity` harness, not by AST
          inspection).
RPR010    a float64 temporary allocated inside a loop in a kernel
          module — ``np.zeros``/``np.empty``/``.astype`` without a
          dtype threaded from an argument.
RPR011    an allocation call inside the per-iteration body of the
          lsqr / block_lsqr / sharded hot loops, which must reuse
          scratch buffers (docs/PARALLEL.md).
========  ==============================================================
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.complexity.grammar import (
    CLAIM_MARKER_RE,
    ClaimParseError,
    VOCABULARY,
    claim_from_docstring,
)

__all__ = [
    "CLAIMED_MODULE_SUFFIXES",
    "DEFAULT_RULES",
    "Finding",
    "HOT_LOOP_MODULE_SUFFIXES",
    "KERNEL_LOOP_MODULE_SUFFIXES",
    "KERNEL_MODULE_SUFFIXES",
    "NOQA_RE",
    "Rule",
    "rule_catalog",
    "rules_by_id",
]

#: Matches ``# repro: noqa`` and ``# repro: noqa-RPR001,RPR002``.  Lives
#: here (not in the linter) so the noqa-hygiene rule below can reuse it
#: without importing the driver that imports this module.
NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<codes>RPR\d{3}(?:\s*,\s*RPR\d{3})*))?",
    re.IGNORECASE,
)

#: Modules holding the memory-bound value-dtype kernels: the files where
#: a stray dtype literal silently upcasts the whole float32 path.
KERNEL_MODULE_SUFFIXES: Tuple[str, ...] = (
    "linalg/sparse.py",
    "linalg/operators.py",
    "linalg/lsqr.py",
    "linalg/block_lsqr.py",
)

#: Modules whose loops are numeric hot paths: a float64 temporary
#: allocated per iteration doubles the memory traffic the linear-time
#: claim budgets for (RPR010's scope).
KERNEL_LOOP_MODULE_SUFFIXES: Tuple[str, ...] = KERNEL_MODULE_SUFFIXES + (
    "linalg/sketch.py",
    "linalg/gram_schmidt.py",
    "parallel/sharded.py",
    "core/responses.py",
)

#: The solver hot loops with an explicit scratch-buffer contract
#: (docs/PARALLEL.md): any allocation per iteration is a regression
#: (RPR011's scope).
HOT_LOOP_MODULE_SUFFIXES: Tuple[str, ...] = (
    "linalg/lsqr.py",
    "linalg/block_lsqr.py",
    "parallel/sharded.py",
)

#: Modules whose public functions must carry a machine-checkable
#: ``Complexity: O(...)`` claim (RPR008's requirement scope): the whole
#: linalg package plus the sharded operator layer and the response
#: construction the paper prices in Table I.
CLAIMED_MODULE_SUFFIXES: Tuple[str, ...] = (
    "parallel/sharded.py",
    "core/responses.py",
)

#: Names the numpy module is commonly bound to.
_NUMPY_ALIASES = frozenset({"np", "numpy"})

#: Legacy global-state sampling functions of ``np.random``.
_LEGACY_RANDOM = frozenset(
    {
        "beta",
        "binomial",
        "bytes",
        "choice",
        "exponential",
        "gamma",
        "multivariate_normal",
        "normal",
        "permutation",
        "poisson",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "sample",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

#: Forward/adjoint product pairs every operator must define together.
_ADJOINT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("matvec", "rmatvec"),
    ("_matvec", "_rmatvec"),
    ("matmat", "rmatmat"),
    ("_matmat", "_rmatmat"),
)


@dataclass(frozen=True)
class Finding:
    """One lint hit: where, which rule, and why."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
        }


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _path_parts(path: str) -> Tuple[str, ...]:
    return PurePosixPath(path.replace("\\", "/")).parts


def _in_package_source(parts: Sequence[str]) -> bool:
    """True for files under the package source (not tests/benchmarks)."""
    return ("src" in parts or "repro" in parts) and not (
        "tests" in parts or "benchmarks" in parts
    )


class Rule:
    """Base class: an identified, scoped AST check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding a :class:`Finding` per hit.  :meth:`applies_to` restricts
    the rule to the paths where its contract is in force; the linter
    consults it before parsing, so out-of-scope files cost nothing.
    Rules that inspect comments (invisible to the AST) override
    :meth:`check_source` instead of (or as well as) :meth:`check`.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""

    #: When False, ``# repro: noqa`` comments cannot silence this rule —
    #: used by the noqa-hygiene rule, which would otherwise be
    #: self-suppressing on every line it flags.
    suppressible: bool = True

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        """AST-level findings; the default contributes none."""
        return iter(())

    def check_source(self, source: str, path: str) -> Iterator[Finding]:
        """Source-level findings (comments, layout); default none."""
        return iter(())

    def line_finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """A finding at an explicit position (for source-level rules)."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
        )

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


class DtypeLiteralDriftRule(Rule):
    """RPR001 — dtype literals that silently upcast the float32 path."""

    rule_id = "RPR001"
    name = "dtype-literal-drift"
    summary = (
        "kernel module hardcodes a drifting dtype literal (dtype=float, "
        "dtype='float', or an np.float64(...) cast) instead of "
        "propagating the value dtype"
    )
    rationale = (
        "The memory-bound kernels run at half the traffic on float32 "
        "data, but only if every intermediate preserves the value dtype "
        "(see repro.linalg.sparse.as_value_dtype).  `dtype=float` and "
        "np.float64(...) casts re-introduce float64 silently.  "
        "Deliberate double-precision accumulation is still allowed — "
        "spell it `dtype=np.float64` to make the intent visible."
    )

    def applies_to(self, path: str) -> bool:
        posix = "/".join(_path_parts(path))
        return posix.endswith(KERNEL_MODULE_SUFFIXES)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = _dotted_name(node.func)
            if func_name is not None:
                head, _, tail = func_name.rpartition(".")
                if tail == "float64" and head in _NUMPY_ALIASES:
                    yield self.finding(
                        path,
                        node,
                        "np.float64(...) cast in a kernel module; "
                        "propagate the operand's value dtype (or use "
                        "dtype=np.float64 where double accumulation is "
                        "deliberate)",
                    )
            for keyword in node.keywords:
                if keyword.arg != "dtype":
                    continue
                value = keyword.value
                is_builtin_float = (
                    isinstance(value, ast.Name) and value.id == "float"
                )
                is_float_string = (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and value.value == "float"
                )
                if is_builtin_float or is_float_string:
                    yield self.finding(
                        path,
                        keyword.value,
                        "dtype=float in a kernel module silently means "
                        "float64; propagate the value dtype or spell "
                        "dtype=np.float64 if double precision is "
                        "deliberate",
                    )


class OverBroadExceptRule(Rule):
    """RPR002 — bare/over-broad ``except`` clauses."""

    rule_id = "RPR002"
    name = "over-broad-except"
    summary = "bare `except:` or `except Exception` handler"
    rationale = (
        "The guarded fallback chains dispatch on a strict exception "
        "taxonomy (repro.exceptions).  A broad handler swallows "
        "InjectedFaultError, SolverFailure, and NotPositiveDefiniteError "
        "alike, turning a documented degradation path into silent "
        "garbage.  The sanctioned broad sites (the CLI boundary, the "
        "experiment retry harness) carry an annotated noqa."
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    path,
                    node,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt; name the exception types",
                )
                continue
            for exc in self._exception_names(node.type):
                if exc in self._BROAD or exc.split(".")[-1] in self._BROAD:
                    yield self.finding(
                        path,
                        node,
                        f"`except {exc}` is over-broad; catch the "
                        "specific repro exception types (or annotate a "
                        "sanctioned boundary with "
                        "`# repro: noqa-RPR002`)",
                    )

    @staticmethod
    def _exception_names(node: ast.AST) -> List[str]:
        elts = node.elts if isinstance(node, ast.Tuple) else [node]
        names = []
        for elt in elts:
            dotted = _dotted_name(elt)
            if dotted is not None:
                names.append(dotted)
        return names


class ForeignExceptionRule(Rule):
    """RPR003 — foreign exception types raised from numeric packages."""

    rule_id = "RPR003"
    name = "foreign-exception"
    summary = (
        "numeric package raises RuntimeError/Exception instead of a "
        "repro exception type"
    )
    rationale = (
        "PR 1's fallback chains catch repro types precisely; a bare "
        "RuntimeError from linalg/core/robustness either escapes the "
        "chain or forces callers into over-broad handlers (RPR002).  "
        "Raise a member of repro.exceptions — ConvergenceError, "
        "InvariantViolationError, SolverFailure, ... — instead.  "
        "Builtin argument-validation errors (ValueError, TypeError, "
        "IndexError) remain fine: they mean caller error, not numeric "
        "failure."
    )

    _FOREIGN = frozenset({"Exception", "BaseException", "RuntimeError"})
    _PACKAGES = frozenset({"linalg", "core", "robustness"})

    def applies_to(self, path: str) -> bool:
        parts = _path_parts(path)
        return (
            "repro" in parts
            and "tests" not in parts
            and bool(self._PACKAGES.intersection(parts))
        )

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            dotted = _dotted_name(exc)
            if dotted is not None and dotted in self._FOREIGN:
                yield self.finding(
                    path,
                    node,
                    f"raise of foreign type {dotted} from a numeric "
                    "package; use a repro.exceptions type so the "
                    "guarded fallback chains can dispatch on it",
                )


class UnseededRandomRule(Rule):
    """RPR004 — global-state ``np.random`` calls in package source."""

    rule_id = "RPR004"
    name = "unseeded-random"
    summary = (
        "call into the legacy global-state np.random API (or a seedless "
        "default_rng()/SeedSequence())"
    )
    rationale = (
        "Every figure and table in the reproduction must be replayable "
        "from a recorded seed.  Legacy np.random.* functions share "
        "hidden global state across the whole process; a seedless "
        "default_rng() draws OS entropy.  Thread an explicit "
        "np.random.Generator (or an integer seed) through instead."
    )

    def applies_to(self, path: str) -> bool:
        return _in_package_source(_path_parts(path))

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            is_np_random = (
                len(parts) == 3
                and parts[0] in _NUMPY_ALIASES
                and parts[1] == "random"
            )
            if is_np_random and parts[2] in _LEGACY_RANDOM:
                yield self.finding(
                    path,
                    node,
                    f"{dotted}() uses the legacy shared global RNG; "
                    "pass an explicit np.random.Generator",
                )
                continue
            seedless_ctor = (
                is_np_random and parts[2] in ("default_rng", "SeedSequence")
            ) or (
                len(parts) == 1 and parts[0] in ("default_rng", "SeedSequence")
            )
            if (
                seedless_ctor
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    path,
                    node,
                    f"{dotted}() without a seed draws OS entropy; "
                    "runs become unreproducible — pass a seed",
                )


class MissingAdjointRule(Rule):
    """RPR005 — operator classes with half an adjoint pair."""

    rule_id = "RPR005"
    name = "missing-adjoint"
    summary = (
        "class defines matvec without rmatvec (or matmat without "
        "rmatmat)"
    )
    rationale = (
        "LSQR touches the data only through the pair (A@v, A.T@u); the "
        "graph-embedding factorization of Theorem 1 assumes the two are "
        "true adjoints.  A class shipping one side of a pair either "
        "crashes mid-iteration or silently inherits a base "
        "implementation that is NOT the adjoint of its override.  "
        "Define both (and validate with "
        "repro.analysis.contracts.verify_operator)."
    )

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for forward, adjoint in _ADJOINT_PAIRS:
                if forward in methods and adjoint not in methods:
                    yield self.finding(
                        path,
                        node,
                        f"class {node.name} defines {forward} but not "
                        f"{adjoint}; the adjoint identity "
                        "<Ax, u> = <x, A^T u> cannot hold against an "
                        "inherited fallback",
                    )
                elif adjoint in methods and forward not in methods:
                    yield self.finding(
                        path,
                        node,
                        f"class {node.name} defines {adjoint} but not "
                        f"{forward}; define the pair together so the "
                        "adjoint identity stays checkable",
                    )


class MutableDefaultRule(Rule):
    """RPR006 — mutable default arguments."""

    rule_id = "RPR006"
    name = "mutable-default"
    summary = "function default argument is a mutable object"
    rationale = (
        "Defaults are evaluated once; a list/dict/set default is shared "
        "by every call.  For estimators this corrupts per-fit "
        "diagnostics (one fit_report_ accumulating another fit's "
        "warnings).  Use None and create the object in the body."
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set"})

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        path,
                        default,
                        f"mutable default in {node.name}(); use None "
                        "and construct inside the body",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            return dotted in self._MUTABLE_CALLS
        return False


class UnjustifiedNoqaRule(Rule):
    """RPR007 — noqa suppressions without a justification comment."""

    rule_id = "RPR007"
    name = "unjustified-noqa"
    summary = (
        "`# repro: noqa` suppression without an adjacent justification "
        "comment"
    )
    rationale = (
        "A suppression is a claim that this line is a sanctioned "
        "exception to a numeric contract.  Unjustified claims rot: "
        "nobody can review whether the exemption still holds after the "
        "code around it changes.  Say why — either as trailing prose on "
        "the same comment (`# repro: noqa-RPR002 — CLI boundary`) or as "
        "a plain comment line directly above.  This rule cannot itself "
        "be noqa'd; the justification IS the suppression mechanism."
    )
    suppressible = False

    def check_source(self, source: str, path: str) -> Iterator[Finding]:
        # Tokenize rather than regex-scan raw lines: a "# repro: noqa"
        # inside a docstring or a test fixture string is prose ABOUT
        # suppressions, not a suppression, and only COMMENT tokens are
        # the real thing.
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = {
                token.start[0]: (token.start[1], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            }
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # unparsable source is RPR000's job
        lines = source.splitlines()
        for lineno in sorted(comments):
            col, text = comments[lineno]
            match = NOQA_RE.search(text)
            if match is None:
                continue
            trailing = text[match.end():].strip().lstrip("-—:;,. ").strip()
            if trailing:
                continue  # justified inline, after the directive
            if self._comment_above(lines, lineno):
                continue
            yield self.line_finding(
                path,
                lineno,
                col + match.start() + 1,
                "noqa suppression has no justification; add prose after "
                "the directive or a comment line directly above",
            )

    @staticmethod
    def _comment_above(lines: List[str], lineno: int) -> bool:
        """True when the previous line is a pure (non-noqa) comment."""
        if lineno < 2:
            return False
        above = lines[lineno - 2].strip()
        return above.startswith("#") and NOQA_RE.search(above) is None


class ComplexityClaimRule(Rule):
    """RPR008 — kernel entry points must carry parseable complexity claims."""

    rule_id = "RPR008"
    name = "missing-complexity-claim"
    summary = (
        "public kernel function without a parseable `Complexity: O(...)` "
        "docstring claim (or a malformed claim anywhere)"
    )
    rationale = (
        "The paper's contribution IS a complexity bound (O(ms) per LSQR "
        "iteration), and prose O(...) statements rot silently as hot "
        "paths are rewritten.  Every public function in the designated "
        "kernel modules (repro.linalg.*, repro.parallel.sharded, "
        "repro.core.responses) must state its cost in the machine-"
        "checkable grammar — vocabulary {"
        + ", ".join(sorted(VOCABULARY))
        + "} — so the empirical harness (RPR009) can hold the code to "
        "it.  Claims on methods or in other modules are optional but, "
        "when present, must parse too."
    )

    def applies_to(self, path: str) -> bool:
        parts = _path_parts(path)
        return _in_package_source(parts) and not path.endswith("__init__.py")

    @staticmethod
    def _designated(path: str) -> bool:
        parts = _path_parts(path)
        posix = "/".join(parts)
        return (
            "linalg" in parts and not posix.endswith("__init__.py")
        ) or posix.endswith(CLAIMED_MODULE_SUFFIXES)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        require = self._designated(path)
        module = tree if isinstance(tree, ast.Module) else None
        if module is None:  # pragma: no cover - linter always passes Modules
            return
        # Claims anywhere in the file must parse (module, class, and
        # method docstrings included).
        for node in ast.walk(module):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from self._check_docstring_parses(
                path, node, ast.get_docstring(node, clean=False)
            )
        module_doc = ast.get_docstring(module, clean=False)
        if module_doc and module.body:
            yield from self._check_docstring_parses(
                path, module.body[0], module_doc
            )
        if not require:
            return
        for node in module.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            docstring = ast.get_docstring(node, clean=False)
            if docstring and CLAIM_MARKER_RE.search(docstring):
                continue  # parse failures already reported above
            yield self.finding(
                path,
                node,
                f"public kernel function {node.name}() has no "
                "`Complexity: O(...)` claim; state its cost in the "
                "claim grammar (see docs/STATIC_ANALYSIS.md)",
            )

    def _check_docstring_parses(
        self, path: str, node: ast.AST, docstring: Optional[str]
    ) -> Iterator[Finding]:
        if not docstring or not CLAIM_MARKER_RE.search(docstring):
            return
        try:
            claim_from_docstring(docstring)
        except ClaimParseError as exc:
            label = getattr(node, "name", "module")
            yield self.finding(
                path,
                node,
                f"complexity claim on {label} does not follow the "
                f"grammar: {exc}",
            )


class EmpiricalComplexityRule(Rule):
    """RPR009 — measured scaling exceeding the claim (harness-produced).

    This rule never fires from the AST: findings with this ID are
    produced by the empirical harness (``python -m repro.analysis
    --complexity``), which runs each registered kernel at geometrically
    spaced sizes, fits the log–log slope, and compares it with the
    docstring claim's exponent.  It lives in the catalog so the ID,
    summary, and rationale are documented and ``--explain RPR009``
    works.
    """

    rule_id = "RPR009"
    name = "complexity-contract-violation"
    summary = (
        "measured scaling exponent exceeds the docstring's "
        "`Complexity: O(...)` claim (empirical harness finding)"
    )
    rationale = (
        "A claim that parses can still be wrong — a hidden "
        "densification or Gram product turns O(nnz) into O(m·n) with "
        "no AST-visible signature (the IDR/QR comparison in PAPERS.md "
        "is exactly such a degradation).  The harness measures each "
        "registered kernel at 4–6 geometrically spaced sizes, fits "
        "log(cost) against log(size), and fails when the fitted "
        "exponent exceeds the claimed one beyond tolerance or creeps "
        "past the checked-in complexity_baseline.json ratchet."
    )

    def applies_to(self, path: str) -> bool:
        return False  # findings come from the harness, never the AST


def _is_float64_constant(node: ast.AST) -> bool:
    """True for the spellings that pin a value to float64 (or default
    to it): ``float``, ``"float"``, ``"float64"``, ``np.float64``."""
    if isinstance(node, ast.Name) and node.id == "float":
        return True
    if isinstance(node, ast.Constant) and node.value in ("float", "float64"):
        return True
    dotted = _dotted_name(node)
    if dotted is not None:
        head, _, tail = dotted.rpartition(".")
        return tail == "float64" and head in _NUMPY_ALIASES
    return False


def _iter_loop_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Every Call inside a ``for``/``while`` body, deduplicated."""
    seen: Set[Tuple[int, int]] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                key = (sub.lineno, sub.col_offset)
                if key not in seen:
                    seen.add(key)
                    yield sub


#: numpy allocation constructors that take an explicit dtype.
_ALLOC_FUNCS = frozenset({"zeros", "empty", "ones", "full"})
#: ``*_like`` variants inherit the prototype's dtype when none is given,
#: which IS threading — they are only flagged with an explicit float64.
_ALLOC_LIKE_FUNCS = frozenset(
    {"zeros_like", "empty_like", "ones_like", "full_like"}
)
#: Calls that materialize a fresh array (RPR011's hot-loop scope).
_HOT_ALLOC_FUNCS = _ALLOC_FUNCS | _ALLOC_LIKE_FUNCS | frozenset(
    {"concatenate", "hstack", "vstack", "stack", "tile"}
)


def _numpy_call_name(node: ast.Call) -> Optional[str]:
    """``zeros`` for ``np.zeros(...)``/``numpy.zeros(...)``, else None."""
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    head, _, tail = dotted.rpartition(".")
    if head in _NUMPY_ALIASES:
        return tail
    return None


class Float64LoopTemporaryRule(Rule):
    """RPR010 — float64 temporaries allocated inside kernel loops."""

    rule_id = "RPR010"
    name = "float64-loop-temporary"
    summary = (
        "loop body in a kernel module allocates a float64 temporary "
        "(np.zeros/np.empty/.astype without a dtype threaded from an "
        "argument)"
    )
    rationale = (
        "An allocation inside a loop repeats every iteration, and "
        "without a threaded dtype it lands on float64 — double the "
        "bytes the float32 path budgeted, once per iteration.  Thread "
        "the operand's dtype (dtype=v.dtype, dtype=value_dtype) or "
        "hoist the buffer out of the loop.  Deliberate float64 "
        "accumulation inside a loop is still possible behind an "
        "annotated `# repro: noqa-RPR010`."
    )

    def applies_to(self, path: str) -> bool:
        posix = "/".join(_path_parts(path))
        return posix.endswith(KERNEL_LOOP_MODULE_SUFFIXES)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for call in _iter_loop_calls(tree):
            name = _numpy_call_name(call)
            dtype_kw = next(
                (kw.value for kw in call.keywords if kw.arg == "dtype"), None
            )
            if name in _ALLOC_FUNCS:
                if dtype_kw is None:
                    yield self.finding(
                        path,
                        call,
                        f"np.{name}(...) inside a loop with no dtype "
                        "defaults to a float64 temporary; thread the "
                        "value dtype or hoist the buffer",
                    )
                elif _is_float64_constant(dtype_kw):
                    yield self.finding(
                        path,
                        call,
                        f"np.{name}(..., dtype=float64) inside a loop "
                        "allocates a double-width temporary every "
                        "iteration; thread the value dtype instead",
                    )
            elif name in _ALLOC_LIKE_FUNCS:
                if dtype_kw is not None and _is_float64_constant(dtype_kw):
                    yield self.finding(
                        path,
                        call,
                        f"np.{name}(..., dtype=float64) inside a loop "
                        "overrides the prototype's dtype with a "
                        "double-width temporary",
                    )
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "astype"
            ):
                target = dtype_kw
                if target is None and call.args:
                    target = call.args[0]
                if target is not None and _is_float64_constant(target):
                    yield self.finding(
                        path,
                        call,
                        ".astype(float64) inside a loop copies to a "
                        "double-width temporary every iteration; "
                        "thread the dtype from an argument",
                    )


class HotLoopAllocationRule(Rule):
    """RPR011 — allocations inside the solver hot loops."""

    rule_id = "RPR011"
    name = "hot-loop-allocation"
    summary = (
        "allocation call inside a per-iteration body of the "
        "lsqr/block_lsqr/sharded hot loops"
    )
    rationale = (
        "The solver iteration bodies are the O(ms)-per-iteration bound "
        "itself: docs/PARALLEL.md commits them to reused scratch "
        "buffers (the PR 7 adjoint fan-in rework exists for exactly "
        "this).  A fresh np.zeros/np.empty/np.concatenate per "
        "iteration adds allocator traffic and page faults that grow "
        "with the operand, silently degrading the measured constant — "
        "allocate once outside the loop and write into the buffer."
    )

    def applies_to(self, path: str) -> bool:
        posix = "/".join(_path_parts(path))
        return posix.endswith(HOT_LOOP_MODULE_SUFFIXES)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for call in _iter_loop_calls(tree):
            name = _numpy_call_name(call)
            if name in _HOT_ALLOC_FUNCS:
                yield self.finding(
                    path,
                    call,
                    f"np.{name}(...) inside a solver hot loop; reuse a "
                    "scratch buffer allocated outside the iteration "
                    "(docs/PARALLEL.md scratch-buffer contract)",
                )


#: The shipped rule set, in ID order.
DEFAULT_RULES: Tuple[Rule, ...] = (
    DtypeLiteralDriftRule(),
    OverBroadExceptRule(),
    ForeignExceptionRule(),
    UnseededRandomRule(),
    MissingAdjointRule(),
    MutableDefaultRule(),
    UnjustifiedNoqaRule(),
    ComplexityClaimRule(),
    EmpiricalComplexityRule(),
    Float64LoopTemporaryRule(),
    HotLoopAllocationRule(),
)


def rules_by_id() -> Dict[str, Rule]:
    """Map rule ID → rule instance for the default set."""
    return {rule.rule_id: rule for rule in DEFAULT_RULES}


def rule_catalog() -> str:
    """Human-readable catalog of the default rules (for ``--list-rules``)."""
    lines = []
    for rule in DEFAULT_RULES:
        lines.append(f"{rule.rule_id} ({rule.name}): {rule.summary}")
    return "\n".join(lines)
