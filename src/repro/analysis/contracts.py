"""Runtime numeric contracts for linear operators.

The static rules (:mod:`repro.analysis.rules`) catch structural
hazards; this module checks the *numbers*.  Every operator in the
package promises:

1. **Adjoint identity** — ``⟨A v, u⟩ = ⟨v, Aᵀ u⟩`` for all probes.
   This is what makes ``rmatvec`` actually the transpose LSQR assumes,
   and what the graph-embedding factorization of Theorem 1 rests on.
2. **Block/column agreement** — ``matmat(B)`` equals the column-by-
   column ``matvec`` sweep (up to summation-order rounding), so the
   blocked solver of PR 2 is a pure performance change, never a
   semantic one.  Likewise ``rmatmat``.
3. **Shape conformance** — products have the shapes the operator's
   ``shape`` declares.
4. **Dtype conformance** — probing in the operator's declared value
   dtype returns that dtype: no silent float64 upcast on the float32
   path, and ``op.dtype`` never lies about what products will be.

:func:`verify_operator` runs all four on random probes and either
returns a :class:`ContractReport` or raises
:class:`repro.exceptions.ContractViolationError` naming every failed
check.  The hypothesis suite in ``tests/analysis/test_contracts.py``
drives it across every shipped operator class and both value dtypes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

import numpy as np

from repro._typing import FloatArray
from repro.exceptions import ContractViolationError
from repro.linalg.operators import LinearOperator, as_operator

__all__ = ["ContractCheck", "ContractReport", "verify_operator"]

#: Default probe count per direction.
_DEFAULT_PROBES = 3

#: Default dense block width for the matmat agreement checks.
_DEFAULT_BLOCK_WIDTH = 3


@dataclass(frozen=True)
class ContractCheck:
    """One contract check: what was checked and how it went."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.name}: {status}{suffix}"


@dataclass
class ContractReport:
    """All checks run against one operator instance."""

    operator: str
    shape: "tuple[int, int]"
    dtype: str
    checks: List[ContractCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[str]:
        return [str(check) for check in self.checks if not check.passed]

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(ContractCheck(name, bool(passed), detail))

    def summary(self) -> str:
        n_failed = len(self.failures)
        return (
            f"ContractReport({self.operator}, shape={self.shape}, "
            f"dtype={self.dtype}: {len(self.checks)} checks, "
            f"{n_failed} failed)"
        )

    def __str__(self) -> str:
        return self.summary()


def _f64(array: FloatArray) -> FloatArray:
    return np.asarray(array, dtype=np.float64)


def _rel_gap(lhs: float, rhs: float, scale: float) -> float:
    denom = max(abs(lhs), abs(rhs), scale, np.finfo(np.float64).tiny)
    return abs(lhs - rhs) / denom


def _max_col_gap(A: FloatArray, B: FloatArray) -> float:
    """Worst per-column relative difference between two blocks."""
    A64, B64 = _f64(A), _f64(B)
    if A64.size == 0:
        return 0.0
    diff = np.linalg.norm(A64 - B64, axis=0)
    scale = np.maximum(
        np.maximum(np.linalg.norm(A64, axis=0), np.linalg.norm(B64, axis=0)),
        1.0,
    )
    return float(np.max(diff / scale))


def verify_operator(
    op: Union[LinearOperator, Any],
    n_probes: int = _DEFAULT_PROBES,
    block_width: int = _DEFAULT_BLOCK_WIDTH,
    rng: Optional[Union[int, np.random.Generator]] = None,
    rtol: Optional[float] = None,
    raise_on_failure: bool = True,
) -> ContractReport:
    """Check an operator against the numeric contracts on random probes.

    Parameters
    ----------
    op:
        A :class:`~repro.linalg.operators.LinearOperator`, or anything
        :func:`~repro.linalg.operators.as_operator` accepts.
    n_probes:
        Independent probe vectors per direction for the adjoint and
        mat-vec checks.
    block_width:
        Column count of the dense blocks used for the
        ``matmat``/``rmatmat`` agreement checks (skipped when 0).
    rng:
        Seed or :class:`numpy.random.Generator`; default is a fixed
        seed, so bare calls are deterministic.
    rtol:
        Relative tolerance for the numeric comparisons.  Defaults to
        ``10_000 · eps`` of the operator's value dtype — loose enough
        for summation-order differences between blocked and sequential
        kernels, tight enough that a wrong adjoint (any systematic
        error) fails immediately.
    raise_on_failure:
        When True (default) raise
        :class:`~repro.exceptions.ContractViolationError` if any check
        fails; otherwise return the report for inspection.

    Returns
    -------
    ContractReport
        Every check run, with pass/fail and numeric details.

    Notes
    -----
    Probes are drawn in the operator's declared ``dtype``; inner
    products are accumulated in float64 regardless, so the comparison
    tolerance reflects the operator's arithmetic, not the checker's.
    The operator's product counters are restored afterwards, so
    verification does not perturb complexity accounting.
    """
    operator = op if isinstance(op, LinearOperator) else as_operator(op)
    m, n = operator.shape
    dtype = np.dtype(operator.dtype)
    if rng is None or isinstance(rng, int):
        rng = np.random.default_rng(0 if rng is None else rng)
    if rtol is None:
        rtol = 10_000 * float(np.finfo(dtype).eps)

    report = ContractReport(
        operator=type(operator).__name__,
        shape=(int(m), int(n)),
        dtype=str(dtype),
    )

    counters = (
        operator.n_matvec,
        operator.n_rmatvec,
        operator.n_matmat,
        operator.n_rmatmat,
    )
    try:
        _run_checks(operator, report, n_probes, block_width, rng, rtol)
    finally:
        (
            operator.n_matvec,
            operator.n_rmatvec,
            operator.n_matmat,
            operator.n_rmatmat,
        ) = counters

    if raise_on_failure and not report.ok:
        raise ContractViolationError(
            f"{report.operator} violates numeric contracts: "
            + "; ".join(report.failures),
            failures=report.failures,
        )
    return report


def _run_checks(
    operator: LinearOperator,
    report: ContractReport,
    n_probes: int,
    block_width: int,
    rng: np.random.Generator,
    rtol: float,
) -> None:
    m, n = operator.shape
    dtype = np.dtype(operator.dtype)

    def probe(size: int) -> FloatArray:
        return rng.standard_normal(size).astype(dtype, copy=False)

    for i in range(max(n_probes, 1)):
        v = probe(n)
        u = probe(m)
        # The verifier must survive arbitrary misbehavior in the operator
        # under test — a crash is itself a contract violation to report.
        try:
            Av = operator.matvec(v)
            Atu = operator.rmatvec(u)
        except Exception as exc:  # repro: noqa-RPR002 — verifier boundary: any crash becomes a reported violation
            report.add(
                f"matvec-call[{i}]",
                False,
                f"product raised {type(exc).__name__}: {exc}",
            )
            return

        report.add(
            f"matvec-shape[{i}]",
            Av.shape == (m,),
            f"got {Av.shape}, want ({m},)",
        )
        report.add(
            f"rmatvec-shape[{i}]",
            Atu.shape == (n,),
            f"got {Atu.shape}, want ({n},)",
        )
        report.add(
            f"matvec-dtype[{i}]",
            np.dtype(Av.dtype) == dtype,
            f"got {Av.dtype}, declared {dtype} — silent upcast/downcast",
        )
        report.add(
            f"rmatvec-dtype[{i}]",
            np.dtype(Atu.dtype) == dtype,
            f"got {Atu.dtype}, declared {dtype} — silent upcast/downcast",
        )
        report.add(
            f"matvec-finite[{i}]",
            bool(np.all(np.isfinite(Av))),
            "non-finite entries in A @ v for a finite probe",
        )
        report.add(
            f"rmatvec-finite[{i}]",
            bool(np.all(np.isfinite(Atu))),
            "non-finite entries in A.T @ u for a finite probe",
        )

        if Av.shape != (m,) or Atu.shape != (n,):
            # Shapes already reported above; the remaining comparisons
            # are undefined against misshapen products.
            return

        lhs = float(_f64(u) @ _f64(Av))
        rhs = float(_f64(v) @ _f64(Atu))
        scale = float(
            np.linalg.norm(_f64(u)) * np.linalg.norm(_f64(Av))
            + np.linalg.norm(_f64(v)) * np.linalg.norm(_f64(Atu))
        )
        gap = _rel_gap(lhs, rhs, scale)
        # Degenerate operators (e.g. centering a single row) produce
        # products that are pure cancellation noise; when both sides are
        # below rounding level at probe scale, the identity holds as
        # well as arithmetic can show.
        probe_scale = float(
            np.linalg.norm(_f64(u)) * np.linalg.norm(_f64(v))
        )
        noise_floor = max(abs(lhs), abs(rhs)) <= rtol * probe_scale
        report.add(
            f"adjoint-identity[{i}]",
            gap <= rtol or noise_floor,
            f"<Av,u>={lhs:.6g} vs <v,Atu>={rhs:.6g}, "
            f"relative gap {gap:.3g} > rtol {rtol:.3g}",
        )

    if block_width > 0:
        B = rng.standard_normal((n, block_width)).astype(dtype, copy=False)
        U = rng.standard_normal((m, block_width)).astype(dtype, copy=False)
        try:
            AB = operator.matmat(B)
            AtU = operator.rmatmat(U)
        except Exception as exc:  # repro: noqa-RPR002 — verifier boundary: any crash becomes a reported violation
            report.add(
                "matmat-call",
                False,
                f"block product raised {type(exc).__name__}: {exc}",
            )
            return

        report.add(
            "matmat-shape",
            AB.shape == (m, block_width),
            f"got {AB.shape}, want ({m}, {block_width})",
        )
        report.add(
            "rmatmat-shape",
            AtU.shape == (n, block_width),
            f"got {AtU.shape}, want ({n}, {block_width})",
        )
        report.add(
            "matmat-dtype",
            np.dtype(AB.dtype) == dtype,
            f"got {AB.dtype}, declared {dtype} — silent upcast/downcast",
        )
        report.add(
            "rmatmat-dtype",
            np.dtype(AtU.dtype) == dtype,
            f"got {AtU.dtype}, declared {dtype} — silent upcast/downcast",
        )

        if AB.shape == (m, block_width):
            columns = np.stack(
                [operator.matvec(B[:, j]) for j in range(block_width)],
                axis=1,
            )
            gap = _max_col_gap(AB, columns)
            report.add(
                "matmat-vs-matvec",
                gap <= rtol,
                f"blocked vs per-column forward products differ by "
                f"{gap:.3g} > rtol {rtol:.3g}",
            )
        if AtU.shape == (n, block_width):
            columns = np.stack(
                [operator.rmatvec(U[:, j]) for j in range(block_width)],
                axis=1,
            )
            gap = _max_col_gap(AtU, columns)
            report.add(
                "rmatmat-vs-rmatvec",
                gap <= rtol,
                f"blocked vs per-column adjoint products differ by "
                f"{gap:.3g} > rtol {rtol:.3g}",
            )
