"""Synthetic MNIST-like handwritten digits.

MNIST (Table II): 4,000 images (2,000 train + 2,000 test) of 28×28 gray
pixels, 10 classes, ~200 samples per digit in each half.  This generator
renders stroke-based digit glyphs:

- each digit class is a fixed set of line segments on a 16-segment-style
  layout (the class signal);
- each sample applies a random affine distortion (rotation, shear,
  scale, translation — "handwriting"), stroke-width jitter, intensity
  jitter, and pixel noise.

The train/test pool structure of the original (fixed 2,000 + 2,000) is
preserved through ``metadata["train_pool"]`` / ``metadata["test_pool"]``:
experiments draw ``l`` training samples per class from the train pool and
always evaluate on the full test pool, exactly as the paper does.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.base import Dataset

MNIST_SIDE = 28
MNIST_TRAIN = 2000
MNIST_TEST = 2000

# Segment endpoints in [0,1]² (x right, y down), per digit.  A readable
# stroke skeleton is enough — class identity comes from topology, not
# typographic fidelity.
_SEGMENTS: Dict[int, List[Tuple[Tuple[float, float], Tuple[float, float]]]] = {
    0: [((0.3, 0.2), (0.7, 0.2)), ((0.7, 0.2), (0.7, 0.8)),
        ((0.7, 0.8), (0.3, 0.8)), ((0.3, 0.8), (0.3, 0.2))],
    1: [((0.5, 0.15), (0.5, 0.85)), ((0.38, 0.3), (0.5, 0.15))],
    2: [((0.3, 0.25), (0.5, 0.15)), ((0.5, 0.15), (0.7, 0.3)),
        ((0.7, 0.3), (0.3, 0.8)), ((0.3, 0.8), (0.7, 0.8))],
    3: [((0.3, 0.2), (0.7, 0.2)), ((0.7, 0.2), (0.45, 0.48)),
        ((0.45, 0.48), (0.7, 0.65)), ((0.7, 0.65), (0.55, 0.85)),
        ((0.55, 0.85), (0.3, 0.8))],
    4: [((0.6, 0.15), (0.3, 0.6)), ((0.3, 0.6), (0.75, 0.6)),
        ((0.6, 0.15), (0.6, 0.85))],
    5: [((0.7, 0.15), (0.3, 0.15)), ((0.3, 0.15), (0.3, 0.5)),
        ((0.3, 0.5), (0.65, 0.5)), ((0.65, 0.5), (0.65, 0.8)),
        ((0.65, 0.8), (0.3, 0.8))],
    6: [((0.65, 0.15), (0.35, 0.45)), ((0.35, 0.45), (0.35, 0.8)),
        ((0.35, 0.8), (0.65, 0.8)), ((0.65, 0.8), (0.65, 0.5)),
        ((0.65, 0.5), (0.35, 0.5))],
    7: [((0.3, 0.15), (0.7, 0.15)), ((0.7, 0.15), (0.42, 0.85))],
    8: [((0.5, 0.15), (0.32, 0.32)), ((0.32, 0.32), (0.5, 0.5)),
        ((0.5, 0.5), (0.68, 0.32)), ((0.68, 0.32), (0.5, 0.15)),
        ((0.5, 0.5), (0.3, 0.68)), ((0.3, 0.68), (0.5, 0.85)),
        ((0.5, 0.85), (0.7, 0.68)), ((0.7, 0.68), (0.5, 0.5))],
    9: [((0.65, 0.45), (0.35, 0.45)), ((0.35, 0.45), (0.35, 0.18)),
        ((0.35, 0.18), (0.65, 0.18)), ((0.65, 0.18), (0.65, 0.45)),
        ((0.65, 0.45), (0.55, 0.85))],
}


def _render_digit(
    digit: int, rng: np.random.Generator, side: int
) -> np.ndarray:
    """Render one distorted glyph as a ``side × side`` image in [0, 1]."""
    ys, xs = np.meshgrid(
        np.linspace(0.0, 1.0, side), np.linspace(0.0, 1.0, side), indexing="ij"
    )
    points = np.stack([xs.ravel(), ys.ravel()], axis=1)  # (px, 2), (x, y)

    # Random affine "handwriting" distortion applied to the pixel grid —
    # equivalent to inverse-warping the glyph.
    angle = rng.uniform(-0.25, 0.25)  # ±14°
    shear = rng.uniform(-0.2, 0.2)
    scale = rng.uniform(0.85, 1.15, size=2)
    shift = rng.uniform(-0.06, 0.06, size=2)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    linear = np.array(
        [[cos_a / scale[0], -sin_a + shear], [sin_a, cos_a / scale[1]]]
    )
    warped = (points - 0.5 - shift) @ linear.T + 0.5

    width = rng.uniform(0.035, 0.06)  # stroke width
    intensity = rng.uniform(0.8, 1.0)

    min_d2 = np.full(points.shape[0], np.inf)
    for (x0, y0), (x1, y1) in _SEGMENTS[digit]:
        a = np.array([x0, y0])
        b = np.array([x1, y1])
        ab = b - a
        denom = float(ab @ ab)
        t = np.clip(((warped - a) @ ab) / denom, 0.0, 1.0)
        closest = a + t[:, None] * ab
        d2 = np.sum((warped - closest) ** 2, axis=1)
        np.minimum(min_d2, d2, out=min_d2)

    img = intensity * np.exp(-0.5 * min_d2 / width**2)
    img += 0.03 * rng.standard_normal(points.shape[0])
    return np.clip(img, 0.0, 1.0)


def make_digits(
    n_train: int = MNIST_TRAIN,
    n_test: int = MNIST_TEST,
    side: int = MNIST_SIDE,
    seed: int = 0,
) -> Dataset:
    """Generate the MNIST-like digit dataset with fixed train/test pools.

    Samples are class-balanced (≈``n/10`` per digit in each pool, as in
    the paper's "around 200 samples of each digit").
    """
    rng = np.random.default_rng(seed)
    m = n_train + n_test
    labels = np.concatenate(
        [np.arange(10).repeat(-(-pool // 10))[:pool] for pool in (n_train, n_test)]
    )
    X = np.empty((m, side * side))
    for i, digit in enumerate(labels):
        X[i] = _render_digit(int(digit), rng, side)
    return Dataset(
        name="mnist",
        X=X,
        y=labels,
        metadata={
            "paper_dataset": "MNIST (first 2000 of train set A / test set B)",
            "side": side,
            "seed": seed,
            "split_protocol": "per_class_from_pool",
            "train_pool": np.arange(n_train),
            "test_pool": np.arange(n_train, m),
            "train_sizes": [30, 50, 70, 100, 130, 170],
        },
    )
