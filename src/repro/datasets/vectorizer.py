"""Text vectorization — the preprocessing pipeline behind Table II's corpus.

The paper's 20Newsgroups preparation: "duplicates and
newsgroup-identifying headers are removed ... 26,214 distinct terms
after stemming and stop word removal.  Each document is then represented
as a term-frequency vector and normalized to 1."  This module provides
that pipeline from scratch so raw text can be fed to SRDA end-to-end:

- :func:`tokenize` — lowercasing, alphabetic tokens, length filter;
- :func:`strip_suffix` — a light rule-based stemmer (a Porter-lite pass
  covering plurals and common verb/adverb suffixes);
- :data:`STOP_WORDS` — a standard English stop list;
- :class:`TfVectorizer` — builds the vocabulary on a training corpus
  (with document-frequency cutoffs), then maps any corpus to L2
  normalized term-frequency rows of a :class:`CSRMatrix`.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.linalg.sparse import CSRMatrix

#: A compact English stop list (the usual suspects; enough to drop the
#: Zipf head the way the paper's preprocessing does).
STOP_WORDS = frozenset(
    """a about above after again against all am an and any are as at be
    because been before being below between both but by could did do does
    doing down during each few for from further had has have having he her
    here hers herself him himself his how i if in into is it its itself
    just me more most my myself no nor not now of off on once only or
    other our ours ourselves out over own same she should so some such
    than that the their theirs them themselves then there these they this
    those through to too under until up very was we were what when where
    which while who whom why will with you your yours yourself
    yourselves""".split()
)

_TOKEN_PATTERN = re.compile(r"[a-z]+")

#: Suffix-stripping rules applied longest-first (a Porter-lite pass).
_SUFFIXES = (
    "ational", "iveness", "fulness", "ousness",
    "ization", "ation", "ement", "ments",
    "ness", "tion", "sses", "ment", "ings",
    "ies", "ing", "ion", "est", "ers",
    "ed", "es", "er", "ly", "s",
)


def strip_suffix(token: str, min_stem: int = 3) -> str:
    """Strip the longest matching suffix, keeping at least ``min_stem``
    characters — a light approximation of stemming adequate for
    vocabulary consolidation."""
    for suffix in _SUFFIXES:
        if token.endswith(suffix) and len(token) - len(suffix) >= min_stem:
            return token[: -len(suffix)]
    return token


def tokenize(
    text: str,
    stem: bool = True,
    remove_stop_words: bool = True,
    min_length: int = 2,
) -> List[str]:
    """Lowercase, extract alphabetic tokens, filter, optionally stem."""
    tokens = _TOKEN_PATTERN.findall(text.lower())
    out = []
    for token in tokens:
        if len(token) < min_length:
            continue
        if remove_stop_words and token in STOP_WORDS:
            continue
        if stem:
            token = strip_suffix(token)
        out.append(token)
    return out


class TfVectorizer:
    """Term-frequency vectorizer producing unit-norm CSR rows.

    Parameters
    ----------
    min_df:
        Minimum number of training documents a term must appear in.
    max_df_ratio:
        Maximum fraction of training documents a term may appear in
        (drops corpus-wide boilerplate the stop list missed).
    max_features:
        Optional cap: keep the most document-frequent terms.
    stem, remove_stop_words:
        Passed to :func:`tokenize`.

    Attributes
    ----------
    vocabulary_:
        ``term -> column index`` for the retained terms.
    document_frequency_:
        Training document counts per retained term (same order).
    """

    def __init__(
        self,
        min_df: int = 2,
        max_df_ratio: float = 0.5,
        max_features: Optional[int] = None,
        stem: bool = True,
        remove_stop_words: bool = True,
    ) -> None:
        if min_df < 1:
            raise ValueError("min_df must be at least 1")
        if not 0.0 < max_df_ratio <= 1.0:
            raise ValueError("max_df_ratio must lie in (0, 1]")
        self.min_df = int(min_df)
        self.max_df_ratio = float(max_df_ratio)
        self.max_features = max_features
        self.stem = bool(stem)
        self.remove_stop_words = bool(remove_stop_words)
        self.vocabulary_: Optional[Dict[str, int]] = None
        self.document_frequency_: Optional[np.ndarray] = None

    def _tokens(self, document: str) -> List[str]:
        return tokenize(
            document,
            stem=self.stem,
            remove_stop_words=self.remove_stop_words,
        )

    def fit(self, documents: Sequence[str]) -> "TfVectorizer":
        """Build the vocabulary from a training corpus."""
        if len(documents) == 0:
            raise ValueError("cannot fit on an empty corpus")
        doc_frequency: Counter = Counter()
        for document in documents:
            doc_frequency.update(set(self._tokens(document)))

        max_df = self.max_df_ratio * len(documents)
        kept = [
            (term, count)
            for term, count in doc_frequency.items()
            if self.min_df <= count <= max_df
        ]
        # most-frequent first, ties alphabetical → deterministic columns
        kept.sort(key=lambda item: (-item[1], item[0]))
        if self.max_features is not None:
            kept = kept[: self.max_features]
        if not kept:
            raise ValueError(
                "no terms survive the document-frequency cutoffs"
            )
        self.vocabulary_ = {term: i for i, (term, _) in enumerate(kept)}
        self.document_frequency_ = np.array(
            [count for _, count in kept], dtype=np.int64
        )
        return self

    @property
    def n_features(self) -> int:
        """Size of the fitted vocabulary."""
        if self.vocabulary_ is None:
            raise RuntimeError("TfVectorizer must be fitted before use")
        return len(self.vocabulary_)

    def transform(self, documents: Iterable[str]) -> CSRMatrix:
        """Map documents to L2-normalized term-frequency CSR rows.

        Out-of-vocabulary terms are ignored; an all-OOV document becomes
        an (explicitly allowed) empty row.
        """
        if self.vocabulary_ is None:
            raise RuntimeError("TfVectorizer must be fitted before use")
        rows = []
        for document in documents:
            counts: Counter = Counter()
            for token in self._tokens(document):
                index = self.vocabulary_.get(token)
                if index is not None:
                    counts[index] += 1
            if counts:
                indices = np.fromiter(counts.keys(), dtype=np.int64)
                values = np.fromiter(
                    counts.values(), dtype=np.float64, count=len(counts)
                )
            else:
                indices = np.empty(0, dtype=np.int64)
                values = np.empty(0, dtype=np.float64)
            rows.append((indices, values))
        return CSRMatrix.from_rows(rows, self.n_features).normalize_rows()

    def fit_transform(self, documents: Sequence[str]) -> CSRMatrix:
        """Fit the vocabulary and vectorize in one pass."""
        return self.fit(documents).transform(documents)


def make_raw_documents(
    n_docs: int = 400,
    n_classes: int = 4,
    words_per_doc: int = 60,
    vocabulary_size: int = 600,
    topic_words: int = 40,
    seed: int = 0,
):
    """Generate synthetic *raw text* documents with topical structure.

    A pronounceable pseudo-vocabulary is drawn once; each class boosts a
    subset of it; documents are whitespace-joined word sequences with a
    sprinkling of stop words (so the pipeline has something to remove).
    Returns ``(documents, labels)``.
    """
    rng = np.random.default_rng(seed)
    syllables = [
        consonant + vowel
        for consonant in "bcdfglmnprstvz"
        for vowel in "aeiou"
    ]

    def make_word():
        return "".join(
            rng.choice(syllables)
            for _ in range(int(rng.integers(2, 4)))
        )

    lexicon = sorted({make_word() for _ in range(vocabulary_size * 2)})
    rng.shuffle(lexicon)
    lexicon = lexicon[:vocabulary_size]
    weights = np.arange(1, len(lexicon) + 1, dtype=np.float64) ** -1.05
    weights /= weights.sum()

    topic_sets = [
        rng.choice(len(lexicon), size=topic_words, replace=False)
        for _ in range(n_classes)
    ]
    stop_pool = sorted(STOP_WORDS)

    documents = []
    labels = np.arange(n_docs) % n_classes
    rng.shuffle(labels)
    for label in labels:
        dist = weights.copy()
        dist[topic_sets[label]] *= 30.0
        dist /= dist.sum()
        cumulative = np.cumsum(dist)
        draws = np.searchsorted(cumulative, rng.random(words_per_doc))
        words = [lexicon[i] for i in draws]
        # sprinkle stop words for the pipeline to strip
        for _ in range(words_per_doc // 5):
            position = int(rng.integers(0, len(words)))
            words.insert(position, stop_pool[int(rng.integers(0, len(stop_pool)))])
        documents.append(" ".join(words))
    return documents, labels
