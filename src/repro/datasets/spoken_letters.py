"""Synthetic Isolet-like spoken-letter features.

Isolet (Table II): 6,237 samples (the paper trains on isolet1&2 — 3,120
samples, 120 per letter — and tests on isolet4&5 — 3,117), 617 acoustic
features in [-1, 1], 26 classes.  The defining trait the paper's numbers
depend on is *speaker shift*: train and test come from disjoint speaker
groups, so small training sets overfit speaker idiosyncrasies — exactly
where regularized methods pull ahead of plain LDA.

The generator mirrors that structure:

- each letter has a smooth spectral prototype over the 617 coordinates
  (class signal);
- each speaker has a personal smooth offset field, a gain, and a warp
  applied to every utterance they produce (nuisance, shared within a
  speaker and *not* shared across the train/test pools);
- each utterance adds *coarticulation* noise along shared directions
  that straddle the prototype span (see below) plus white noise;
- features are linearly rescaled into [-1, 1] like the original.

Speakers are split into a train pool and a test pool recorded in the
dataset metadata, matching isolet1&2 vs isolet4&5.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

ISOLET_CLASSES = 26
ISOLET_FEATURES = 617
ISOLET_TRAIN_SPEAKERS = 60  # isolet1&2: 60 speakers × 26 letters × 2
ISOLET_TEST_SPEAKERS = 60   # isolet4&5


def _smooth_curve(rng: np.random.Generator, n: int, n_waves: int = 12) -> np.ndarray:
    """A smooth random function on [0, 1) sampled at ``n`` points."""
    t = np.linspace(0.0, 1.0, n, endpoint=False)
    curve = np.zeros(n)
    for _ in range(n_waves):
        freq = rng.uniform(0.5, 8.0)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        amp = rng.standard_normal() / np.sqrt(n_waves)
        curve += amp * np.sin(2.0 * np.pi * freq * t + phase)
    return curve


def make_spoken_letters(
    n_train_speakers: int = ISOLET_TRAIN_SPEAKERS,
    n_test_speakers: int = ISOLET_TEST_SPEAKERS,
    n_features: int = ISOLET_FEATURES,
    n_classes: int = ISOLET_CLASSES,
    utterances_per_letter: int = 2,
    prototype_scale: float = 1.0,
    speaker_offset_scale: float = 0.4,
    speaker_warp_scale: float = 0.1,
    coarticulation_scale: float = 0.25,
    n_coarticulation: int = 25,
    noise_scale: float = 0.5,
    seed: int = 0,
) -> Dataset:
    """Generate the Isolet-like dataset with speaker-disjoint pools.

    Defaults give ``m = (60 + 60) × 26 × 2 = 6240`` samples (Table II
    lists 6,237 — three utterances were lost in the original recording),
    617 features, 26 classes, train pool of 3,120.

    The per-utterance **coarticulation** noise loads on shared directions
    that straddle the class-prototype span — part inside it, part
    outside.  Suppressing it requires the *full* within-class covariance
    (the out-of-span half cancels the in-span half), which is exactly the
    structure real speech has and the reason centroid-span methods like
    IDR/QR trail full-covariance discriminants on the original Isolet.
    """
    rng = np.random.default_rng(seed)
    prototypes = np.vstack(
        [prototype_scale * _smooth_curve(rng, n_features) for _ in range(n_classes)]
    )

    # shared coarticulation directions: prototype mixture + smooth tail
    mix = rng.standard_normal((n_coarticulation, n_classes)) / np.sqrt(n_classes)
    # tails are full-rank gaussian (not smooth) so the 25 loading
    # directions stay linearly independent outside the prototype span —
    # the cancellation information centroid-span methods cannot reach
    coarticulation_basis = coarticulation_scale * (
        mix @ prototypes + rng.standard_normal((n_coarticulation, n_features))
    )

    n_speakers = n_train_speakers + n_test_speakers
    rows = []
    labels = []
    speaker_ids = []
    for speaker in range(n_speakers):
        offset = speaker_offset_scale * _smooth_curve(rng, n_features)
        gain = rng.uniform(0.8, 1.2)
        # spectral warp: a smooth per-speaker re-weighting of coordinates
        warp = 1.0 + speaker_warp_scale * _smooth_curve(rng, n_features)
        for letter in range(n_classes):
            for _ in range(utterances_per_letter):
                loadings = rng.standard_normal(n_coarticulation)
                coarticulation = loadings @ coarticulation_basis
                noise = noise_scale * rng.standard_normal(n_features)
                sample = gain * warp * prototypes[letter] + offset
                sample += coarticulation + noise
                rows.append(sample)
                labels.append(letter)
                speaker_ids.append(speaker)
    X = np.vstack(rows)
    # linear rescale into [-1, 1] (the original's feature range) —
    # linear, not tanh, so the straddling-noise covariance structure
    # the generators build is preserved exactly
    X /= np.abs(X).max()
    y = np.asarray(labels)
    speaker_ids = np.asarray(speaker_ids)

    train_pool = np.flatnonzero(speaker_ids < n_train_speakers)
    test_pool = np.flatnonzero(speaker_ids >= n_train_speakers)
    return Dataset(
        name="isolet",
        X=X,
        y=y,
        metadata={
            "paper_dataset": "Isolet (train isolet1&2, test isolet4&5)",
            "n_speakers": n_speakers,
            "speaker_ids": speaker_ids,
            "seed": seed,
            "split_protocol": "per_class_from_pool",
            "train_pool": train_pool,
            "test_pool": test_pool,
            "train_sizes": [20, 30, 50, 70, 90, 110],
        },
    )
