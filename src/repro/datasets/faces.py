"""Synthetic PIE-like face images.

CMU PIE (Table II): 11,560 images of 68 subjects, 32×32 gray pixels
scaled to [0, 1], 170 images per subject spanning pose, illumination and
expression.  This generator renders parametric "faces" with the same
factor structure:

- **identity** (the class signal): per-subject face geometry — oval
  shape, eye position/size, mouth position/width, nose length, brow —
  plus a fixed low-frequency texture field unique to the subject;
- **nuisance variation** (what makes the task hard and regularization
  matter): per-image directional illumination gradients, expression
  (mouth curvature, eye openness), small pose jitter (translation and
  scale), and pixel noise.

Pixels land in [0, 1] like the original (which divides by 256).  The
defaults reproduce Table II's shape exactly: ``m = 11560``, ``n = 1024``,
``c = 68``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset

#: Table II values for the PIE dataset.
PIE_SUBJECTS = 68
PIE_IMAGES_PER_SUBJECT = 170
PIE_SIDE = 32


def _smooth_field(rng: np.random.Generator, side: int, scale: int = 4) -> np.ndarray:
    """A smooth random texture: upsampled low-resolution Gaussian noise."""
    coarse = rng.standard_normal((scale, scale))
    fine = np.kron(coarse, np.ones((side // scale, side // scale)))
    # light blur by averaging shifted copies
    padded = np.pad(fine, 1, mode="edge")
    blurred = (
        padded[:-2, 1:-1]
        + padded[2:, 1:-1]
        + padded[1:-1, :-2]
        + padded[1:-1, 2:]
        + 4.0 * fine
    ) / 8.0
    return blurred


class _SubjectParams:
    """Identity parameters drawn once per subject.

    The ranges are deliberately narrow — subjects must look *similar*
    (all faces share a template) so that with few training images the
    nuisance factors dominate and the small-sample error rates land in
    the paper's regime, rather than the task being trivially separable.
    """

    def __init__(self, rng: np.random.Generator, side: int) -> None:
        self.face_rx = 0.36 + 0.03 * rng.random()  # face half-width
        self.face_ry = 0.42 + 0.03 * rng.random()  # face half-height
        self.eye_dx = 0.135 + 0.02 * rng.random()  # eye horizontal offset
        self.eye_y = -0.12 - 0.03 * rng.random()  # eye vertical position
        self.eye_size = 0.04 + 0.01 * rng.random()
        self.mouth_y = 0.22 + 0.03 * rng.random()
        self.mouth_w = 0.12 + 0.03 * rng.random()
        self.nose_len = 0.14 + 0.03 * rng.random()
        self.brow_y = self.eye_y - 0.08 - 0.015 * rng.random()
        self.skin = 0.50 + 0.10 * rng.random()  # base intensity
        self.texture = 0.04 * _smooth_field(rng, side)


def _render_face(
    params: _SubjectParams,
    rng: np.random.Generator,
    side: int,
) -> np.ndarray:
    """Render one image of a subject with random nuisance factors."""
    # pose jitter: translation and isotropic scale
    tx, ty = rng.uniform(-0.015, 0.015, size=2)
    scale = rng.uniform(0.98, 1.02)
    ys, xs = np.meshgrid(
        np.linspace(-0.5, 0.5, side), np.linspace(-0.5, 0.5, side), indexing="ij"
    )
    u = (xs - tx) / scale
    v = (ys - ty) / scale

    # expression factors
    smile = rng.uniform(-1.5, 1.5)  # mouth curvature
    openness = rng.uniform(0.4, 1.7)  # eye openness

    img = np.zeros((side, side))
    face_mask = (u / params.face_rx) ** 2 + (v / params.face_ry) ** 2 <= 1.0
    img[face_mask] = params.skin
    img += params.texture * face_mask
    # per-image appearance variation in the same smooth-field basis as
    # the identity texture: the signal/noise overlap that sets the
    # difficulty floor for every linear method at once
    img += 0.055 * _smooth_field(rng, side) * face_mask

    # eyes: dark Gaussian blobs, vertical extent scaled by openness
    for sign in (-1.0, 1.0):
        d2 = ((u - sign * params.eye_dx) / params.eye_size) ** 2 + (
            (v - params.eye_y) / (params.eye_size * openness)
        ) ** 2
        img -= 0.5 * np.exp(-0.5 * d2)

    # brows: thin dark bars above the eyes
    brow = np.exp(
        -0.5
        * (
            ((v - params.brow_y) / 0.015) ** 2
            + (np.abs(u) - params.eye_dx) ** 2 / 0.01
        )
    )
    img -= 0.25 * brow

    # nose: vertical bar from eye line downward
    nose = np.exp(-0.5 * (u / 0.02) ** 2) * (
        (v > params.eye_y) & (v < params.eye_y + params.nose_len)
    )
    img -= 0.2 * nose

    # mouth: Gaussian tube around a parabola, curvature = expression
    mouth_curve = params.mouth_y + 0.08 * smile * ((u / params.mouth_w) ** 2 - 0.5)
    in_mouth = np.abs(u) <= params.mouth_w
    mouth = np.exp(-0.5 * ((v - mouth_curve) / 0.02) ** 2) * in_mouth
    img -= 0.45 * mouth

    # illumination: additive directional gradient over the face region —
    # the dominant nuisance in PIE.  Additive lighting spans a shared
    # low-dimensional subspace (the cos/sin gradient fields), the
    # structure that makes regularized discriminants shine on real PIE
    # while unregularized LDA overfits it in the undersampled regime.
    angle = rng.uniform(0.0, 2.0 * np.pi)
    strength = rng.uniform(0.2, 1.0)
    gradient = strength * (np.cos(angle) * xs + np.sin(angle) * ys)
    img = img + gradient * face_mask

    # occasional cast shadow: one side of the face darkened
    if rng.random() < 0.15:
        shadow_angle = rng.uniform(0.0, 2.0 * np.pi)
        half = (np.cos(shadow_angle) * xs + np.sin(shadow_angle) * ys) > 0
        img = img - rng.uniform(0.05, 0.15) * (half & face_mask)

    img += 0.01 * rng.standard_normal((side, side))
    return np.clip(img, 0.0, 1.0)


def make_faces(
    n_subjects: int = PIE_SUBJECTS,
    images_per_subject: int = PIE_IMAGES_PER_SUBJECT,
    side: int = PIE_SIDE,
    seed: int = 0,
) -> Dataset:
    """Generate the PIE-like face dataset.

    Parameters
    ----------
    n_subjects, images_per_subject, side:
        Defaults reproduce Table II (68 × 170 images of 32×32); tests use
        smaller values.
    seed:
        Generator seed; the dataset is fully deterministic given it.
    """
    if side % 4 != 0:
        raise ValueError("side must be a multiple of 4 (texture upsampling)")
    rng = np.random.default_rng(seed)
    m = n_subjects * images_per_subject
    X = np.empty((m, side * side))
    y = np.repeat(np.arange(n_subjects), images_per_subject)
    row = 0
    for _ in range(n_subjects):
        subject = _SubjectParams(rng, side)
        for _ in range(images_per_subject):
            X[row] = _render_face(subject, rng, side).ravel()
            row += 1
    # contrast normalization: keeps pixels in [0, 1] but at the scale
    # where alpha = 1 sits inside the flat region of the Fig-5 curve,
    # matching the behaviour of the real (low-contrast, /256) PIE crops
    X *= 0.3
    return Dataset(
        name="pie",
        X=X,
        y=y,
        metadata={
            "paper_dataset": "CMU PIE (five near-frontal poses)",
            "n_subjects": n_subjects,
            "images_per_subject": images_per_subject,
            "side": side,
            "seed": seed,
            "split_protocol": "per_class_within",
            "train_sizes": [10, 20, 30, 40, 50, 60],
        },
    )
