"""The paper's split protocol.

Every accuracy number in Tables III–IX is "mean ± std over 20 random
splits", where a split selects either a fixed number of training samples
per class (PIE, Isolet, MNIST) or a fixed fraction per class
(20Newsgroups), with everything else used for testing.  These helpers
implement exactly that, seeded.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def per_class_split(
    y: np.ndarray,
    n_per_class: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``n_per_class`` training indices from every class.

    Returns ``(train_idx, test_idx)``; the test set is the complement.
    Raises if any class has fewer than ``n_per_class + 1`` samples (the
    protocol needs at least one test sample per class).
    """
    y = np.asarray(y)
    if n_per_class < 1:
        raise ValueError("n_per_class must be positive")
    train_parts = []
    test_parts = []
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        if members.shape[0] <= n_per_class:
            raise ValueError(
                f"class {label!r} has {members.shape[0]} samples; "
                f"cannot take {n_per_class} for training and leave a test set"
            )
        permuted = rng.permutation(members)
        train_parts.append(permuted[:n_per_class])
        test_parts.append(permuted[n_per_class:])
    train_idx = np.sort(np.concatenate(train_parts))
    test_idx = np.sort(np.concatenate(test_parts))
    return train_idx, test_idx


def ratio_split(
    y: np.ndarray,
    train_ratio: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stratified split taking ``train_ratio`` of each class for training.

    Used for the 20Newsgroups experiments (5%–50% per category).  At
    least one sample per class goes to each side.
    """
    y = np.asarray(y)
    if not 0.0 < train_ratio < 1.0:
        raise ValueError("train_ratio must be in (0, 1)")
    train_parts = []
    test_parts = []
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        count = members.shape[0]
        n_train = int(round(train_ratio * count))
        n_train = min(max(n_train, 1), count - 1)
        permuted = rng.permutation(members)
        train_parts.append(permuted[:n_train])
        test_parts.append(permuted[n_train:])
    train_idx = np.sort(np.concatenate(train_parts))
    test_idx = np.sort(np.concatenate(test_parts))
    return train_idx, test_idx


def per_class_split_from_pool(
    y: np.ndarray,
    train_pool: np.ndarray,
    test_pool: np.ndarray,
    n_per_class: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``n_per_class`` per class from a fixed train pool.

    Matches the Isolet/MNIST protocol: training samples come from the
    designated pool (isolet1&2 / MNIST set A) and the *entire* test pool
    is always the evaluation set.
    """
    y = np.asarray(y)
    train_pool = np.asarray(train_pool, dtype=np.int64)
    test_pool = np.asarray(test_pool, dtype=np.int64)
    pool_labels = y[train_pool]
    train_parts = []
    for label in np.unique(y):
        members = train_pool[pool_labels == label]
        if members.shape[0] < n_per_class:
            raise ValueError(
                f"class {label!r} has only {members.shape[0]} pool samples; "
                f"cannot take {n_per_class}"
            )
        train_parts.append(rng.permutation(members)[:n_per_class])
    train_idx = np.sort(np.concatenate(train_parts))
    return train_idx, test_pool


def split_seeds(base_seed: int, n_splits: int) -> np.ndarray:
    """Deterministic per-split seeds derived from one base seed."""
    root = np.random.SeedSequence(base_seed)
    return np.array([s.generate_state(1)[0] for s in root.spawn(n_splits)])
