"""Synthetic stand-ins for the paper's four evaluation datasets.

The originals (CMU PIE, Isolet, MNIST, 20Newsgroups) are not available
offline, so each generator produces data *matched in shape and statistics*
to Table II — same sample counts, dimensionality, class counts, and
dense/sparse structure — with genuine class structure plus nuisance
variation, so that (a) discriminant methods separate classes imperfectly,
(b) regularization matters in the small-sample regime, and (c) solver
cost scales exactly as it would on the real data.  See DESIGN.md for why
this substitution preserves what the evaluation measures.
"""

from repro.datasets.base import Dataset
from repro.datasets.cache import (
    CorruptCacheError,
    cached,
    load_dataset,
    save_dataset,
)
from repro.datasets.digits import make_digits
from repro.datasets.faces import make_faces
from repro.datasets.spoken_letters import make_spoken_letters
from repro.datasets.splits import (
    per_class_split,
    per_class_split_from_pool,
    ratio_split,
)
from repro.datasets.text import make_text
from repro.datasets.vectorizer import TfVectorizer, make_raw_documents

__all__ = [
    "CorruptCacheError",
    "Dataset",
    "TfVectorizer",
    "cached",
    "load_dataset",
    "make_digits",
    "make_faces",
    "make_raw_documents",
    "make_spoken_letters",
    "make_text",
    "per_class_split",
    "per_class_split_from_pool",
    "ratio_split",
    "save_dataset",
]
