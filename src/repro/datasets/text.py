"""Synthetic 20Newsgroups-like sparse text.

20Newsgroups "bydate" (Table II): 18,941 documents over 20 classes,
26,214 distinct stemmed terms, each document a term-frequency vector
normalized to unit length.  What the paper's Tables IX–X measure on it:

- only SRDA (with LSQR) exploits the sparsity; LDA/RLDA/IDR-QR must form
  dense ``m × n`` intermediates and fall off a memory cliff as the
  training fraction grows;
- with ~tens of non-zeros per document, SRDA's ``O(k·c·m·s)`` time is
  dramatically smaller than anything touching ``m × n``.

The generator is a mixture of multinomials over a Zipf-distributed
vocabulary: a shared background distribution (stop-word-like mass), one
boosted topic distribution per class, per-document mixing, and lognormal
document lengths.  Output is a :class:`CSRMatrix` of L2-normalized term
frequencies — never densified.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset
from repro.linalg.sparse import CSRMatrix

NEWS_DOCS = 18941
NEWS_VOCAB = 26214
NEWS_CLASSES = 20


def _zipf_weights(vocab_size: int, exponent: float = 1.05) -> np.ndarray:
    """Zipf-law word frequencies, normalized to a distribution."""
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def make_text(
    n_docs: int = NEWS_DOCS,
    vocab_size: int = NEWS_VOCAB,
    n_classes: int = NEWS_CLASSES,
    topic_words: int = 400,
    topic_boost: float = 60.0,
    mean_length: float = 110.0,
    seed: int = 0,
) -> Dataset:
    """Generate the 20NG-like sparse corpus.

    Parameters
    ----------
    topic_words:
        Size of each class's boosted vocabulary subset (drawn from the
        mid-frequency band so topics are informative but not trivial).
    topic_boost:
        Multiplier applied to topic words inside the class distribution.
    mean_length:
        Mean token count per document (lognormal lengths); distinct
        terms per document — the paper's ``s`` — lands below this.
    seed:
        Generator seed.
    """
    rng = np.random.default_rng(seed)
    background = _zipf_weights(vocab_size)

    # Topic vocabularies come from the middle of the frequency band:
    # frequent enough to appear, rare enough to discriminate.
    band_lo, band_hi = vocab_size // 50, vocab_size
    topic_vocab = np.vstack(
        [
            rng.choice(
                np.arange(band_lo, band_hi), size=topic_words, replace=False
            )
            for _ in range(n_classes)
        ]
    )
    topic_cumulative = []
    for k in range(n_classes):
        dist = background.copy()
        dist[topic_vocab[k]] *= topic_boost
        dist /= dist.sum()
        topic_cumulative.append(np.cumsum(dist))
    background_cumulative = np.cumsum(background)

    # Balanced classes, as in the bydate version ("evenly distributed").
    y = np.arange(n_docs) % n_classes
    rng.shuffle(y)

    lengths = np.maximum(
        5, rng.lognormal(np.log(mean_length), 0.5, size=n_docs).astype(np.int64)
    )
    # Per-document topical fraction: most tokens follow the topic mix,
    # a background remainder creates class overlap.
    topical_fraction = rng.beta(6.0, 3.0, size=n_docs)

    rows = []
    for i in range(n_docs):
        total = int(lengths[i])
        n_topic = int(round(topical_fraction[i] * total))
        n_background = total - n_topic
        draws = []
        if n_topic:
            u = rng.random(n_topic)
            draws.append(np.searchsorted(topic_cumulative[y[i]], u))
        if n_background:
            u = rng.random(n_background)
            draws.append(np.searchsorted(background_cumulative, u))
        tokens = np.concatenate(draws)
        terms, counts = np.unique(tokens, return_counts=True)
        rows.append((terms, counts.astype(np.float64)))

    X = CSRMatrix.from_rows(rows, vocab_size).normalize_rows()
    return Dataset(
        name="news",
        X=X,
        y=y,
        metadata={
            "paper_dataset": "20Newsgroups bydate (TF vectors, unit norm)",
            "vocab_size": vocab_size,
            "seed": seed,
            "split_protocol": "ratio",
            "train_ratios": [0.05, 0.10, 0.20, 0.30, 0.40, 0.50],
        },
    )
