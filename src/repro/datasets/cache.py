"""Dataset persistence — save/load generated datasets as ``.npz``.

The generators are fast, but benchmark sweeps and notebook sessions
re-use the same corpus many times; caching avoids regenerating (and
guarantees bit-identical data across processes).  Sparse matrices are
stored in CSR parts; metadata goes through JSON, with numpy arrays in
the metadata (index pools, speaker ids) stored as separate entries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.base import Dataset
from repro.linalg.sparse import CSRMatrix

_METADATA_ARRAY_PREFIX = "metadata_array_"


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> Path:
    """Serialize a :class:`Dataset` (dense or sparse) to ``path``."""
    payload = {"name": np.array(dataset.name), "y": dataset.y}
    if dataset.is_sparse:
        payload["format"] = np.array("csr")
        payload["data"] = dataset.X.data
        payload["indices"] = dataset.X.indices
        payload["indptr"] = dataset.X.indptr
        payload["shape"] = np.array(dataset.X.shape)
    else:
        payload["format"] = np.array("dense")
        payload["X"] = np.asarray(dataset.X)

    plain_metadata = {}
    for key, value in dataset.metadata.items():
        if isinstance(value, np.ndarray):
            payload[_METADATA_ARRAY_PREFIX + key] = value
        else:
            plain_metadata[key] = value
    payload["metadata_json"] = np.array(json.dumps(plain_metadata))

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(path, **payload)
    return path


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Load a dataset saved by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        fmt = str(archive["format"])
        if fmt == "csr":
            X = CSRMatrix(
                archive["data"],
                archive["indices"],
                archive["indptr"],
                tuple(archive["shape"]),
            )
        elif fmt == "dense":
            X = archive["X"]
        else:
            raise ValueError(f"unknown dataset format {fmt!r}")
        metadata = json.loads(str(archive["metadata_json"]))
        for key in archive.files:
            if key.startswith(_METADATA_ARRAY_PREFIX):
                metadata[key[len(_METADATA_ARRAY_PREFIX):]] = archive[key]
        return Dataset(
            name=str(archive["name"]),
            X=X,
            y=archive["y"],
            metadata=metadata,
        )


def cached(builder, path: Union[str, Path], **kwargs) -> Dataset:
    """Return the dataset at ``path``, generating and saving it if absent.

    ``builder`` is any ``make_*`` generator; ``kwargs`` are passed
    through on a cache miss.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if path.exists():
        return load_dataset(path)
    dataset = builder(**kwargs)
    save_dataset(dataset, path)
    return dataset
