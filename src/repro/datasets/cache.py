"""Dataset persistence — save/load generated datasets as ``.npz``.

The generators are fast, but benchmark sweeps and notebook sessions
re-use the same corpus many times; caching avoids regenerating (and
guarantees bit-identical data across processes).  Sparse matrices are
stored in CSR parts; metadata goes through JSON, with numpy arrays in
the metadata (index pools, speaker ids) stored as separate entries.

Integrity guarantees (one bad cache file must not kill a sweep):

- **Atomic writes** — :func:`save_dataset` writes to a temporary file in
  the same directory and renames it into place, so a crashed or killed
  process never leaves a half-written archive at the cache path.
- **Checksums** — every archive embeds a CRC32 over its payload;
  :func:`load_dataset` verifies it and raises :class:`CorruptCacheError`
  (naming the file) on mismatch, missing keys, or an unreadable archive,
  instead of a bare ``KeyError`` deep inside numpy.
- **Self-healing reads** — :func:`cached` regenerates and re-saves the
  dataset when the cache file is corrupt (``regenerate_on_corruption``,
  on by default).
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from pathlib import Path
from typing import Callable, Dict, Union

import numpy as np

from repro.exceptions import ReproError

from repro.datasets.base import Dataset
from repro.linalg.sparse import CSRMatrix

_METADATA_ARRAY_PREFIX = "metadata_array_"
_CHECKSUM_KEY = "checksum"
_REQUIRED_KEYS = ("format", "name", "y", "metadata_json")
_FORMAT_KEYS = {
    "csr": ("data", "indices", "indptr", "shape"),
    "dense": ("X",),
}


class CorruptCacheError(ReproError, ValueError):
    """A cache file is unreadable, incomplete, or fails its checksum.

    Subclasses ``ValueError`` so callers that treated load failures as
    value errors keep working; the message always names the file.
    """

    def __init__(self, path: Union[str, Path], reason: str) -> None:
        super().__init__(f"corrupt dataset cache {Path(path)}: {reason}")
        self.path = Path(path)
        self.reason = reason


def _payload_checksum(payload: Dict[str, np.ndarray]) -> str:
    """CRC32 over all entries in sorted key order (hex string)."""
    crc = 0
    for key in sorted(payload):
        if key == _CHECKSUM_KEY:
            continue
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(np.ascontiguousarray(payload[key]).tobytes(), crc)
    return f"{crc & 0xFFFFFFFF:08x}"


def _resolve_path(path: Union[str, Path]) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def save_dataset(dataset: Dataset, path: Union[str, Path]) -> Path:
    """Serialize a :class:`Dataset` (dense or sparse) to ``path``.

    The archive is written to a temporary sibling file and renamed into
    place, so readers never observe a partially written cache.
    """
    payload: Dict[str, np.ndarray] = {
        "name": np.array(dataset.name),
        "y": dataset.y,
    }
    X = dataset.X
    if isinstance(X, CSRMatrix):
        payload["format"] = np.array("csr")
        payload["data"] = X.data
        payload["indices"] = X.indices
        payload["indptr"] = X.indptr
        payload["shape"] = np.array(X.shape)
    else:
        payload["format"] = np.array("dense")
        payload["X"] = np.asarray(X)

    plain_metadata: Dict[str, object] = {}
    for key, value in dataset.metadata.items():
        if isinstance(value, np.ndarray):
            payload[_METADATA_ARRAY_PREFIX + key] = value
        else:
            plain_metadata[key] = value
    payload["metadata_json"] = np.array(json.dumps(plain_metadata))
    payload[_CHECKSUM_KEY] = np.array(_payload_checksum(payload))

    path = _resolve_path(path)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    try:
        # np.savez_compressed appends ".npz" to *names* but writes file
        # objects verbatim — open the temp file ourselves.
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **payload)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    return path


def load_dataset(path: Union[str, Path]) -> Dataset:
    """Load a dataset saved by :func:`save_dataset`.

    Raises
    ------
    CorruptCacheError
        When the archive is unreadable, misses required keys, declares
        an unknown format, or fails its embedded checksum.
    """
    path = Path(path)
    # Own the file handle (np.load can leak its descriptor when the
    # archive turns out to be corrupt); FileNotFoundError passes through
    # untouched — a missing cache is absence, not corruption.
    with open(path, "rb") as handle:
        try:
            with np.load(handle, allow_pickle=False) as archive:
                present = set(archive.files)
                missing = [k for k in _REQUIRED_KEYS if k not in present]
                if missing:
                    raise CorruptCacheError(
                        path, f"missing required keys {missing}"
                    )
                fmt = str(archive["format"])
                if fmt not in _FORMAT_KEYS:
                    raise CorruptCacheError(
                        path, f"unknown dataset format {fmt!r}"
                    )
                missing = [k for k in _FORMAT_KEYS[fmt] if k not in present]
                if missing:
                    raise CorruptCacheError(
                        path, f"missing {fmt} payload keys {missing}"
                    )
                entries = {key: archive[key] for key in archive.files}
        except CorruptCacheError:
            raise
        except (zipfile.BadZipFile, OSError, ValueError, KeyError) as exc:
            raise CorruptCacheError(
                path, f"unreadable archive ({exc})"
            ) from exc

    if _CHECKSUM_KEY in entries:
        stored = str(entries[_CHECKSUM_KEY])
        actual = _payload_checksum(
            {k: v for k, v in entries.items() if k != _CHECKSUM_KEY}
        )
        if stored != actual:
            raise CorruptCacheError(
                path,
                f"checksum mismatch (stored {stored}, computed {actual})",
            )
    # Archives from before checksums were introduced load without
    # verification rather than being rejected wholesale.

    X: Union[np.ndarray, CSRMatrix]
    if fmt == "csr":
        shape = entries["shape"]
        X = CSRMatrix(
            entries["data"],
            entries["indices"],
            entries["indptr"],
            (int(shape[0]), int(shape[1])),
        )
    else:
        X = entries["X"]
    try:
        metadata: Dict[str, object] = json.loads(
            str(entries["metadata_json"])
        )
    except json.JSONDecodeError as exc:
        raise CorruptCacheError(path, f"invalid metadata JSON ({exc})") from exc
    for key, value in entries.items():
        if key.startswith(_METADATA_ARRAY_PREFIX):
            metadata[key[len(_METADATA_ARRAY_PREFIX):]] = value
    return Dataset(
        name=str(entries["name"]),
        X=X,
        y=entries["y"],
        metadata=metadata,
    )


def _count(metric: str) -> None:
    """Bump a ``dataset_cache.*`` counter on the ambient tracer."""
    from repro.observability import current_tracer

    tracer = current_tracer()
    if tracer.enabled:
        tracer.metrics.counter(metric).add()


def cached(
    builder: Callable[..., Dataset],
    path: Union[str, Path],
    regenerate_on_corruption: bool = True,
    **kwargs: object,
) -> Dataset:
    """Return the dataset at ``path``, generating and saving it if absent.

    ``builder`` is any ``make_*`` generator; ``kwargs`` are passed
    through on a cache miss.  When the existing file is corrupt and
    ``regenerate_on_corruption`` is true (the default), it is deleted
    and rebuilt instead of failing the whole run.

    When the ambient tracer is enabled, hits, misses, and corrupt
    reads land on the ``dataset_cache.hits`` / ``.misses`` /
    ``.corrupt`` counters.
    """
    path = _resolve_path(path)
    if path.exists():
        try:
            dataset = load_dataset(path)
            _count("dataset_cache.hits")
            return dataset
        except CorruptCacheError:
            _count("dataset_cache.corrupt")
            if not regenerate_on_corruption:
                raise
            path.unlink(missing_ok=True)
    _count("dataset_cache.misses")
    dataset = builder(**kwargs)
    save_dataset(dataset, path)
    return dataset
