"""Dataset container shared by the generators and the experiment runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

import numpy as np

from repro.linalg.sparse import CSRMatrix


@dataclass
class Dataset:
    """A labeled dataset, dense or sparse.

    Attributes
    ----------
    name:
        Identifier used in tables ("pie", "isolet", "mnist", "news").
    X:
        ``(m, n)`` feature matrix — ndarray or :class:`CSRMatrix`.
    y:
        Length-``m`` integer class labels.
    metadata:
        Generator parameters and provenance notes.
    """

    name: str
    X: Union[np.ndarray, CSRMatrix]
    y: np.ndarray
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.y = np.asarray(self.y)
        if self.y.ndim != 1:
            raise ValueError("labels must be 1-D")
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"X has {self.X.shape[0]} rows but y has {self.y.shape[0]}"
            )

    @property
    def n_samples(self) -> int:
        """Number of samples ``m``."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Number of features ``n``."""
        return int(self.X.shape[1])

    @property
    def n_classes(self) -> int:
        """Number of distinct classes ``c``."""
        return int(np.unique(self.y).shape[0])

    @property
    def is_sparse(self) -> bool:
        """True when the features are stored as CSR."""
        return isinstance(self.X, CSRMatrix)

    def subset(self, indices: np.ndarray) -> Tuple[object, np.ndarray]:
        """Select rows of ``(X, y)`` by index — the split primitive."""
        indices = np.asarray(indices, dtype=np.int64)
        if self.is_sparse:
            return self.X.take_rows(indices), self.y[indices]
        return self.X[indices], self.y[indices]

    def statistics(self) -> Dict[str, object]:
        """The Table-II row for this dataset: size, dim, #classes (+nnz)."""
        stats: Dict[str, object] = {
            "name": self.name,
            "size_m": self.n_samples,
            "dim_n": self.n_features,
            "classes_c": self.n_classes,
        }
        if self.is_sparse:
            stats["avg_nnz_per_sample_s"] = round(self.X.mean_nnz_per_row(), 1)
        return stats
