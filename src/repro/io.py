"""Model persistence — save fitted estimators to ``.npz`` archives.

Every linear estimator in this package is, once fitted, a handful of
arrays (components, intercept, classes, centroids) plus its constructor
parameters.  Saving those to a plain numpy archive keeps the format
inspectable, dependency-free, and stable — no pickle, so archives from
untrusted sources cannot execute code on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.baselines.idrqr import IDRQR
from repro.baselines.lda import LDA
from repro.baselines.rlda import RLDA
from repro.core.sparse_srda import SparseSRDA
from repro.core.srda import SRDA

#: type tag -> (class, constructor parameter names).  SRDA's solver
#: knobs are stored *flat* (``solver``/``sketch``/...) even though the
#: constructor now groups them in a ``SolverConfig``: the flat spelling
#: keeps old archives loadable and the format free of nested JSON.
#: ``load_model`` folds them back into a config.
_SRDA_CONFIG_FIELDS = (
    "solver",
    "sketch",
    "sketch_size",
    "sketch_seed",
    "kernel_backend",
)

_REGISTRY = {
    "SRDA": (
        SRDA,
        ("alpha", "centering", "max_iter", "tol") + _SRDA_CONFIG_FIELDS,
    ),
    "SparseSRDA": (SparseSRDA, ("alpha", "l1_ratio", "max_iter", "tol")),
    "LDA": (LDA, ("n_components", "svd_tol")),
    "RLDA": (RLDA, ("alpha", "n_components", "svd_tol")),
    "IDRQR": (IDRQR, ("alpha", "n_components")),
}

#: fitted-state arrays common to every LinearEmbedder
_ARRAYS = ("components_", "intercept_", "classes_", "centroids_")


def save_model(model, path: Union[str, Path]) -> Path:
    """Serialize a fitted estimator to ``path`` (``.npz`` appended).

    Raises if the model type is not registered or the model is unfitted.
    """
    type_name = type(model).__name__
    if type_name not in _REGISTRY:
        raise TypeError(
            f"cannot serialize {type_name}; supported: "
            f"{sorted(_REGISTRY)}"
        )
    if getattr(model, "components_", None) is None:
        raise ValueError("cannot save an unfitted model")
    _, param_names = _REGISTRY[type_name]
    params = {name: getattr(model, name) for name in param_names}

    payload = {
        "model_type": np.array(type_name),
        "params_json": np.array(json.dumps(params)),
    }
    for name in _ARRAYS:
        value = getattr(model, name, None)
        if value is not None:
            payload[name] = np.asarray(value)

    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez(path, **payload)
    return path


def load_model(path: Union[str, Path]):
    """Load an estimator saved by :func:`save_model`.

    Reconstructs the estimator with its constructor parameters and
    restores the fitted arrays; ``transform``/``predict`` work
    immediately.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        type_name = str(archive["model_type"])
        if type_name not in _REGISTRY:
            raise ValueError(f"unknown model type {type_name!r} in archive")
        cls, _ = _REGISTRY[type_name]
        params = json.loads(str(archive["params_json"]))
        if cls is SRDA:
            # Fold the flat solver knobs back into a SolverConfig (the
            # file format predates the grouping and stays flat).
            from repro.core.solver_config import SolverConfig

            fields = {
                name: params.pop(name)
                for name in _SRDA_CONFIG_FIELDS
                if name in params
            }
            params["config"] = SolverConfig(**fields)
        else:
            # Archives written before constructor-arg renames store the
            # old spelling; migrate silently (the file format is not
            # user code).
            for old, new in getattr(cls, "_deprecated_params", {}).items():
                if old in params and new not in params:
                    params[new] = params.pop(old)
        model = cls(**params)
        for name in _ARRAYS:
            if name in archive:
                setattr(model, name, archive[name])
    return model
