"""The package-wide exception taxonomy.

PR 1's guarded-solver layer made a promise the fallback chains depend
on: every failure raised from the numerical substrate is one of *our*
types, so ``except`` clauses in the robustness layer can be precise
instead of over-broad.  This module is the root of that taxonomy.

Every repro-specific exception derives from :class:`ReproError`.  The
concrete classes keep their historical builtin bases too (``RuntimeError``
for solver failures, ``ValueError`` for data problems), so existing
callers that catch the builtin types keep working — the taxonomy is
additive, never breaking.

The static analyzer enforces the other direction: rule ``RPR003``
forbids raising bare ``RuntimeError``/``Exception`` from the numerical
packages (``linalg``, ``core``, ``robustness``), which is what keeps the
taxonomy exhaustive as the code grows.

Concrete members defined elsewhere (and re-based onto
:class:`ReproError`):

- :class:`repro.linalg.cholesky.NotPositiveDefiniteError`
- :class:`repro.linalg.operators.InjectedFaultError`
- :class:`repro.robustness.guarded.SolverFailure`
- :class:`repro.core.base.NotFittedError`
- :class:`repro.datasets.cache.CorruptCacheError`
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this package on purpose."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exhausted its budget without converging.

    Raised where silently returning a half-iterated answer would poison
    downstream results (e.g. the Lanczos eigensolver).  LSQR does *not*
    raise this — its istop codes report convergence state per column and
    callers decide; see :data:`repro.linalg.lsqr.FAILURE_ISTOPS`.
    """


class InvariantViolationError(ReproError, RuntimeError):
    """An internal mathematical invariant failed to hold.

    This is "should be impossible" territory — e.g. the all-ones vector
    falling out of the response basis, or the indicator span
    degenerating with non-empty classes.  It indicates a bug (or
    memory corruption), never bad user input.
    """


class TransportError(ReproError, ConnectionError):
    """A distributed-transport operation failed.

    Root of the transport sub-taxonomy used by :mod:`repro.distributed`.
    Keeps ``ConnectionError`` as a builtin base so callers that treat
    network trouble generically (including the CLI's ``OSError``
    handler) see these without knowing the repro taxonomy.
    """


class ProtocolError(TransportError):
    """A wire frame violated the protocol contract.

    Raised on bad magic bytes, an unsupported protocol version, an
    oversized length prefix, or a CRC mismatch between the frame header
    and its payload.  A protocol error poisons the whole byte stream
    (framing can no longer be trusted), so the supervisor treats the
    connection — not just the message — as failed.
    """


class WorkerCrashError(TransportError):
    """A worker process died while it held in-flight work.

    Raised by the process backend when its pool breaks mid-map (after
    eagerly unlinking every shared-memory segment), and used internally
    by the distributed supervisor to classify a dead worker before
    reassignment.
    """


class ClusterUnhealthyError(TransportError):
    """The distributed cluster can no longer serve products.

    Raised when every worker is dead, or the bounded
    retry/reassignment budget is exhausted.  The sharded-operator layer
    catches this to degrade gracefully to a local backend (recorded in
    ``fit_report_``); ``on_unhealthy="raise"`` propagates it instead.
    """


class ContractViolationError(ReproError):
    """An operator failed a runtime numeric contract.

    Raised by :func:`repro.analysis.contracts.verify_operator` when an
    operator breaks the adjoint identity ``⟨Ax, u⟩ = ⟨x, Aᵀu⟩``, returns
    products of the wrong shape or dtype, or disagrees between its
    blocked and per-column products.

    Attributes
    ----------
    failures:
        Human-readable description of each failed check.
    """

    def __init__(self, message: str, failures: "list[str] | None" = None):
        super().__init__(message)
        self.failures = list(failures or [])
