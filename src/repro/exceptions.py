"""The package-wide exception taxonomy.

PR 1's guarded-solver layer made a promise the fallback chains depend
on: every failure raised from the numerical substrate is one of *our*
types, so ``except`` clauses in the robustness layer can be precise
instead of over-broad.  This module is the root of that taxonomy.

Every repro-specific exception derives from :class:`ReproError`.  The
concrete classes keep their historical builtin bases too (``RuntimeError``
for solver failures, ``ValueError`` for data problems), so existing
callers that catch the builtin types keep working — the taxonomy is
additive, never breaking.

The static analyzer enforces the other direction: rule ``RPR003``
forbids raising bare ``RuntimeError``/``Exception`` from the numerical
packages (``linalg``, ``core``, ``robustness``), which is what keeps the
taxonomy exhaustive as the code grows.

Concrete members defined elsewhere (and re-based onto
:class:`ReproError`):

- :class:`repro.linalg.cholesky.NotPositiveDefiniteError`
- :class:`repro.linalg.operators.InjectedFaultError`
- :class:`repro.robustness.guarded.SolverFailure`
- :class:`repro.core.base.NotFittedError`
- :class:`repro.datasets.cache.CorruptCacheError`
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this package on purpose."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exhausted its budget without converging.

    Raised where silently returning a half-iterated answer would poison
    downstream results (e.g. the Lanczos eigensolver).  LSQR does *not*
    raise this — its istop codes report convergence state per column and
    callers decide; see :data:`repro.linalg.lsqr.FAILURE_ISTOPS`.
    """


class InvariantViolationError(ReproError, RuntimeError):
    """An internal mathematical invariant failed to hold.

    This is "should be impossible" territory — e.g. the all-ones vector
    falling out of the response basis, or the indicator span
    degenerating with non-empty classes.  It indicates a bug (or
    memory corruption), never bad user input.
    """


class ContractViolationError(ReproError):
    """An operator failed a runtime numeric contract.

    Raised by :func:`repro.analysis.contracts.verify_operator` when an
    operator breaks the adjoint identity ``⟨Ax, u⟩ = ⟨x, Aᵀu⟩``, returns
    products of the wrong shape or dtype, or disagrees between its
    blocked and per-column products.

    Attributes
    ----------
    failures:
        Human-readable description of each failed check.
    """

    def __init__(self, message: str, failures: "list[str] | None" = None):
        super().__init__(message)
        self.failures = list(failures or [])
