"""Fault-tolerant distributed execution for the sharded solver layer.

The paper's linear-time argument rests on SRDA touching the data only
through operator products; PR 5's sharded layer exploited that on one
host, and this package takes the same contract across process
boundaries over localhost TCP: shards are pinned to supervised worker
subprocesses once, each iteration ships only the small operand/result
vectors, and a chaos-tested recovery ladder (retry → reassign →
degrade) keeps results **bitwise identical** to the serial backend
through worker death, slow workers, and corrupt frames.

Modules
-------
``framing``
    Length-prefixed, CRC-validated wire protocol and ``Transport``.
``worker``
    The worker subprocess (``python -m repro.distributed.worker``).
``supervisor``
    Heartbeats, deadlines, worker-death detection, shard reassignment.
``backend``
    :class:`DistributedBackend` — the ``Backend``-protocol surface.
``chaos``
    Seeded fault injection: :class:`ChaosPlan`,
    :class:`ChaosTransport`, :class:`ChaosBackend`.
"""

from repro.distributed.backend import DistributedBackend
from repro.distributed.chaos import ChaosBackend, ChaosPlan, ChaosTransport
from repro.distributed.framing import Transport
from repro.distributed.supervisor import Supervisor

__all__ = [
    "ChaosBackend",
    "ChaosPlan",
    "ChaosTransport",
    "DistributedBackend",
    "Supervisor",
    "Transport",
]
