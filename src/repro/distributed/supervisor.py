"""The supervisor: worker lifecycle, heartbeats, retry, reassignment.

This is the fault-tolerance half of :mod:`repro.distributed`.  The
coordinator side owns a listening socket on ``127.0.0.1``, spawns
worker subprocesses that dial back in, and mediates *all* traffic:

- **Heartbeats.**  A daemon thread PINGs each idle worker on a fixed
  interval (skipping workers whose connection is currently busy with a
  task — traffic is liveness).  A failed or mismatched PONG marks the
  worker dead.  Detection is advisory: the task path discovers death
  on its own through send/recv failures, so a slow heartbeat never
  blocks recovery.
- **Death handling.**  ``mark_dead`` closes the transport and kills
  the subprocess (killing is what makes it safe to *retry* the
  worker's tasks elsewhere: a half-dead worker can no longer deliver a
  stale RESULT into a fresh round).  Workers are never respawned —
  their shards are **reassigned** to survivors, which already hold the
  payloads in the coordinator's retained copy.
- **Retry with backoff.**  :meth:`Supervisor.run_tasks` runs rounds:
  send every unfinished task to its shard's current owner, collect
  replies, mark failures dead, reassign orphaned shards, back off
  exponentially, repeat — up to ``max_retries`` rounds past the first.
  Because every task is a pure function of (shard payload, operand),
  re-running only the failed subset on a different worker yields
  byte-identical results; the bitwise contract survives every
  recovery path.
- **Deadlines.**  Each round stamps tasks with an absolute monotonic
  deadline; workers refuse tasks whose budget is spent, and the
  coordinator's recv timeouts are derived from the same deadline, so a
  wedged worker costs one round, not forever.

When no worker survives, or the retry budget is exhausted,
:class:`~repro.exceptions.ClusterUnhealthyError` is raised; the
sharded layer catches it to degrade to a local backend.
"""

from __future__ import annotations

import itertools
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.distributed.framing import (
    MSG_ACK,
    MSG_CALL,
    MSG_ERROR,
    MSG_HELLO,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHARD,
    MSG_SHUTDOWN,
    MSG_TASK,
    Transport,
)
from repro.distributed.worker import payload_checksum
from repro.exceptions import (
    ClusterUnhealthyError,
    ProtocolError,
    TransportError,
    WorkerCrashError,
)
from repro.observability import current_tracer

__all__ = ["Supervisor", "WorkerHandle"]


def _worker_environment() -> Dict[str, str]:
    """Subprocess env with this package importable, whatever the cwd."""
    import os

    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return env


class WorkerHandle:
    """Coordinator-side state for one worker subprocess.

    The ``lock`` serializes all traffic on the worker's connection —
    the heartbeat thread and the task path never interleave frames on
    one socket.  ``shard_keys`` tracks which shards this worker
    currently owns (the reassignment unit).
    """

    def __init__(self, worker_id: int, proc: subprocess.Popen) -> None:
        self.worker_id = worker_id
        self.proc = proc
        self.transport: Optional[Transport] = None
        self.alive = False
        self.lock = threading.Lock()
        self.shard_keys: List[str] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"WorkerHandle(id={self.worker_id}, {state})"


class Supervisor:
    """Spawns, monitors, and recovers a pool of localhost workers.

    Parameters
    ----------
    n_workers:
        Subprocesses to spawn (each a ``repro.distributed.worker``).
    heartbeat_interval:
        Seconds between liveness probes; ``0`` disables the heartbeat
        thread (the task path still detects death on its own).
    task_timeout:
        Per-round deadline budget in seconds for one batch of tasks.
    max_retries:
        Extra rounds allowed after the first before the cluster is
        declared unhealthy.
    backoff_base:
        First retry sleeps this long; each later round doubles it.
    transport_factory:
        Wraps each accepted worker socket — the chaos-injection seam
        (:class:`~repro.distributed.chaos.ChaosTransport`).
    connect_timeout:
        Budget for the whole spawn-and-handshake phase.
    """

    def __init__(
        self,
        n_workers: int,
        heartbeat_interval: float = 2.0,
        task_timeout: float = 30.0,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        transport_factory: Callable[[socket.socket], Transport] = Transport,
        connect_timeout: float = 30.0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.heartbeat_interval = float(heartbeat_interval)
        self.task_timeout = float(task_timeout)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self._transport_factory = transport_factory
        self._connect_timeout = float(connect_timeout)

        self.workers: List[WorkerHandle] = []
        #: Retained shard payloads (key -> SHARD message body) so
        #: orphaned shards can be re-shipped to survivors.
        self._payloads: Dict[str, Dict[str, Any]] = {}
        #: key -> current owning WorkerHandle.
        self._owners: Dict[str, WorkerHandle] = {}
        self._task_ids = itertools.count(1)
        self._state_lock = threading.Lock()
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._closed = False

        # Observable recovery counters (surfaced via Backend.stats()).
        self.worker_deaths = 0
        self.reassignments = 0
        self.retries = 0
        self.heartbeats = 0

        self._start()

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    def _start(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(self.n_workers)
        port = listener.getsockname()[1]
        try:
            env = _worker_environment()
            for worker_id in range(self.n_workers):
                proc = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.distributed.worker",
                        "--host",
                        "127.0.0.1",
                        "--port",
                        str(port),
                        "--worker-id",
                        str(worker_id),
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
                self.workers.append(WorkerHandle(worker_id, proc))
            deadline = time.monotonic() + self._connect_timeout
            pending = self.n_workers
            while pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"{pending} of {self.n_workers} workers failed to "
                        f"connect within {self._connect_timeout}s"
                    )
                listener.settimeout(remaining)
                try:
                    sock, _ = listener.accept()
                except socket.timeout as exc:
                    raise TransportError(
                        f"{pending} of {self.n_workers} workers failed to "
                        f"connect within {self._connect_timeout}s"
                    ) from exc
                transport = self._transport_factory(sock)
                mtype, hello = transport.recv(timeout=remaining)
                if mtype != MSG_HELLO:
                    raise ProtocolError(
                        f"expected HELLO from connecting worker, got {mtype}"
                    )
                handle = self.workers[hello["worker_id"]]
                handle.transport = transport
                handle.alive = True
                pending -= 1
        # Justification: bootstrap must tear down spawned worker
        # processes on ANY unwind (including KeyboardInterrupt) before
        # re-raising, or they outlive the coordinator.
        except BaseException:  # repro: noqa-RPR002
            self.close()
            raise
        finally:
            listener.close()
        if self.heartbeat_interval > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-distributed-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        nonces = itertools.count(1)
        while not self._stop.wait(self.heartbeat_interval):
            for handle in self.workers:
                if self._stop.is_set():
                    return
                if not handle.alive:
                    continue
                # Never contend with an in-flight task round: traffic
                # on a busy connection already proves liveness.
                if not handle.lock.acquire(blocking=False):
                    continue
                try:
                    if not handle.alive or handle.transport is None:
                        continue
                    nonce = next(nonces)
                    try:
                        handle.transport.send(MSG_PING, {"nonce": nonce})
                        mtype, pong = handle.transport.recv(
                            timeout=max(self.heartbeat_interval, 1.0)
                        )
                    except (TransportError, ProtocolError) as exc:
                        self._mark_dead(handle, f"heartbeat failed: {exc}")
                        continue
                    if mtype != MSG_PONG or pong.get("nonce") != nonce:
                        self._mark_dead(
                            handle,
                            f"heartbeat got message type {mtype} "
                            f"(nonce {pong.get('nonce')!r} != {nonce})",
                        )
                        continue
                    self.heartbeats += 1
                finally:
                    handle.lock.release()
            tracer = current_tracer()
            if tracer.enabled:
                tracer.metrics.counter("distributed.heartbeats").add(
                    float(self.heartbeats)
                )

    def _mark_dead(self, handle: WorkerHandle, reason: str) -> None:
        """Declare a worker dead: close its pipe, kill its process.

        Caller must hold ``handle.lock``.  Killing (not just closing)
        is what guarantees a retried task can never race a stale
        RESULT from the original owner.
        """
        if not handle.alive:
            return
        handle.alive = False
        self.worker_deaths += 1
        if handle.transport is not None:
            handle.transport.close()
        if handle.proc.poll() is None:
            handle.proc.kill()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.metrics.counter("distributed.worker_deaths").add(1.0)
            tracer.event(
                "distributed.worker_death",
                worker_id=handle.worker_id,
                reason=reason[:200],
            )

    def kill_worker(self, worker_id: int) -> None:
        """Forcibly kill one worker (the chaos hook and test seam)."""
        handle = self.workers[worker_id]
        with handle.lock:
            self._mark_dead(handle, "killed by chaos injection")

    @property
    def survivors(self) -> List[WorkerHandle]:
        return [handle for handle in self.workers if handle.alive]

    @property
    def healthy(self) -> bool:
        return not self._closed and bool(self.survivors)

    # ------------------------------------------------------------------
    # Shard shipment and reassignment
    # ------------------------------------------------------------------
    def ship_shard(self, key: str, kind: str, shape: Tuple[int, ...],
                   arrays: Dict[str, Any]) -> None:
        """Ship one shard to a worker (round-robin), retaining a copy.

        The retained payload is the coordinator's own reference to the
        shard arrays (no copy — numpy pickling happens per shipment),
        kept so the shard can follow its owner's death to a survivor.
        """
        payload = {
            "key": key,
            "kind": kind,
            "shape": tuple(shape),
            "arrays": arrays,
        }
        with self._state_lock:
            self._payloads[key] = payload
        while True:
            with self._state_lock:
                survivors = self.survivors
                if not survivors:
                    raise ClusterUnhealthyError(
                        "no live workers to ship shards to"
                    )
                owner = min(survivors, key=lambda h: len(h.shard_keys))
            try:
                self._ship_to(owner, payload)
            except WorkerCrashError:
                continue  # that worker died mid-shipment; try the next
            return

    def _ship_to(self, handle: WorkerHandle, payload: Dict[str, Any]) -> None:
        """Send one SHARD to one worker and verify the checksum ACK."""
        key = payload["key"]
        with handle.lock:
            if not handle.alive or handle.transport is None:
                raise WorkerCrashError(
                    f"worker {handle.worker_id} died before shard {key!r} "
                    "could be shipped"
                )
            try:
                handle.transport.send(MSG_SHARD, payload)
                mtype, ack = handle.transport.recv(timeout=self.task_timeout)
            except (TransportError, ProtocolError) as exc:
                self._mark_dead(handle, f"shard shipment failed: {exc}")
                raise WorkerCrashError(
                    f"worker {handle.worker_id} died during shard "
                    f"shipment: {exc}"
                ) from exc
            if mtype != MSG_ACK or ack.get("key") != key:
                self._mark_dead(handle, f"bad shard ACK (type {mtype})")
                raise WorkerCrashError(
                    f"worker {handle.worker_id} replied to SHARD with "
                    f"message type {mtype}"
                )
            expected = payload_checksum(payload["arrays"])
            if ack.get("checksum") != expected:
                self._mark_dead(
                    handle,
                    f"shard {key!r} checksum mismatch "
                    f"({ack.get('checksum')!r} != {expected})",
                )
                raise WorkerCrashError(
                    f"shard {key!r} arrived corrupted at worker "
                    f"{handle.worker_id} (checksum mismatch)"
                )
        with self._state_lock:
            self._owners[key] = handle
            if key not in handle.shard_keys:
                handle.shard_keys.append(key)

    def _reassign_orphans(self) -> None:
        """Move every dead worker's shards onto surviving workers."""
        with self._state_lock:
            orphaned = [
                key
                for key, owner in self._owners.items()
                if not owner.alive
            ]
        for key in orphaned:
            payload = self._payloads[key]
            while True:
                with self._state_lock:
                    survivors = self.survivors
                    if not survivors:
                        raise ClusterUnhealthyError(
                            f"no live workers left to adopt shard {key!r}"
                        )
                    dead_owner = self._owners[key]
                    if key in dead_owner.shard_keys:
                        dead_owner.shard_keys.remove(key)
                    target = min(survivors, key=lambda h: len(h.shard_keys))
                try:
                    self._ship_to(target, payload)
                except WorkerCrashError:
                    continue  # adopter died too; pick the next survivor
                break
            self.reassignments += 1
            tracer = current_tracer()
            if tracer.enabled:
                tracer.metrics.counter("distributed.reassignments").add(1.0)
                tracer.event(
                    "distributed.shard_reassigned",
                    key=key,
                    to_worker=self._owners[key].worker_id,
                )

    # ------------------------------------------------------------------
    # Task rounds
    # ------------------------------------------------------------------
    def run_tasks(self, tasks: Sequence[Dict[str, Any]]) -> List[Any]:
        """Run shard-kernel tasks; returns results in task order.

        Each task dict needs ``key`` (shard), ``kernel``, ``operand``.
        Retries failed subsets on reassigned shards with exponential
        backoff until everything completes or the budget is exhausted.
        """
        results: List[Any] = [None] * len(tasks)
        pending = {i: dict(task) for i, task in enumerate(tasks)}
        for index, task in pending.items():
            task["task_id"] = next(self._task_ids)
        attempt = 0
        while pending:
            if attempt > self.max_retries:
                raise ClusterUnhealthyError(
                    f"{len(pending)} tasks still failing after "
                    f"{self.max_retries} retries"
                )
            if attempt > 0:
                self.retries += 1
                tracer = current_tracer()
                if tracer.enabled:
                    tracer.metrics.counter("distributed.retries").add(1.0)
                time.sleep(self.backoff_base * (2.0 ** (attempt - 1)))
                self._reassign_orphans()
            completed = self._run_round(pending, results)
            for index in completed:
                del pending[index]
            attempt += 1
        return results

    def _run_round(
        self, pending: Dict[int, Dict[str, Any]], results: List[Any]
    ) -> List[int]:
        """One send-all/collect-all round; returns completed indices."""
        deadline = time.monotonic() + self.task_timeout
        # Group tasks by current shard owner.
        by_worker: Dict[int, List[Tuple[int, Dict[str, Any]]]] = {}
        with self._state_lock:
            for index, task in pending.items():
                owner = self._owners.get(task["key"])
                if owner is None or not owner.alive:
                    continue  # orphaned; next round reassigns first
                by_worker.setdefault(owner.worker_id, []).append((index, task))
        completed: List[int] = []
        tracer = current_tracer()
        histogram = (
            tracer.metrics.histogram("distributed.task_seconds")
            if tracer.enabled
            else None
        )
        for worker_id, batch in by_worker.items():
            handle = self.workers[worker_id]
            with handle.lock:
                if not handle.alive or handle.transport is None:
                    continue
                transport = handle.transport
                try:
                    for _, task in batch:
                        transport.send(
                            MSG_TASK,
                            {
                                "task_id": task["task_id"],
                                "key": task["key"],
                                "kernel": task["kernel"],
                                "operand": task["operand"],
                                "deadline": deadline,
                            },
                        )
                    expected = {task["task_id"]: index
                                for index, task in batch}
                    while expected:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TransportError(
                                f"worker {worker_id} missed the "
                                f"{self.task_timeout}s round deadline"
                            )
                        mtype, message = transport.recv(timeout=remaining)
                        if mtype == MSG_PONG:
                            continue  # stale heartbeat reply; harmless
                        task_id = message.get("task_id")
                        index = expected.get(task_id)
                        if mtype == MSG_RESULT and index is not None:
                            results[index] = message["array"]
                            completed.append(index)
                            del expected[task_id]
                            if histogram is not None:
                                histogram.observe(message.get("seconds", 0.0))
                        elif mtype == MSG_ERROR and index is not None:
                            del expected[task_id]
                            if message.get("kind") == "task_exception":
                                raise message["exception"]
                            # deadline / missing_shard: retryable
                            # in-band refusal, worker stays alive.
                        else:
                            raise ProtocolError(
                                f"unexpected reply type {mtype} "
                                f"(task_id {task_id!r})"
                            )
                except (TransportError, ProtocolError) as exc:
                    self._mark_dead(handle, f"task round failed: {exc}")
        return completed

    # ------------------------------------------------------------------
    # Generic calls (Backend.map surface)
    # ------------------------------------------------------------------
    def run_calls(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Any]:
        """Map a module-level callable over items on the cluster.

        Items are dealt round-robin over survivors; failed subsets are
        retried on the remaining workers.  The first in-band task
        exception (in submission order) propagates, matching local
        backend semantics.
        """
        results: List[Any] = [None] * len(items)
        pending: Dict[int, Any] = dict(enumerate(items))
        attempt = 0
        while pending:
            if attempt > self.max_retries:
                raise ClusterUnhealthyError(
                    f"{len(pending)} mapped tasks still failing after "
                    f"{self.max_retries} retries"
                )
            if attempt > 0:
                self.retries += 1
                time.sleep(self.backoff_base * (2.0 ** (attempt - 1)))
            survivors = self.survivors
            if not survivors:
                raise ClusterUnhealthyError(
                    "no live workers for mapped tasks"
                )
            task_error: List[Tuple[int, BaseException]] = []
            indices = sorted(pending)
            batches: Dict[int, List[int]] = {}
            for position, index in enumerate(indices):
                handle = survivors[position % len(survivors)]
                batches.setdefault(handle.worker_id, []).append(index)
            deadline = time.monotonic() + self.task_timeout
            t0 = time.perf_counter()
            for worker_id, batch in batches.items():
                handle = self.workers[worker_id]
                with handle.lock:
                    if not handle.alive or handle.transport is None:
                        continue
                    transport = handle.transport
                    ids = {}
                    try:
                        for index in batch:
                            task_id = next(self._task_ids)
                            ids[task_id] = index
                            transport.send(
                                MSG_CALL,
                                {
                                    "task_id": task_id,
                                    "fn": fn,
                                    "item": pending[index],
                                },
                            )
                        while ids:
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                raise TransportError(
                                    f"worker {worker_id} missed the call "
                                    "deadline"
                                )
                            mtype, message = transport.recv(timeout=remaining)
                            if mtype == MSG_PONG:
                                continue
                            task_id = message.get("task_id")
                            index = ids.pop(task_id, None)
                            if index is None:
                                raise ProtocolError(
                                    f"unexpected reply (type {mtype}, "
                                    f"task_id {task_id!r})"
                                )
                            if mtype == MSG_RESULT:
                                results[index] = message["result"]
                                del pending[index]
                            elif mtype == MSG_ERROR:
                                if message.get("kind") == "task_exception":
                                    # Record; raise the submission-order
                                    # first once the round drains.
                                    task_error.append(
                                        (index, message["exception"])
                                    )
                                    del pending[index]
                                # other kinds stay pending for retry
                            else:
                                raise ProtocolError(
                                    f"unexpected reply type {mtype}"
                                )
                    except (TransportError, ProtocolError) as exc:
                        self._mark_dead(handle, f"call round failed: {exc}")
            tracer = current_tracer()
            if tracer.enabled:
                tracer.metrics.histogram("distributed.rpc_seconds").observe(
                    time.perf_counter() - t0
                )
            if task_error:
                task_error.sort(key=lambda pair: pair[0])
                raise task_error[0][1]
            attempt += 1
        return results

    # ------------------------------------------------------------------
    # Accounting and lifecycle
    # ------------------------------------------------------------------
    def traffic(self) -> Tuple[int, int]:
        """Total (bytes_sent, bytes_received) across all connections."""
        sent = 0
        received = 0
        for handle in self.workers:
            if handle.transport is not None:
                sent += handle.transport.bytes_sent
                received += handle.transport.bytes_received
        return sent, received

    def close(self) -> None:
        """Stop heartbeats, shut workers down, reap subprocesses."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5.0)
        for handle in self.workers:
            with handle.lock:
                if handle.alive and handle.transport is not None:
                    try:
                        handle.transport.send(MSG_SHUTDOWN, {})
                    except (TransportError, ProtocolError):
                        pass
                    handle.transport.close()
                handle.alive = False
            if handle.proc.poll() is None:
                handle.proc.terminate()
        for handle in self.workers:
            try:
                handle.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                handle.proc.kill()
                handle.proc.wait(timeout=5.0)
