"""The distributed worker process: ``python -m repro.distributed.worker``.

A worker is deliberately dumb.  It connects back to the coordinator's
listening socket, introduces itself with HELLO, and then serves a
strictly sequential request/reply loop until it is told to shut down
(or its connection dies, at which point it exits — a worker without a
coordinator has nothing to live for).  All cleverness — heartbeating,
retry, reassignment, degradation — lives in the supervisor; keeping
the worker a pure function of its request stream is what makes worker
death a *recoverable* event instead of a consistency hazard.

Request handling:

- ``PING`` → ``PONG`` (liveness only; carries the coordinator's nonce
  back so a stale reply can never satisfy a fresh probe).
- ``SHARD`` → store the shard payload under its key, reply ``ACK``
  with the arrays' checksum so the coordinator can verify the shard
  survived the trip.  Shards arrive once (or again, after a
  reassignment) and live for the worker's whole life.
- ``TASK`` → run one shard kernel via
  :func:`repro.parallel.sharded.shard_kernel_result` — the *same*
  arithmetic body the in-process backends execute, which is the whole
  bitwise-determinism argument — and reply ``RESULT``.  A task whose
  propagated deadline budget is already spent is refused with an
  in-band ``ERROR`` (kind ``"deadline"``) instead of computing an
  answer nobody is waiting for.
- ``CALL`` → run a module-level function against one item (the generic
  ``Backend.map`` surface); exceptions travel back in-band as
  ``ERROR`` (kind ``"task_exception"``) with the pickled exception, so
  an :class:`~repro.linalg.operators.InjectedFaultError` in a mapped
  task surfaces to the caller exactly as it would serially.
- ``SHUTDOWN`` → exit 0.

Any protocol violation on the inbound stream makes the worker exit
nonzero immediately: once framing is untrustworthy the only safe
answer is a fresh process.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import time
import zlib
from typing import Any, Dict

from repro.distributed.framing import (
    MSG_ACK,
    MSG_CALL,
    MSG_ERROR,
    MSG_HELLO,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHARD,
    MSG_SHUTDOWN,
    MSG_TASK,
    Transport,
)
from repro.exceptions import ProtocolError, TransportError

__all__ = ["main", "payload_checksum", "serve"]


def payload_checksum(arrays: Dict[str, Any]) -> int:
    """CRC over a shard payload's arrays, in sorted key order.

    Cheap enough to run on both ends of the one-time shard shipment;
    catches the "pickle round-tripped but bytes differ" class of bug
    that per-frame CRCs cannot (they only cover one hop's wire bytes).
    """
    crc = 0
    for key in sorted(arrays):
        array = arrays[key]
        crc = zlib.crc32(key.encode("utf-8"), crc)
        crc = zlib.crc32(str(array.dtype).encode("utf-8"), crc)
        crc = zlib.crc32(str(array.shape).encode("utf-8"), crc)
        crc = zlib.crc32(memoryview(array).cast("B"), crc)
    return crc


def _materialize(message: Dict[str, Any]) -> Any:
    """Rebuild a shard object from its SHARD message payload."""
    arrays = message["arrays"]
    if message["kind"] == "csr":
        # Imported here so ``--help`` and the connect path stay fast.
        from repro.linalg.sparse import CSRMatrix

        return CSRMatrix(
            arrays["data"],
            arrays["indices"],
            arrays["indptr"],
            tuple(message["shape"]),
        )
    block = arrays["block"]
    if not block.flags["C_CONTIGUOUS"]:
        block = block.copy(order="C")
    return block


def serve(transport: Transport, worker_id: int) -> None:
    """Run the request/reply loop until SHUTDOWN or connection loss."""
    shards: Dict[str, Any] = {}
    transport.send(MSG_HELLO, {"worker_id": worker_id, "pid": os.getpid()})
    while True:
        mtype, message = transport.recv(timeout=None)
        if mtype == MSG_PING:
            transport.send(MSG_PONG, {"nonce": message.get("nonce")})
        elif mtype == MSG_SHARD:
            shard = _materialize(message)
            shards[message["key"]] = (message["kind"], shard)
            transport.send(
                MSG_ACK,
                {
                    "key": message["key"],
                    "checksum": payload_checksum(message["arrays"]),
                },
            )
        elif mtype == MSG_TASK:
            _serve_task(transport, shards, message)
        elif mtype == MSG_CALL:
            _serve_call(transport, message)
        elif mtype == MSG_SHUTDOWN:
            return
        else:
            raise ProtocolError(f"unexpected message type {mtype} at worker")


def _serve_task(
    transport: Transport, shards: Dict[str, Any], message: Dict[str, Any]
) -> None:
    from repro.parallel.sharded import shard_kernel_result

    task_id = message["task_id"]
    # Deadline propagation: the coordinator stamps each task with an
    # absolute CLOCK_MONOTONIC deadline (system-wide on Linux, and the
    # backend is localhost-only), so a task that sat in a dead worker's
    # socket buffer past its budget is refused, not computed.
    deadline = message.get("deadline")
    if deadline is not None and time.monotonic() > deadline:
        transport.send(
            MSG_ERROR,
            {"task_id": task_id, "kind": "deadline", "detail": "budget spent"},
        )
        return
    entry = shards.get(message["key"])
    if entry is None:
        transport.send(
            MSG_ERROR,
            {
                "task_id": task_id,
                "kind": "missing_shard",
                "detail": f"no shard stored under key {message['key']!r}",
            },
        )
        return
    kind, shard = entry
    t0 = time.perf_counter()
    try:
        result = shard_kernel_result(
            kind, shard, message["kernel"], message["operand"]
        )
    # Justification: any kernel failure must travel back in-band —
    # letting it kill the worker would turn a numeric bug into a
    # (misdiagnosed) transport failure.
    except Exception as exc:  # repro: noqa-RPR002
        transport.send(
            MSG_ERROR,
            {
                "task_id": task_id,
                "kind": "task_exception",
                "exception": exc,
                "detail": f"{type(exc).__name__}: {exc}",
            },
        )
        return
    transport.send(
        MSG_RESULT,
        {
            "task_id": task_id,
            "array": result,
            "seconds": time.perf_counter() - t0,
        },
    )


def _serve_call(transport: Transport, message: Dict[str, Any]) -> None:
    task_id = message["task_id"]
    try:
        result = message["fn"](message["item"])
    # Justification: the generic map surface mirrors the local
    # backends — the first task exception must propagate to the
    # caller, so it rides back in-band rather than killing us.
    except Exception as exc:  # repro: noqa-RPR002
        transport.send(
            MSG_ERROR,
            {
                "task_id": task_id,
                "kind": "task_exception",
                "exception": exc,
                "detail": f"{type(exc).__name__}: {exc}",
            },
        )
        return
    transport.send(MSG_RESULT, {"task_id": task_id, "result": result})


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.distributed.worker",
        description="One distributed SRDA worker (spawned by the supervisor).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--worker-id", type=int, required=True)
    args = parser.parse_args(argv)

    sock = socket.create_connection((args.host, args.port), timeout=10.0)
    sock.settimeout(None)
    transport = Transport(sock)
    try:
        serve(transport, args.worker_id)
    except TransportError:
        # Connection to the coordinator is gone; nothing to clean up —
        # shards are in-memory only.
        return 1
    except ProtocolError:
        return 2
    finally:
        transport.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
