"""Deterministic chaos injection for the distributed backend.

PR 1 proved the *numeric* fallback chains against
:class:`~repro.linalg.operators.FaultyOperator`; this module extends
the same philosophy to the transport layer.  Everything is **seeded
and deterministic**: a chaos scenario is an exactly reproducible
schedule, so a test that asserts "lose worker 0 on the fifth product
and still match the serial fit bitwise" fails the same way every time
or not at all.

Three pieces:

- :class:`ChaosPlan` — the declarative schedule.  Exact triggers
  (``kill_at``, ``corrupt_sends``, ``drop_sends``, ``delay_sends``)
  index into *data-frame* sequences (SHARD/TASK/CALL — heartbeat
  chatter is excluded precisely so background PING timing cannot
  perturb the schedule).  Probabilistic rates (``p_corrupt`` etc.)
  draw from a ``numpy`` generator seeded by ``seed``.
- :class:`ChaosTransport` — a :class:`~repro.distributed.framing.Transport`
  that consults the plan before each data frame it sends: corrupting
  payload bits *after* the CRC is computed (so the receiver's CRC
  check must catch it), dropping the frame entirely (the receiver
  times out), or sleeping first (slow-worker simulation).  Frame
  counters are per-transport, so a plan addresses "the 3rd data frame
  on worker 1's connection" deterministically.
- :class:`ChaosBackend` — wraps *any* backend: schedules worker kills
  by product index against a distributed backend, and injects
  :class:`~repro.linalg.operators.InjectedFaultError` / delays into
  local ``map`` calls, so the same scenario vocabulary drives tests
  for every backend tier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.distributed.framing import Transport, data_frame_types
from repro.linalg.operators import InjectedFaultError
from repro.parallel.backends import Backend

__all__ = ["ChaosBackend", "ChaosPlan", "ChaosTransport"]


@dataclass
class ChaosPlan:
    """A seeded, reproducible schedule of transport-layer faults.

    Attributes
    ----------
    seed:
        Seed for the probabilistic rates; exact triggers don't use it.
    kill_at:
        ``{product_index: worker_id_or_ids}`` — before the Nth
        distributed product (0-based), kill that worker (or each of a
        tuple of workers — killing all of them forces the degradation
        path).  Handled by :class:`ChaosBackend`.
    corrupt_sends, drop_sends, delay_sends:
        Per-connection data-frame indices (0-based) at which the
        sending transport corrupts the payload, silently drops the
        frame, or sleeps ``delay_seconds`` first.  Handled by
        :class:`ChaosTransport`.
    p_corrupt, p_drop, p_delay:
        Probabilistic per-data-frame rates on top of the exact
        triggers, drawn from ``default_rng(seed)`` per transport.
    delay_seconds:
        Sleep applied by a delay trigger.
    map_fail_at:
        Item indices at which a local ``ChaosBackend.map`` raises
        :class:`InjectedFaultError` (counted across the backend's
        lifetime).
    map_delay_every:
        When set, every Nth local map item sleeps ``delay_seconds``.
    """

    seed: int = 0
    kill_at: Dict[int, Any] = field(default_factory=dict)
    corrupt_sends: Tuple[int, ...] = ()
    drop_sends: Tuple[int, ...] = ()
    delay_sends: Tuple[int, ...] = ()
    p_corrupt: float = 0.0
    p_drop: float = 0.0
    p_delay: float = 0.0
    delay_seconds: float = 0.01
    map_fail_at: Tuple[int, ...] = ()
    map_delay_every: Optional[int] = None

    def wants_transport(self) -> bool:
        """True when any trigger needs a :class:`ChaosTransport`."""
        return bool(
            self.corrupt_sends
            or self.drop_sends
            or self.delay_sends
            or self.p_corrupt
            or self.p_drop
            or self.p_delay
        )


class ChaosTransport(Transport):
    """A transport that sabotages its own sends on schedule.

    Only *data* frames (SHARD/TASK/CALL) advance the fault counter —
    see :func:`repro.distributed.framing.data_frame_types` — so the
    schedule is independent of heartbeat timing.  Corruption flips a
    payload bit after the header (CRC included) is already built,
    guaranteeing the receiver sees a CRC mismatch, which is exactly
    the detection path the tests need to exercise.
    """

    def __init__(self, sock: Any, plan: ChaosPlan) -> None:
        super().__init__(sock)
        self.plan = plan
        self._data_frames = 0
        self._rng = np.random.default_rng(plan.seed)

    def _send_raw(self, frame: bytes, mtype: int) -> None:
        if mtype not in data_frame_types():
            super()._send_raw(frame, mtype)
            return
        index = self._data_frames
        self._data_frames += 1
        plan = self.plan
        delay = index in plan.delay_sends or (
            plan.p_delay > 0 and self._rng.random() < plan.p_delay
        )
        drop = index in plan.drop_sends or (
            plan.p_drop > 0 and self._rng.random() < plan.p_drop
        )
        corrupt = index in plan.corrupt_sends or (
            plan.p_corrupt > 0 and self._rng.random() < plan.p_corrupt
        )
        if delay:
            time.sleep(plan.delay_seconds)
        if drop:
            # The frame vanishes; the receiver's deadline machinery
            # must notice.  Counters still advance: bytes that were
            # *meant* to be sent are not accounted as traffic.
            return
        if corrupt and len(frame) > 18:
            mutated = bytearray(frame)
            mutated[-1] ^= 0x40  # one payload bit, CRC now stale
            frame = bytes(mutated)
        super()._send_raw(frame, mtype)


class ChaosBackend(Backend):
    """Wraps any backend, injecting faults per a :class:`ChaosPlan`.

    For a distributed inner backend, ``kill_at`` schedules worker
    kills by *product index* (each ``run_tasks`` batch is one
    product).  For local backends, ``map_fail_at``/``map_delay_every``
    inject :class:`InjectedFaultError` and stalls into mapped tasks.
    Everything else delegates, so the wrapper is transparent to the
    sharded layer (including the ``remote`` flag and the degradation
    surface).
    """

    def __init__(self, inner: Backend, plan: ChaosPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._products = 0
        self._map_items = 0

    # -- delegated surface --------------------------------------------
    @property
    def name(self) -> str:  # type: ignore[override]
        return f"chaos({self.inner.name})"

    @property
    def n_workers(self) -> int:  # type: ignore[override]
        return self.inner.n_workers

    @property
    def supports_closures(self) -> bool:  # type: ignore[override]
        return self.inner.supports_closures

    @property
    def remote(self) -> bool:
        return getattr(self.inner, "remote", False)

    @property
    def on_unhealthy(self) -> str:
        return getattr(self.inner, "on_unhealthy", "degrade")

    def __getattr__(self, attribute: str) -> Any:
        # Fallback delegation for the distributed surface
        # (ship_shards, run_tasks is overridden below, stats, ...).
        return getattr(self.inner, attribute)

    # -- chaos hooks ---------------------------------------------------
    def _maybe_kill(self) -> None:
        index = self._products
        self._products += 1
        victims = self.plan.kill_at.get(index)
        if victims is None:
            return
        kill = getattr(self.inner, "kill_worker", None)
        if kill is None:
            return
        if isinstance(victims, int):
            victims = (victims,)
        for worker_id in victims:
            kill(worker_id)

    def run_tasks(self, tasks: Any) -> Any:
        self._maybe_kill()
        return self.inner.run_tasks(tasks)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        tasks = list(items)
        if getattr(self.inner, "remote", False):
            self._maybe_kill()
            return self.inner.map(fn, tasks)

        plan = self.plan

        def chaotic(item: Any) -> Any:
            index = self._map_items
            self._map_items += 1
            if index in plan.map_fail_at:
                raise InjectedFaultError(
                    f"chaos-injected fault at map item {index}"
                )
            if plan.map_delay_every and index % plan.map_delay_every == 0:
                time.sleep(plan.delay_seconds)
            return fn(item)

        if not self.inner.supports_closures:
            # A process pool cannot run the closure; fall back to the
            # undecorated map (kills/corruption don't apply locally
            # anyway — SharedArena transport has its own tests).
            return self.inner.map(fn, tasks)
        return self.inner.map(chaotic, tasks)

    def close(self) -> None:
        self.inner.close()
