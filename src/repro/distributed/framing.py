"""The wire protocol: length-prefixed, CRC-validated message frames.

Every byte that crosses a worker boundary travels inside one frame::

    offset  size  field
    0       4     magic    b"RPRD"
    4       1     version  PROTOCOL_VERSION
    5       1     type     message type (MSG_* constants)
    6       8     length   payload byte count, big-endian
    14      4     crc      zlib.crc32 of the payload
    18      n     payload  pickled message body

The receiver validates magic, version, length bound, and CRC before it
unpickles anything; any violation raises
:class:`~repro.exceptions.ProtocolError`.  Because a framing violation
means the *stream position* can no longer be trusted (one corrupt
length prefix desynchronizes everything after it), the supervisor
treats a protocol error as a connection failure, never as a retryable
message failure.

Message bodies are plain dicts of picklable values (numpy arrays
included — pickle round-trips dtype and shape exactly, which the
bitwise-determinism contract relies on).  The payload limit exists to
turn a corrupt length prefix into an immediate protocol error instead
of a multi-gigabyte allocation.

:class:`Transport` wraps a connected socket with ``send``/``recv`` and
byte accounting; :class:`repro.distributed.chaos.ChaosTransport`
subclasses it to inject corruption, drops, and delays at exactly this
layer.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib
from typing import Any, Optional, Tuple

from repro.exceptions import ProtocolError, TransportError

__all__ = [
    "HEADER_BYTES",
    "MAGIC",
    "MAX_PAYLOAD_BYTES",
    "MSG_ACK",
    "MSG_CALL",
    "MSG_ERROR",
    "MSG_HELLO",
    "MSG_PING",
    "MSG_PONG",
    "MSG_RESULT",
    "MSG_SHARD",
    "MSG_SHUTDOWN",
    "MSG_TASK",
    "PROTOCOL_VERSION",
    "Transport",
    "build_frame",
    "data_frame_types",
]

MAGIC = b"RPRD"
PROTOCOL_VERSION = 1

#: ``!`` = network byte order: magic, version, type, length, crc.
_HEADER = struct.Struct("!4sBBQI")
HEADER_BYTES = _HEADER.size

#: Upper bound on one payload (4 GiB) — far above any shard this
#: package ships, so hitting it always means a corrupt length prefix.
MAX_PAYLOAD_BYTES = 4 * 1024**3

# Message types.
MSG_HELLO = 1  # worker -> coordinator, after connect
MSG_PING = 2  # coordinator -> worker heartbeat probe
MSG_PONG = 3  # worker -> coordinator heartbeat reply
MSG_SHARD = 4  # coordinator -> worker: one-time shard payload
MSG_ACK = 5  # worker -> coordinator: shard stored
MSG_TASK = 6  # coordinator -> worker: one shard kernel product
MSG_RESULT = 7  # worker -> coordinator: kernel/call result
MSG_ERROR = 8  # worker -> coordinator: in-band task failure
MSG_SHUTDOWN = 9  # coordinator -> worker: exit cleanly
MSG_CALL = 10  # coordinator -> worker: generic Backend.map task

#: Frame types that carry work or data (not liveness chatter).  The
#: chaos layer schedules injection against this subsequence so that
#: background heartbeats cannot perturb a seeded schedule.
_DATA_FRAME_TYPES = frozenset({MSG_SHARD, MSG_TASK, MSG_CALL})


def data_frame_types() -> frozenset:
    """The frame types the chaos layer counts (work, not heartbeats)."""
    return _DATA_FRAME_TYPES


def build_frame(mtype: int, message: Any) -> bytes:
    """Serialize one message into a complete frame (header + payload)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte payload "
            f"(limit {MAX_PAYLOAD_BYTES})"
        )
    header = _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, mtype, len(payload), zlib.crc32(payload)
    )
    return header + payload


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`TransportError`."""
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as exc:
            raise TransportError(
                f"timed out waiting for {remaining} of {count} bytes"
            ) from exc
        except OSError as exc:
            raise TransportError(f"socket failed mid-read: {exc}") from exc
        if not chunk:
            raise TransportError(
                f"connection closed with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class Transport:
    """A framed, checksummed message channel over one connected socket.

    Thread safety is the *caller's* job: the supervisor serializes all
    traffic on a connection behind the owning worker handle's lock.
    ``bytes_sent``/``bytes_received`` count full frames (header
    included) and feed the per-iteration traffic numbers in
    ``BENCH_distributed.json``.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0
        self._closed = False
        # Frames queue promptly: products are latency-bound on small
        # operand/result vectors, not bandwidth-bound.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP sockets in tests
            pass

    # -- sending -------------------------------------------------------
    def send(self, mtype: int, message: Any) -> None:
        """Frame and send one message (blocking until queued)."""
        self._send_raw(build_frame(mtype, message), mtype)

    def _send_raw(self, frame: bytes, mtype: int) -> None:
        """Ship pre-built frame bytes — the chaos-injection seam."""
        try:
            self.sock.sendall(frame)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc
        self.bytes_sent += len(frame)

    # -- receiving -----------------------------------------------------
    def recv(self, timeout: Optional[float] = None) -> Tuple[int, Any]:
        """Receive one validated frame; returns ``(type, message)``.

        ``timeout`` covers each blocking read (header and payload
        separately); ``None`` waits forever.  Raises
        :class:`TransportError` on timeout/EOF and
        :class:`ProtocolError` on any framing violation.
        """
        self.sock.settimeout(timeout)
        header = _recv_exact(self.sock, HEADER_BYTES)
        magic, version, mtype, length, crc = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ProtocolError(f"bad frame magic {magic!r}")
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version} "
                f"(expected {PROTOCOL_VERSION})"
            )
        if length > MAX_PAYLOAD_BYTES:
            raise ProtocolError(
                f"length prefix {length} exceeds the "
                f"{MAX_PAYLOAD_BYTES}-byte payload limit"
            )
        payload = _recv_exact(self.sock, length)
        actual_crc = zlib.crc32(payload)
        if actual_crc != crc:
            raise ProtocolError(
                f"payload CRC mismatch (header {crc:#010x}, "
                f"payload {actual_crc:#010x})"
            )
        self.bytes_received += HEADER_BYTES + length
        try:
            message = pickle.loads(payload)
        # Justification: pickle raises a zoo of exception types for
        # truncated/hostile payloads; all of them mean the same
        # protocol-level failure here.
        except Exception as exc:  # repro: noqa-RPR002
            raise ProtocolError(f"payload failed to unpickle: {exc}") from exc
        return mtype, message

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Close the socket.  Idempotent; never raises."""
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close failures are benign
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transport(sent={self.bytes_sent}, "
            f"received={self.bytes_received})"
        )
