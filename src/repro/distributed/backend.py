"""The distributed execution backend (localhost TCP workers).

:class:`DistributedBackend` implements the
:class:`~repro.parallel.backends.Backend` protocol over a
:class:`~repro.distributed.supervisor.Supervisor`-managed pool of
worker subprocesses.  It follows the tiled-array playbook the ROADMAP
sketched: shard payloads ship **once** (checksummed) at operator
construction, and each LSQR iteration moves only the ``c-1`` RHS
vectors and their per-shard results — the traffic pattern the paper's
linear-time claim needs to survive a network hop.

Two surfaces:

- The generic :meth:`map` (module-level functions only, like the
  process backend) — used by ``run_experiment`` fan-out.
- The remote-shard surface (:attr:`remote` = True):
  :meth:`ship_shards` + :meth:`run_tasks`, used by
  :class:`~repro.parallel.sharded.ShardedOperator` to pin shards to
  workers and stream products.

Failure policy lives in two knobs: ``max_retries`` bounds recovery
attempts (retry → reassign → backoff, in the supervisor), and
``on_unhealthy`` decides what happens when recovery is exhausted —
``"degrade"`` (default) lets the sharded layer fall back to a local
backend and record it in ``fit_report_``; ``"raise"`` propagates
:class:`~repro.exceptions.ClusterUnhealthyError`.

The backend is **lazy**: workers spawn on first use, so constructing
an estimator with ``backend="distributed"`` costs nothing until fit.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.distributed.framing import Transport
from repro.distributed.supervisor import Supervisor
from repro.parallel.backends import Backend, effective_n_jobs

__all__ = ["DistributedBackend"]


class DistributedBackend(Backend):
    """Socket-based backend over supervised localhost worker processes.

    Parameters
    ----------
    n_workers:
        Worker subprocesses to spawn (default: every available core).
    heartbeat_interval:
        Seconds between supervisor liveness probes (0 disables).
    task_timeout:
        Per-round deadline budget for one batch of products or calls.
    max_retries:
        Recovery rounds (retry + reassign) before the cluster is
        declared unhealthy.
    backoff_base:
        First retry's backoff sleep; doubles each round.
    on_unhealthy:
        ``"degrade"`` — callers holding local shard copies fall back
        to a local backend; ``"raise"`` — propagate
        :class:`~repro.exceptions.ClusterUnhealthyError`.
    chaos:
        Optional :class:`~repro.distributed.chaos.ChaosPlan`; when it
        carries transport triggers, every worker connection is wrapped
        in a :class:`~repro.distributed.chaos.ChaosTransport`.
    """

    name = "distributed"
    supports_closures = False
    #: Shards must be *shipped* (no shared address space); the sharded
    #: layer checks this flag to pick the remote transport path.
    remote = True

    def __init__(
        self,
        n_workers: Optional[int] = None,
        heartbeat_interval: float = 2.0,
        task_timeout: float = 30.0,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        on_unhealthy: str = "degrade",
        chaos: Optional[Any] = None,
    ) -> None:
        if on_unhealthy not in ("degrade", "raise"):
            raise ValueError(
                f"on_unhealthy must be 'degrade' or 'raise', "
                f"got {on_unhealthy!r}"
            )
        self.n_workers = effective_n_jobs(-1 if n_workers is None else n_workers)
        self.heartbeat_interval = float(heartbeat_interval)
        self.task_timeout = float(task_timeout)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.on_unhealthy = on_unhealthy
        self.chaos = chaos
        self._supervisor: Optional[Supervisor] = None
        self._closed = False
        self._shard_counter = 0

    # ------------------------------------------------------------------
    def _transport_factory(self) -> Callable[[socket.socket], Transport]:
        plan = self.chaos
        if plan is not None and plan.wants_transport():
            from repro.distributed.chaos import ChaosTransport

            def make(sock: socket.socket) -> Transport:
                return ChaosTransport(sock, plan)

            return make
        return Transport

    def _ensure_started(self) -> Supervisor:
        if self._closed:
            raise RuntimeError("DistributedBackend is closed")
        if self._supervisor is None:
            self._supervisor = Supervisor(
                n_workers=self.n_workers,
                heartbeat_interval=self.heartbeat_interval,
                task_timeout=self.task_timeout,
                max_retries=self.max_retries,
                backoff_base=self.backoff_base,
                transport_factory=self._transport_factory(),
            )
        return self._supervisor

    @property
    def started(self) -> bool:
        """True once worker processes exist (first use, not __init__)."""
        return self._supervisor is not None

    @property
    def healthy(self) -> bool:
        """True when at least one worker is alive (lazily: not started
        counts as healthy — workers would spawn on first use)."""
        if self._supervisor is None:
            return not self._closed
        return self._supervisor.healthy

    # ------------------------------------------------------------------
    # Remote-shard surface (ShardedOperator)
    # ------------------------------------------------------------------
    def ship_shards(
        self, payloads: Sequence[Dict[str, Any]]
    ) -> List[str]:
        """Ship shard payloads to workers; returns their shard keys.

        Each payload dict carries ``kind`` (``"csr"``/``"dense"``),
        ``shape``, and ``arrays`` (name → ndarray).  Payloads are
        retained by the supervisor for reassignment after worker
        death.
        """
        supervisor = self._ensure_started()
        keys = []
        for payload in payloads:
            key = f"shard-{self._shard_counter}"
            self._shard_counter += 1
            supervisor.ship_shard(
                key, payload["kind"], payload["shape"], payload["arrays"]
            )
            keys.append(key)
        return keys

    def run_tasks(self, tasks: Sequence[Dict[str, Any]]) -> List[Any]:
        """Run shard-kernel tasks (``key``/``kernel``/``operand``)."""
        return self._ensure_started().run_tasks(tasks)

    def kill_worker(self, worker_id: int) -> None:
        """Kill one worker (chaos/test hook)."""
        self._ensure_started().kill_worker(worker_id)

    # ------------------------------------------------------------------
    # Generic Backend surface
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        tasks = list(items)
        if not tasks:
            return []
        return self._ensure_started().run_calls(fn, tasks)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Recovery and traffic counters for benchmarks and reports."""
        if self._supervisor is None:
            return {
                "started": False,
                "bytes_sent": 0,
                "bytes_received": 0,
                "worker_deaths": 0,
                "reassignments": 0,
                "retries": 0,
                "heartbeats": 0,
                "live_workers": 0,
            }
        sent, received = self._supervisor.traffic()
        return {
            "started": True,
            "bytes_sent": sent,
            "bytes_received": received,
            "worker_deaths": self._supervisor.worker_deaths,
            "reassignments": self._supervisor.reassignments,
            "retries": self._supervisor.retries,
            "heartbeats": self._supervisor.heartbeats,
            "live_workers": len(self._supervisor.survivors),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.close()
            self._supervisor = None
