"""Evaluation harness reproducing the paper's experimental protocol.

- :mod:`repro.eval.classifiers` — nearest-centroid and k-NN read-outs
  for embedded data.
- :mod:`repro.eval.metrics` — error rates and mean±std aggregation.
- :mod:`repro.eval.experiment` — the (dataset × algorithm × train size ×
  split) sweep with timing and the memory-budget guard that reproduces
  Table X's missing cells.
- :mod:`repro.eval.tables` — renders results in the paper's table and
  figure layouts.
"""

from repro.eval.classifiers import KNNClassifier, NearestCentroid
from repro.eval.experiment import CellResult, ExperimentResult, run_experiment
from repro.eval.figures import render_svg_chart
from repro.eval.significance import (
    TestResult,
    compare_algorithms,
    paired_t_test,
    wilcoxon_signed_rank,
)
from repro.eval.metrics import (
    classification_report,
    confusion_matrix,
    error_rate,
    macro_f1,
    mean_std,
    precision_recall_f1,
)
from repro.eval.model_selection import (
    AlphaSearchResult,
    alpha_grid,
    grid_search_alpha,
    grid_search_alpha_srda,
)
from repro.eval.tables import (
    figure_series,
    format_error_table,
    format_time_table,
    render_ascii_chart,
)

__all__ = [
    "AlphaSearchResult",
    "CellResult",
    "ExperimentResult",
    "KNNClassifier",
    "NearestCentroid",
    "TestResult",
    "alpha_grid",
    "classification_report",
    "compare_algorithms",
    "confusion_matrix",
    "error_rate",
    "figure_series",
    "format_error_table",
    "format_time_table",
    "grid_search_alpha",
    "grid_search_alpha_srda",
    "macro_f1",
    "mean_std",
    "paired_t_test",
    "precision_recall_f1",
    "render_ascii_chart",
    "render_svg_chart",
    "run_experiment",
    "wilcoxon_signed_rank",
]
