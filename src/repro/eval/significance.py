"""Statistical significance of algorithm comparisons.

The paper's language — "RLDA and SRDA are *significantly better* than
the other" methods — is backed here with paired tests over the shared
random splits (every algorithm sees the same splits, so errors pair
naturally):

- :func:`paired_t_test` — classic paired t; the t CDF comes from the
  regularized incomplete beta function (scipy.special), everything else
  from scratch.
- :func:`wilcoxon_signed_rank` — the distribution-free alternative,
  with the normal approximation and tie handling.
- :func:`compare_algorithms` — convenience wrapper over an
  :class:`~repro.eval.experiment.ExperimentResult` cell pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import betainc

from repro.eval.experiment import ExperimentResult


@dataclass
class TestResult:
    """Outcome of a paired significance test."""

    statistic: float
    p_value: float
    n: int
    mean_difference: float

    def significant(self, level: float = 0.05) -> bool:
        """True when the two-sided p-value falls below ``level``."""
        return self.p_value < level


def _t_sf(t: float, df: int) -> float:
    """Two-sided survival probability of Student's t via the
    regularized incomplete beta: P(|T| ≥ t) = I_{df/(df+t²)}(df/2, 1/2)."""
    if df < 1:
        raise ValueError("df must be at least 1")
    if not np.isfinite(t):
        return 0.0
    x = df / (df + t * t)
    return float(betainc(df / 2.0, 0.5, x))


def paired_t_test(a, b) -> TestResult:
    """Two-sided paired t-test on matched samples ``a`` and ``b``.

    Tests H0: mean(a − b) = 0.  Requires at least two pairs and a
    non-degenerate difference (all-equal pairs give p = 1).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("paired test needs two equal-length 1-D arrays")
    n = a.shape[0]
    if n < 2:
        raise ValueError("need at least two pairs")
    differences = a - b
    mean = float(differences.mean())
    std = float(differences.std(ddof=1))
    if std == 0.0:
        return TestResult(
            statistic=0.0 if mean == 0 else np.inf,
            p_value=1.0 if mean == 0 else 0.0,
            n=n,
            mean_difference=mean,
        )
    t = mean / (std / np.sqrt(n))
    return TestResult(
        statistic=float(t),
        p_value=_t_sf(abs(t), n - 1),
        n=n,
        mean_difference=mean,
    )


def wilcoxon_signed_rank(a, b) -> TestResult:
    """Two-sided Wilcoxon signed-rank test (normal approximation).

    Zero differences are dropped (Wilcoxon's original treatment); ties
    among the remaining |differences| share mid-ranks, with the
    variance correction.  The normal approximation needs a handful of
    non-zero pairs; with fewer than 5 the p-value is conservative.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("paired test needs two equal-length 1-D arrays")
    differences = a - b
    nonzero = differences[differences != 0.0]
    n = nonzero.shape[0]
    mean_difference = float(differences.mean()) if differences.size else 0.0
    if n == 0:
        return TestResult(0.0, 1.0, 0, mean_difference)

    magnitudes = np.abs(nonzero)
    order = np.argsort(magnitudes)
    ranks = np.empty(n, dtype=np.float64)
    sorted_magnitudes = magnitudes[order]
    i = 0
    while i < n:
        j = i
        while j + 1 < n and sorted_magnitudes[j + 1] == sorted_magnitudes[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0  # mid-rank
        i = j + 1

    w_plus = float(ranks[nonzero > 0].sum())
    mean_w = n * (n + 1) / 4.0
    variance = n * (n + 1) * (2 * n + 1) / 24.0
    # tie correction
    _, tie_counts = np.unique(sorted_magnitudes, return_counts=True)
    variance -= float(np.sum(tie_counts**3 - tie_counts)) / 48.0
    if variance <= 0:
        return TestResult(w_plus, 1.0, n, mean_difference)
    z = (w_plus - mean_w) / np.sqrt(variance)
    # two-sided normal survival via erfc
    from scipy.special import erfc

    p = float(erfc(abs(z) / np.sqrt(2.0)))
    return TestResult(float(z), min(1.0, p), n, mean_difference)


def compare_algorithms(
    result: ExperimentResult,
    algorithm_a: str,
    algorithm_b: str,
    size_label: str,
    test: str = "t",
) -> TestResult:
    """Paired comparison of two algorithms' errors at one training size.

    Valid because :func:`repro.eval.experiment.run_experiment` gives
    every algorithm the same splits.  ``test`` is ``"t"`` or
    ``"wilcoxon"``.  A negative ``mean_difference`` means algorithm A
    had the lower error.
    """
    cell_a = result.cell(algorithm_a, size_label)
    cell_b = result.cell(algorithm_b, size_label)
    if cell_a.failed or cell_b.failed:
        raise ValueError("cannot compare cells that failed to run")
    if len(cell_a.errors) != len(cell_b.errors):
        raise ValueError("cells have mismatched split counts")
    if test == "t":
        return paired_t_test(cell_a.errors, cell_b.errors)
    if test == "wilcoxon":
        return wilcoxon_signed_rank(cell_a.errors, cell_b.errors)
    raise ValueError(f"unknown test {test!r}")
