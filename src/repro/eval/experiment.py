"""The experiment runner behind every table and figure.

Protocol (Section IV): for each training size, repeat over random splits
(the paper uses 20); per split, fit each algorithm on the training
partition, time the fit ("computational time of computing the projection
functions"), classify the test partition, and report mean ± std error
plus mean time.

Three split protocols, selected by ``dataset.metadata["split_protocol"]``:

- ``"per_class_within"`` — sample ``l`` per class, test on the rest (PIE);
- ``"per_class_from_pool"`` — sample ``l`` per class from a fixed train
  pool, always test on the fixed test pool (Isolet, MNIST);
- ``"ratio"`` — stratified fraction per class (20Newsgroups).

The **memory-budget guard** reproduces the dashes in Tables IX/X: before
fitting, each algorithm's predicted peak working set (the Table-I model
in :func:`repro.complexity.flam.estimate_fit_bytes`) is compared to the
budget — the paper's machine had 2 GB — and over-budget runs are recorded
as failures instead of executed.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.complexity.flam import estimate_fit_bytes
from repro.datasets.base import Dataset
from repro.datasets.splits import (
    per_class_split,
    per_class_split_from_pool,
    ratio_split,
    split_seeds,
)
from repro.eval.metrics import error_rate, mean_std
from repro.observability import current_tracer
from repro.parallel import Backend, resolve_backend
from repro.robustness import RobustnessWarning

#: Cell key: (algorithm name, training-size label).
CellKey = Tuple[str, str]

#: Failure-type sentinels for non-exception failure modes.
MEMORY_BUDGET_FAILURE = "MemoryBudgetExceeded"
FIT_TIMEOUT_FAILURE = "FitTimeout"

#: The experiment machine in the paper had 2 GB of RAM.
PAPER_MEMORY_BUDGET_BYTES = 2 * 1024**3


@dataclass
class CellResult:
    """All splits of one (algorithm, training size) cell."""

    errors: List[float] = field(default_factory=list)
    fit_seconds: List[float] = field(default_factory=list)
    failure: Optional[str] = None
    #: Machine-readable failure class: the exception type name for
    #: fit/predict errors, or a sentinel (:data:`MEMORY_BUDGET_FAILURE`,
    #: :data:`FIT_TIMEOUT_FAILURE`) for guard-imposed failures.
    failure_type: Optional[str] = None
    retries: int = 0

    @property
    def failed(self) -> bool:
        """True when the cell could not run (e.g. over memory budget)."""
        return self.failure is not None

    def record_failure(self, message: str, failure_type: str) -> None:
        """Mark the cell failed, discarding any partial measurements."""
        self.failure = message
        self.failure_type = failure_type
        self.errors.clear()
        self.fit_seconds.clear()

    @property
    def mean_error(self) -> float:
        return mean_std(np.asarray(self.errors))[0] if self.errors else float("nan")

    @property
    def std_error(self) -> float:
        return mean_std(np.asarray(self.errors))[1] if self.errors else float("nan")

    @property
    def mean_time(self) -> float:
        if not self.fit_seconds:
            return float("nan")
        return float(np.mean(self.fit_seconds))


@dataclass
class ExperimentResult:
    """Everything needed to print one dataset's tables and figure."""

    dataset_name: str
    algorithm_names: List[str]
    size_labels: List[str]
    cells: Dict[CellKey, CellResult]
    n_splits: int

    def cell(self, algorithm: str, size_label: str) -> CellResult:
        """Fetch one cell by algorithm and size label."""
        return self.cells[(algorithm, size_label)]

    def error_matrix(self) -> np.ndarray:
        """Mean errors, shape (n_sizes, n_algorithms); NaN where failed."""
        out = np.full(
            (len(self.size_labels), len(self.algorithm_names)), np.nan
        )
        for i, size in enumerate(self.size_labels):
            for j, algo in enumerate(self.algorithm_names):
                cell = self.cells[(algo, size)]
                if not cell.failed:
                    out[i, j] = cell.mean_error
        return out

    def time_matrix(self) -> np.ndarray:
        """Mean fit times, same layout as :meth:`error_matrix`."""
        out = np.full(
            (len(self.size_labels), len(self.algorithm_names)), np.nan
        )
        for i, size in enumerate(self.size_labels):
            for j, algo in enumerate(self.algorithm_names):
                cell = self.cells[(algo, size)]
                if not cell.failed:
                    out[i, j] = cell.mean_time
        return out


def _make_split(
    dataset: Dataset,
    size: Union[int, float],
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    protocol = dataset.metadata.get("split_protocol", "per_class_within")
    if protocol == "per_class_within":
        return per_class_split(dataset.y, int(size), rng)
    if protocol == "per_class_from_pool":
        return per_class_split_from_pool(
            dataset.y,
            dataset.metadata["train_pool"],
            dataset.metadata["test_pool"],
            int(size),
            rng,
        )
    if protocol == "ratio":
        return ratio_split(dataset.y, float(size), rng)
    raise ValueError(f"unknown split protocol {protocol!r}")


def size_label(size: Union[int, float]) -> str:
    """Human-readable training-size label ("30" or "20%")."""
    if isinstance(size, float) and size < 1:
        return f"{int(round(size * 100))}%"
    return str(int(size))


# ----------------------------------------------------------------------
# Checkpoint/resume for multi-split sweeps
# ----------------------------------------------------------------------

_CHECKPOINT_VERSION = 1


def _checkpoint_signature(
    dataset_name: str,
    names: List[str],
    labels: List[str],
    n_splits: int,
    seed: int,
) -> Dict[str, Any]:
    return {
        "dataset": dataset_name,
        "algorithms": list(names),
        "size_labels": list(labels),
        "n_splits": int(n_splits),
        "seed": int(seed),
    }


def _write_checkpoint(
    path: Path,
    signature: Dict[str, Any],
    completed: Dict[str, int],
    cells: Dict[CellKey, CellResult],
) -> None:
    """Atomically persist sweep progress (temp file + rename)."""
    labels: List[str] = signature["size_labels"]
    state = {
        "version": _CHECKPOINT_VERSION,
        "signature": signature,
        "completed_splits": completed,
        "cells": {
            label: {
                name: {
                    "errors": cell.errors,
                    "fit_seconds": cell.fit_seconds,
                    "failure": cell.failure,
                    "failure_type": cell.failure_type,
                    "retries": cell.retries,
                }
                for (name, lab), cell in cells.items()
                if lab == label
            }
            for label in labels
        },
    }
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(state))
    os.replace(tmp, path)


def _load_checkpoint(
    path: Path,
    signature: Dict[str, Any],
    cells: Dict[CellKey, CellResult],
) -> Dict[str, int]:
    """Restore progress from ``path`` into ``cells``.

    Returns completed-split counts per size label.  A missing file means
    a fresh start; an unreadable or mismatched checkpoint is ignored
    with a :class:`RobustnessWarning` (never fails the sweep).
    """
    if not path.exists():
        return {}
    try:
        state = json.loads(path.read_text())
        if state.get("version") != _CHECKPOINT_VERSION:
            raise ValueError(f"unsupported version {state.get('version')!r}")
        stored_signature = state["signature"]
        completed = state["completed_splits"]
        stored_cells = state["cells"]
    except (json.JSONDecodeError, KeyError, OSError, ValueError) as exc:
        warnings.warn(
            f"ignoring unreadable experiment checkpoint {path}: {exc}",
            RobustnessWarning,
            stacklevel=3,
        )
        return {}
    if stored_signature != signature:
        warnings.warn(
            f"ignoring experiment checkpoint {path}: it belongs to a "
            "different sweep configuration",
            RobustnessWarning,
            stacklevel=3,
        )
        return {}
    for label, per_algo in stored_cells.items():
        for name, stored in per_algo.items():
            cell = cells[(name, label)]
            cell.errors = [float(e) for e in stored["errors"]]
            cell.fit_seconds = [float(t) for t in stored["fit_seconds"]]
            cell.failure = stored["failure"]
            # Checkpoints written before failure_type existed lack the
            # key; those cells keep None rather than invalidating.
            cell.failure_type = stored.get("failure_type")
            cell.retries = int(stored.get("retries", 0))
    return {label: int(done) for label, done in completed.items()}


def run_experiment(
    dataset: Dataset,
    algorithms: Dict[str, Callable[[], object]],
    train_sizes: Optional[Sequence[Union[int, float]]] = None,
    n_splits: int = 20,
    seed: int = 0,
    memory_budget_bytes: Optional[float] = None,
    continue_on_error: bool = False,
    retries: int = 0,
    fit_timeout_seconds: Optional[float] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    n_jobs: Optional[int] = None,
    backend: Union[str, Backend, None] = None,
) -> ExperimentResult:
    """Run the full (algorithm × training size × split) sweep.

    Parameters
    ----------
    dataset:
        A :class:`Dataset` whose metadata declares the split protocol.
    algorithms:
        Mapping of display name → zero-argument factory returning a
        fresh, unfitted estimator with ``fit``/``predict``.
    train_sizes:
        Per-class counts or ratios; defaults to the dataset's declared
        paper sizes.
    n_splits:
        Random repetitions (paper: 20).
    seed:
        Base seed; split ``j`` of size ``i`` derives a unique stream, so
        every algorithm sees the *same* splits.
    memory_budget_bytes:
        When set, algorithms whose predicted working set exceeds it are
        skipped and marked failed (use
        :data:`PAPER_MEMORY_BUDGET_BYTES` to emulate the paper's 2 GB
        machine).
    continue_on_error:
        When True, an exception raised by one algorithm's fit/predict is
        recorded as that cell's failure (like the paper's "—" entries)
        instead of aborting the whole sweep.  Default False: long sweeps
        should not silently hide implementation bugs unless asked to.
    retries:
        Re-attempt a failed fit/predict (fresh estimator, same split) up
        to this many extra times before declaring the cell failed; the
        attempt count is recorded on :attr:`CellResult.retries`.
    fit_timeout_seconds:
        When set, a fit that takes longer than this marks the cell
        failed and the algorithm is skipped for the rest of the sweep.
        The check is cooperative (measured after the fit returns) — it
        cannot interrupt a hung BLAS call, but it stops a slow algorithm
        from consuming every remaining split.
    checkpoint_path:
        When set, sweep progress is persisted (atomically) to this JSON
        file after every completed split, and a matching checkpoint is
        resumed from instead of recomputing.  Checkpoints from a
        different configuration are ignored with a warning.  The file is
        removed on successful completion.
    n_jobs:
        Cells of one split (one fit/predict per algorithm) run
        concurrently on this many worker threads; ``None``/1 keeps the
        sequential loop.  Splits are still drawn sequentially from the
        same per-label seed streams and cells never share state, so the
        recorded errors are bitwise identical at any ``n_jobs`` — only
        the wall-clock timings differ.  Checkpointing (after each full
        split), retries, and the timeout guard are unaffected.
    backend:
        Execution backend for the parallel cells: ``None`` (pick from
        ``n_jobs``), ``"serial"``/``"thread"``, or a live
        :class:`repro.parallel.Backend` (shared, not closed).  The
        process backend is rejected — cells close over live estimators
        and dataset views that must stay in-process.
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if train_sizes is None:
        train_sizes = dataset.metadata.get("train_sizes") or dataset.metadata.get(
            "train_ratios"
        )
        if train_sizes is None:
            raise ValueError(
                "dataset declares no default train sizes; pass train_sizes"
            )
    labels = [size_label(size) for size in train_sizes]
    names = list(algorithms)
    cells: Dict[CellKey, CellResult] = {
        (name, label): CellResult() for name in names for label in labels
    }

    signature = _checkpoint_signature(
        dataset.name, names, labels, n_splits, seed
    )
    completed: Dict[str, int] = {}
    ckpt: Optional[Path] = (
        Path(checkpoint_path) if checkpoint_path is not None else None
    )
    if ckpt is not None:
        completed = _load_checkpoint(ckpt, signature, cells)

    n_classes = dataset.n_classes
    avg_nnz: Optional[float] = (
        dataset.X.mean_nnz_per_row() if dataset.is_sparse else None
    )

    runner = resolve_backend(backend, n_jobs)
    owns_runner = not isinstance(backend, Backend)
    if not runner.supports_closures:
        if owns_runner:
            runner.close()
        raise ValueError(
            "run_experiment parallelizes cells with in-process closures; "
            "use a serial or thread backend (the process backend is for "
            "operator products)"
        )

    tracer = current_tracer()
    try:
        with tracer.span(
            "experiment.run",
            dataset=dataset.name,
            n_algorithms=len(names),
            n_splits=int(n_splits),
            n_workers=int(runner.n_workers),
        ):
            for size, label in zip(train_sizes, labels):
                seeds = split_seeds(seed + hash(label) % 100003, n_splits)
                for split_index, split_seed in enumerate(seeds):
                    if split_index < completed.get(label, 0):
                        continue  # restored from checkpoint
                    with tracer.span(
                        "experiment.split", size=label, split=int(split_index)
                    ):
                        rng = np.random.default_rng(int(split_seed))
                        train_idx, test_idx = _make_split(dataset, size, rng)
                        X_train, y_train = dataset.subset(train_idx)
                        X_test, y_test = dataset.subset(test_idx)
                        m, n = X_train.shape

                        def run_one(name: str) -> None:
                            _run_cell(
                                cells[(name, label)],
                                name,
                                algorithms[name],
                                X_train,
                                y_train,
                                X_test,
                                y_test,
                                (m, n, n_classes, avg_nnz),
                                memory_budget_bytes,
                                continue_on_error,
                                retries,
                                fit_timeout_seconds,
                                tracer,
                            )

                        # Each cell owns disjoint state (its CellResult),
                        # so fanning the per-algorithm cells of ONE split
                        # across workers cannot reorder or race anything
                        # the serial loop produced; the barrier below
                        # keeps checkpoint-after-split exact.
                        runner.map(run_one, names)

                    completed[label] = split_index + 1
                    if ckpt is not None:
                        _write_checkpoint(ckpt, signature, completed, cells)
    finally:
        if owns_runner:
            runner.close()

    if ckpt is not None:
        ckpt.unlink(missing_ok=True)

    return ExperimentResult(
        dataset_name=dataset.name,
        algorithm_names=names,
        size_labels=labels,
        cells=cells,
        n_splits=n_splits,
    )


def _run_cell(
    cell: CellResult,
    name: str,
    factory: Callable[[], Any],
    X_train: Any,
    y_train: np.ndarray,
    X_test: Any,
    y_test: np.ndarray,
    problem: Tuple[int, int, int, Optional[float]],
    memory_budget_bytes: Optional[float],
    continue_on_error: bool,
    retries: int,
    fit_timeout_seconds: Optional[float],
    tracer: Any,
) -> None:
    """One algorithm's fit/predict on one split, with every guard.

    Failures (memory budget, exception after retries, timeout) set both
    the human-readable :attr:`CellResult.failure` message and the
    machine-readable :attr:`CellResult.failure_type`, and land as an
    ``experiment.failure`` event on the enclosing split span.
    """
    if cell.failed:
        return
    m, n, n_classes, avg_nnz = problem

    def _fail(message: str, failure_type: str) -> None:
        cell.record_failure(message, failure_type)
        tracer.event(
            "experiment.failure",
            algorithm=name,
            failure_type=failure_type,
            message=message,
        )

    if memory_budget_bytes is not None:
        predicted = estimate_fit_bytes(name, m, n, n_classes, s=avg_nnz)
        if predicted > memory_budget_bytes:
            _fail(
                f"predicted working set {predicted / 1e9:.1f} GB "
                f"exceeds budget {memory_budget_bytes / 1e9:.1f} GB",
                MEMORY_BUDGET_FAILURE,
            )
            return
    outcome: Optional[Tuple[float, float]] = None
    with tracer.span("experiment.fit", algorithm=name) as fit_span:
        for attempt in range(retries + 1):
            model = factory()
            try:
                start = time.perf_counter()
                model.fit(X_train, y_train)
                elapsed = time.perf_counter() - start
                error = error_rate(y_test, model.predict(X_test))
                outcome = (elapsed, error)
                break
            # Sanctioned boundary: the resilient runner must survive
            # any solver failure mode to finish the sweep.
            except Exception as exc:  # repro: noqa-RPR002
                if attempt < retries:
                    cell.retries += 1
                    continue
                if not continue_on_error:
                    raise
                _fail(f"{type(exc).__name__}: {exc}", type(exc).__name__)
        if outcome is not None:
            fit_span.set_attribute("fit_seconds", outcome[0])
            fit_span.set_attribute("error", outcome[1])
    if outcome is None:
        return
    elapsed, error = outcome
    if fit_timeout_seconds is not None and elapsed > fit_timeout_seconds:
        _fail(
            f"fit took {elapsed:.2f}s, exceeding the "
            f"{fit_timeout_seconds:.2f}s timeout",
            FIT_TIMEOUT_FAILURE,
        )
        return
    cell.fit_seconds.append(elapsed)
    cell.errors.append(error)
