"""Render experiment results in the paper's table and figure layouts.

Tables III/V/VII/IX report "error % (mean ± std)"; Tables IV/VI/VIII/X
report training seconds; Figures 1–4 plot both against the training
size.  We print the same rows and series, using em-dashes for cells the
memory-budget guard disallowed — the paper's own notation for "can not
be applied ... due to the memory limit".
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.eval.experiment import ExperimentResult

FAILED_CELL = "—"


def format_error_table(result: ExperimentResult, title: str = "") -> str:
    """Error-rate table: rows = training sizes, columns = algorithms."""
    header = title or (
        f"Classification error rates (%) on {result.dataset_name} "
        f"(mean ± std over {result.n_splits} splits)"
    )
    rows = []
    for size in result.size_labels:
        cells = []
        for algo in result.algorithm_names:
            cell = result.cell(algo, size)
            if cell.failed or not cell.errors:
                cells.append(FAILED_CELL)
            else:
                cells.append(
                    f"{100 * cell.mean_error:.1f} ± {100 * cell.std_error:.1f}"
                )
        rows.append(cells)
    return _render(header, "Train Size", result.size_labels,
                   result.algorithm_names, rows)


def format_time_table(result: ExperimentResult, title: str = "") -> str:
    """Training-time table: rows = training sizes, columns = algorithms."""
    header = title or (
        f"Computational time (s) on {result.dataset_name} "
        f"(mean over {result.n_splits} splits)"
    )
    rows = []
    for size in result.size_labels:
        cells = []
        for algo in result.algorithm_names:
            cell = result.cell(algo, size)
            if cell.failed or not cell.fit_seconds:
                cells.append(FAILED_CELL)
            else:
                cells.append(f"{cell.mean_time:.3f}")
        rows.append(cells)
    return _render(header, "Train Size", result.size_labels,
                   result.algorithm_names, rows)


def _render(
    header: str,
    index_name: str,
    index: Sequence[str],
    columns: Sequence[str],
    rows: List[List[str]],
) -> str:
    widths = [max(len(index_name), max(len(i) for i in index))]
    for j, col in enumerate(columns):
        widths.append(max(len(col), max(len(row[j]) for row in rows)))
    lines = [header]
    head_cells = [index_name.ljust(widths[0])] + [
        col.rjust(widths[j + 1]) for j, col in enumerate(columns)
    ]
    lines.append("  ".join(head_cells))
    lines.append("-" * (sum(widths) + 2 * len(widths) - 2))
    for label, row in zip(index, rows):
        cells = [label.ljust(widths[0])] + [
            value.rjust(widths[j + 1]) for j, value in enumerate(row)
        ]
        lines.append("  ".join(cells))
    return "\n".join(lines)


def figure_series(
    result: ExperimentResult, metric: str = "error"
) -> Dict[str, Tuple[List[str], List[float]]]:
    """Per-algorithm (x-labels, y-values) series for Figures 1–4.

    ``metric`` is ``"error"`` (percent) or ``"time"`` (seconds).  Failed
    cells are omitted from the series, exactly as the paper's curves
    simply stop where methods become infeasible.
    """
    if metric not in ("error", "time"):
        raise ValueError("metric must be 'error' or 'time'")
    series: Dict[str, Tuple[List[str], List[float]]] = {}
    for algo in result.algorithm_names:
        xs: List[str] = []
        ys: List[float] = []
        for size in result.size_labels:
            cell = result.cell(algo, size)
            if cell.failed:
                continue
            value = (
                100 * cell.mean_error if metric == "error" else cell.mean_time
            )
            if np.isfinite(value):
                xs.append(size)
                ys.append(float(value))
        series[algo] = (xs, ys)
    return series


def render_ascii_chart(
    series: Dict[str, Tuple[List[str], List[float]]],
    title: str,
    height: int = 12,
    width: int = 60,
) -> str:
    """A terminal line chart of figure series (one mark per algorithm).

    Purely for eyeballing benchmark output; the quantitative assertions
    live in the benchmark tests themselves.
    """
    marks = "ox+*#@%&"
    all_y = [y for _, ys in series.values() for y in ys]
    if not all_y:
        return f"{title}\n(no data)"
    lo, hi = min(all_y), max(all_y)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    max_len = max(len(xs) for xs, _ in series.values())
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        mark = marks[idx % len(marks)]
        for i, y in enumerate(ys):
            col = int(round(i * (width - 1) / max(1, max_len - 1)))
            row = int(round((hi - y) * (height - 1) / (hi - lo)))
            grid[row][col] = mark
    lines = [title]
    for r, row in enumerate(grid):
        y_value = hi - r * (hi - lo) / (height - 1)
        lines.append(f"{y_value:10.2f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    legend = "   ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
