"""Model selection for the regularization parameter α.

Figure 5's conclusion is that SRDA is flat over a wide α range, so
"parameter selection is not a very crucial problem" — but a library
still needs the tool.  :func:`grid_search_alpha` runs the paper's own
protocol (random per-class splits of the *training* data) over an α
grid, and :func:`alpha_grid` reproduces the α/(1+α) parameterization of
the figure's x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

import numpy as np

from repro.datasets.splits import per_class_split, split_seeds
from repro.eval.metrics import error_rate


def alpha_grid(n_points: int = 9) -> np.ndarray:
    """α values whose ``α/(1+α)`` are evenly spaced in (0, 1) — Fig 5's axis."""
    if n_points < 1:
        raise ValueError("n_points must be positive")
    ratios = np.linspace(0.0, 1.0, n_points + 2)[1:-1]
    return ratios / (1.0 - ratios)


@dataclass
class AlphaSearchResult:
    """Outcome of :func:`grid_search_alpha`."""

    alphas: np.ndarray
    mean_errors: np.ndarray
    std_errors: np.ndarray

    @property
    def best_alpha(self) -> float:
        """The α with the lowest mean validation error."""
        return float(self.alphas[int(np.argmin(self.mean_errors))])

    @property
    def best_error(self) -> float:
        return float(self.mean_errors.min())

    def flatness(self) -> float:
        """Max − min mean error across the grid (Fig 5's 'wide range')."""
        return float(self.mean_errors.max() - self.mean_errors.min())


def grid_search_alpha(
    model_factory: Callable[[float], Any],
    X: Any,
    y: Any,
    alphas: Optional[Sequence[float]] = None,
    n_splits: int = 5,
    validation_per_class: Optional[int] = None,
    seed: int = 0,
) -> AlphaSearchResult:
    """Estimate validation error per α by repeated per-class splits.

    Parameters
    ----------
    model_factory:
        ``alpha -> unfitted estimator`` (e.g. ``lambda a: SRDA(alpha=a)``).
    X, y:
        The training data to search within.  ``X`` may be sparse; rows
        are selected through fancy indexing / ``take_rows``.
    alphas:
        Grid to evaluate; defaults to :func:`alpha_grid`.
    n_splits:
        Random split repetitions per α.
    validation_per_class:
        Held-out samples per class; defaults to half the smallest class.
    seed:
        Base seed (each split derives its own stream).
    """
    from repro.linalg.sparse import CSRMatrix

    y = np.asarray(y)
    if alphas is None:
        alphas = alpha_grid()
    alpha_values = np.asarray(list(alphas), dtype=np.float64)
    counts = np.bincount(np.unique(y, return_inverse=True)[1])
    if validation_per_class is None:
        validation_per_class = max(1, int(counts.min()) // 2)
    train_per_class = int(counts.min()) - validation_per_class
    if train_per_class < 1:
        raise ValueError(
            "not enough samples per class to hold out "
            f"{validation_per_class} for validation"
        )

    def take(indices: np.ndarray) -> Any:
        if isinstance(X, CSRMatrix):
            return X.take_rows(indices)
        return X[indices]

    errors = np.zeros((len(alpha_values), n_splits))
    for j, split_seed in enumerate(split_seeds(seed, n_splits)):
        rng = np.random.default_rng(int(split_seed))
        fit_idx, val_idx = per_class_split(y, train_per_class, rng)
        X_fit, y_fit = take(fit_idx), y[fit_idx]
        X_val, y_val = take(val_idx), y[val_idx]
        for i, alpha in enumerate(alpha_values):
            model = model_factory(float(alpha))
            model.fit(X_fit, y_fit)
            errors[i, j] = error_rate(y_val, model.predict(X_val))

    return AlphaSearchResult(
        alphas=alpha_values,
        mean_errors=errors.mean(axis=1),
        std_errors=errors.std(axis=1),
    )


def grid_search_alpha_srda(
    X: Any,
    y: Any,
    alphas: Optional[Sequence[float]] = None,
    n_splits: int = 5,
    validation_per_class: Optional[int] = None,
    seed: int = 0,
    max_iter: int = 20,
    tol: float = 1e-10,
    centering: Union[None, str, bool] = None,
) -> AlphaSearchResult:
    """α grid search for SRDA paying one data pass per split.

    Same protocol and result type as :func:`grid_search_alpha` with a
    ``lambda a: SRDA(alpha=a, solver="lsqr")`` factory, but instead of
    refitting per α it routes each split through
    :func:`repro.core.srda.srda_alpha_path`: the Golub–Kahan basis of
    the split's training data is bidiagonalized once and replayed for
    every α, so a 9-point grid costs one fit's worth of operator
    products instead of nine.

    Parameters
    ----------
    X, y, alphas, n_splits, validation_per_class, seed:
        As :func:`grid_search_alpha`.
    max_iter, tol:
        LSQR iteration cap and tolerance forwarded to the shared solve.
    centering:
        ``"auto"`` (default when ``None``), ``True``, or ``False`` — as
        the :class:`~repro.core.srda.SRDA` constructor.
    """
    from repro.core.srda import srda_alpha_path
    from repro.linalg.sparse import CSRMatrix

    y = np.asarray(y)
    if alphas is None:
        alphas = alpha_grid()
    alpha_values = np.asarray(list(alphas), dtype=np.float64)
    counts = np.bincount(np.unique(y, return_inverse=True)[1])
    if validation_per_class is None:
        validation_per_class = max(1, int(counts.min()) // 2)
    train_per_class = int(counts.min()) - validation_per_class
    if train_per_class < 1:
        raise ValueError(
            "not enough samples per class to hold out "
            f"{validation_per_class} for validation"
        )

    def take(indices: np.ndarray) -> Any:
        if isinstance(X, CSRMatrix):
            return X.take_rows(indices)
        return X[indices]

    errors = np.zeros((len(alpha_values), n_splits))
    for j, split_seed in enumerate(split_seeds(seed, n_splits)):
        rng = np.random.default_rng(int(split_seed))
        fit_idx, val_idx = per_class_split(y, train_per_class, rng)
        X_fit, y_fit = take(fit_idx), y[fit_idx]
        X_val, y_val = take(val_idx), y[val_idx]
        models = srda_alpha_path(
            X_fit,
            y_fit,
            alpha_values,
            centering="auto" if centering is None else centering,
            max_iter=max_iter,
            tol=tol,
        )
        for i, model in enumerate(models):
            errors[i, j] = error_rate(y_val, model.predict(X_val))

    return AlphaSearchResult(
        alphas=alpha_values,
        mean_errors=errors.mean(axis=1),
        std_errors=errors.std(axis=1),
    )
