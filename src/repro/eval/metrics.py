"""Error metrics and the paper's mean ± std aggregation."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro._typing import ArrayLike, Float64Array, IntArray


def error_rate(y_true: ArrayLike, y_pred: ArrayLike) -> float:
    """Fraction misclassified — the metric of Tables III/V/VII/IX."""
    true = np.asarray(y_true)
    pred = np.asarray(y_pred)
    if true.shape != pred.shape:
        raise ValueError(
            f"shape mismatch: {true.shape} vs {pred.shape}"
        )
    if true.size == 0:
        raise ValueError("cannot compute an error rate on zero samples")
    return float(np.mean(true != pred))


def mean_std(values: ArrayLike) -> Tuple[float, float]:
    """Mean and (population) standard deviation over random splits."""
    array = np.asarray(values, dtype=np.float64)
    finite = array[np.isfinite(array)]
    if finite.size == 0:
        return float("nan"), float("nan")
    return float(finite.mean()), float(finite.std())


def confusion_matrix(
    y_true: ArrayLike, y_pred: ArrayLike, n_classes: int
) -> IntArray:
    """Row = true class, column = predicted class (encoded labels)."""
    true = np.asarray(y_true, dtype=np.int64)
    pred = np.asarray(y_pred, dtype=np.int64)
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (true, pred), 1)
    return matrix


def precision_recall_f1(
    y_true: ArrayLike, y_pred: ArrayLike, n_classes: int
) -> Tuple[Float64Array, Float64Array, Float64Array]:
    """Per-class precision, recall and F1 from encoded labels.

    Classes never predicted get precision 0; classes absent from
    ``y_true`` get recall 0 (the conventional zero-division handling).
    """
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    true_positive = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_positive / predicted, 0.0)
        recall = np.where(actual > 0, true_positive / actual, 0.0)
        denominator = precision + recall
        f1 = np.where(
            denominator > 0, 2.0 * precision * recall / denominator, 0.0
        )
    return precision, recall, f1


def macro_f1(y_true: ArrayLike, y_pred: ArrayLike, n_classes: int) -> float:
    """Unweighted mean of per-class F1 scores."""
    _, _, f1 = precision_recall_f1(y_true, y_pred, n_classes)
    return float(f1.mean())


def classification_report(
    y_true: ArrayLike,
    y_pred: ArrayLike,
    n_classes: int,
    class_names: Optional[Sequence[str]] = None,
) -> str:
    """A per-class precision/recall/F1 table, plus macro averages."""
    precision, recall, f1 = precision_recall_f1(y_true, y_pred, n_classes)
    support = confusion_matrix(y_true, y_pred, n_classes).sum(axis=1)
    if class_names is None:
        class_names = [str(k) for k in range(n_classes)]
    lines = [
        f"{'class':>10} {'precision':>10} {'recall':>8} {'f1':>8} "
        f"{'support':>8}",
        "-" * 48,
    ]
    for k in range(n_classes):
        lines.append(
            f"{class_names[k]:>10} {precision[k]:>10.3f} {recall[k]:>8.3f} "
            f"{f1[k]:>8.3f} {int(support[k]):>8d}"
        )
    lines.append("-" * 48)
    lines.append(
        f"{'macro':>10} {precision.mean():>10.3f} {recall.mean():>8.3f} "
        f"{f1.mean():>8.3f} {int(support.sum()):>8d}"
    )
    return "\n".join(lines)
