"""Dependency-free SVG line charts for the paper's figures.

The benchmark harness renders Figures 1–5 both as terminal ASCII (quick
eyeballing) and as standalone ``.svg`` files (for reports).  No plotting
library is assumed offline, so this is a small from-scratch SVG writer:
axes with tick labels, one polyline + marker set per series, and a
legend.  Output is valid XML (checked in tests with ``xml.etree``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union
from xml.sax.saxutils import escape

#: color cycle (Okabe–Ito palette: colorblind-safe)
COLORS = (
    "#0072B2", "#D55E00", "#009E73", "#CC79A7",
    "#56B4E9", "#E69F00", "#000000", "#F0E442",
)
MARKERS = ("circle", "square", "diamond", "triangle")

_WIDTH, _HEIGHT = 640, 420
_MARGIN_LEFT, _MARGIN_RIGHT = 70, 160
_MARGIN_TOP, _MARGIN_BOTTOM = 50, 60


def _nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(1, target)
    magnitude = 10.0 ** _floor_log10(raw_step)
    for multiplier in (1.0, 2.0, 5.0, 10.0):
        step = multiplier * magnitude
        if step >= raw_step:
            break
    first = step * _ceil_div(lo, step)
    ticks = []
    tick = first
    while tick <= hi + 1e-9 * step:
        ticks.append(round(tick, 10))
        tick += step
    return ticks or [lo, hi]


def _floor_log10(value: float) -> int:
    import math

    return int(math.floor(math.log10(abs(value)))) if value else 0


def _ceil_div(value: float, step: float) -> float:
    import math

    return math.ceil(value / step)


def _marker(shape: str, x: float, y: float, color: str) -> str:
    if shape == "circle":
        return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}"/>'
    if shape == "square":
        return (
            f'<rect x="{x - 3.5:.1f}" y="{y - 3.5:.1f}" width="7" '
            f'height="7" fill="{color}"/>'
        )
    if shape == "diamond":
        return (
            f'<polygon points="{x:.1f},{y - 5:.1f} {x + 5:.1f},{y:.1f} '
            f'{x:.1f},{y + 5:.1f} {x - 5:.1f},{y:.1f}" fill="{color}"/>'
        )
    return (
        f'<polygon points="{x:.1f},{y - 5:.1f} {x + 4.5:.1f},{y + 4:.1f} '
        f'{x - 4.5:.1f},{y + 4:.1f}" fill="{color}"/>'
    )


def render_svg_chart(
    series: Dict[str, Tuple[Sequence, Sequence[float]]],
    title: str,
    xlabel: str = "",
    ylabel: str = "",
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Render series as an SVG line chart; optionally write to ``path``.

    ``series`` maps a label to ``(x_labels, y_values)`` — the same
    structure :func:`repro.eval.tables.figure_series` produces.  Series
    may have different lengths (shorter ones simply stop, as the
    paper's memory-limited curves do); x positions are matched by label
    against the union of all x labels, in first-seen order.
    """
    # union of x labels, order-preserving
    x_labels: List[str] = []
    for xs, _ in series.values():
        for x in xs:
            if str(x) not in x_labels:
                x_labels.append(str(x))
    all_y = [y for _, ys in series.values() for y in ys]
    if not x_labels or not all_y:
        raise ValueError("cannot render an empty chart")

    y_lo = min(all_y)
    y_hi = max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    padding = 0.05 * (y_hi - y_lo)
    y_lo -= padding
    y_hi += padding
    ticks = _nice_ticks(y_lo, y_hi)

    plot_w = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

    def x_pos(index: int) -> float:
        if len(x_labels) == 1:
            return _MARGIN_LEFT + plot_w / 2
        return _MARGIN_LEFT + plot_w * index / (len(x_labels) - 1)

    def y_pos(value: float) -> float:
        return _MARGIN_TOP + plot_h * (1.0 - (value - y_lo) / (y_hi - y_lo))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" font-family="Helvetica, Arial, sans-serif">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2:.0f}" y="28" text-anchor="middle" '
        f'font-size="15">{escape(title)}</text>',
    ]

    # gridlines + y ticks
    for tick in ticks:
        if not y_lo <= tick <= y_hi:
            continue
        y = y_pos(tick)
        parts.append(
            f'<line x1="{_MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{_MARGIN_LEFT + plot_w}" y2="{y:.1f}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_MARGIN_LEFT - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end" font-size="11">{tick:g}</text>'
        )

    # axes
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" '
        f'x2="{_MARGIN_LEFT}" y2="{_MARGIN_TOP + plot_h}" '
        f'stroke="black" stroke-width="1.5"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP + plot_h}" '
        f'x2="{_MARGIN_LEFT + plot_w}" y2="{_MARGIN_TOP + plot_h}" '
        f'stroke="black" stroke-width="1.5"/>'
    )

    # x tick labels
    for i, label in enumerate(x_labels):
        parts.append(
            f'<text x="{x_pos(i):.1f}" y="{_MARGIN_TOP + plot_h + 18}" '
            f'text-anchor="middle" font-size="11">{escape(label)}</text>'
        )
    if xlabel:
        parts.append(
            f'<text x="{_MARGIN_LEFT + plot_w / 2:.0f}" '
            f'y="{_HEIGHT - 14}" text-anchor="middle" '
            f'font-size="12">{escape(xlabel)}</text>'
        )
    if ylabel:
        parts.append(
            f'<text x="18" y="{_MARGIN_TOP + plot_h / 2:.0f}" '
            f'text-anchor="middle" font-size="12" '
            f'transform="rotate(-90 18 {_MARGIN_TOP + plot_h / 2:.0f})">'
            f"{escape(ylabel)}</text>"
        )

    # series
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        color = COLORS[idx % len(COLORS)]
        marker = MARKERS[idx % len(MARKERS)]
        points = [
            (x_pos(x_labels.index(str(x))), y_pos(y))
            for x, y in zip(xs, ys)
        ]
        if len(points) > 1:
            coordinates = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
            parts.append(
                f'<polyline points="{coordinates}" fill="none" '
                f'stroke="{color}" stroke-width="2"/>'
            )
        for x, y in points:
            parts.append(_marker(marker, x, y, color))

        # legend entry
        legend_x = _MARGIN_LEFT + plot_w + 16
        legend_y = _MARGIN_TOP + 14 + 22 * idx
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y}" '
            f'x2="{legend_x + 24}" y2="{legend_y}" stroke="{color}" '
            f'stroke-width="2"/>'
        )
        parts.append(_marker(marker, legend_x + 12, legend_y, color))
        parts.append(
            f'<text x="{legend_x + 30}" y="{legend_y + 4}" '
            f'font-size="12">{escape(label)}</text>'
        )

    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        path = Path(path)
        if path.suffix != ".svg":
            path = path.with_suffix(path.suffix + ".svg")
        path.write_text(svg)
    return svg
