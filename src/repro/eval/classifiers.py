"""Classifiers applied in the embedded space.

The discriminant methods under test produce an embedding; the error
rates in Tables III–IX come from classifying in that embedding.  Every
estimator in this package carries a built-in nearest-centroid ``predict``;
these standalone classifiers exist for read-out ablations (e.g. does the
method ordering change under 1-NN?) and for use on raw features.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class NearestCentroid:
    """Classify by the closest class-mean in Euclidean distance."""

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None
        self.centroids_: Optional[np.ndarray] = None

    def fit(self, Z: np.ndarray, y) -> "NearestCentroid":
        """Record per-class centroids of the (embedded) training data."""
        Z = np.asarray(Z, dtype=np.float64)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self.centroids_ = np.vstack(
            [Z[y == label].mean(axis=0) for label in self.classes_]
        )
        return self

    def predict(self, Z: np.ndarray) -> np.ndarray:
        """Nearest centroid per row."""
        if self.centroids_ is None:
            raise RuntimeError("NearestCentroid must be fitted before use")
        Z = np.asarray(Z, dtype=np.float64)
        cross = Z @ self.centroids_.T
        dist = np.sum(self.centroids_**2, axis=1) - 2.0 * cross
        return self.classes_[np.argmin(dist, axis=1)]

    def score(self, Z: np.ndarray, y) -> float:
        """Accuracy against true labels."""
        return float(np.mean(self.predict(Z) == np.asarray(y)))


class KNNClassifier:
    """Brute-force k-nearest-neighbor vote (chunked distance computation).

    ``k = 1`` is the read-out most face-recognition papers of the era
    used; the chunking bounds peak memory to ``chunk × m_train`` floats.
    """

    def __init__(self, n_neighbors: int = 1, chunk_size: int = 512) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be positive")
        self.n_neighbors = int(n_neighbors)
        self.chunk_size = int(chunk_size)
        self.Z_: Optional[np.ndarray] = None
        self.y_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, Z: np.ndarray, y) -> "KNNClassifier":
        """Store the reference set."""
        self.Z_ = np.asarray(Z, dtype=np.float64)
        y = np.asarray(y)
        self.classes_, self.y_ = np.unique(y, return_inverse=True)
        if self.n_neighbors > self.Z_.shape[0]:
            raise ValueError("n_neighbors exceeds the training set size")
        return self

    def predict(self, Z: np.ndarray) -> np.ndarray:
        """Majority vote among the k nearest training points."""
        if self.Z_ is None:
            raise RuntimeError("KNNClassifier must be fitted before use")
        Z = np.asarray(Z, dtype=np.float64)
        train_sq = np.sum(self.Z_**2, axis=1)
        n_classes = self.classes_.shape[0]
        predictions = np.empty(Z.shape[0], dtype=np.int64)
        for start in range(0, Z.shape[0], self.chunk_size):
            chunk = Z[start : start + self.chunk_size]
            dist = train_sq[None, :] - 2.0 * (chunk @ self.Z_.T)
            if self.n_neighbors == 1:
                predictions[start : start + chunk.shape[0]] = self.y_[
                    np.argmin(dist, axis=1)
                ]
                continue
            nearest = np.argpartition(dist, self.n_neighbors - 1, axis=1)[
                :, : self.n_neighbors
            ]
            votes = self.y_[nearest]
            counts = np.apply_along_axis(
                np.bincount, 1, votes, None, n_classes
            )
            predictions[start : start + chunk.shape[0]] = np.argmax(
                counts, axis=1
            )
        return self.classes_[predictions]

    def score(self, Z: np.ndarray, y) -> float:
        """Accuracy against true labels."""
        return float(np.mean(self.predict(Z) == np.asarray(y)))
