"""repro — reproduction of "Training Linear Discriminant Analysis in
Linear Time" (Deng Cai, Xiaofei He, Jiawei Han; ICDE 2008).

The package implements Spectral Regression Discriminant Analysis (SRDA)
together with every substrate and baseline the paper's evaluation needs:

- :class:`SRDA` — the paper's algorithm (normal-equations and LSQR
  solvers, warm-started refits) and the rest of the spectral-regression
  family: :class:`KernelSRDA`, :class:`SparseSRDA`,
  :class:`SemiSupervisedSRDA`, :class:`SpectralRegressionEmbedding`;
- :class:`LDA`, :class:`RLDA`, :class:`IDRQR` (with ``partial_fit``),
  :class:`PCA`, :class:`RidgeClassifier` — the comparison methods;
- :mod:`repro.linalg` — from-scratch LSQR, Cholesky, Gram–Schmidt,
  cross-product SVD, CSR matrices and matrix-free operators;
- :mod:`repro.datasets` — synthetic stand-ins for PIE / Isolet / MNIST /
  20Newsgroups matched to Table II;
- :mod:`repro.eval` — the split/timing/error protocol of Section IV;
- :mod:`repro.complexity` — the Table-I cost model and its validation.

Quickstart::

    from repro import SRDA
    model = SRDA(alpha=1.0)
    model.fit(X_train, y_train)       # dense ndarray or sparse CSR
    Z = model.transform(X_test)       # (m, c-1) discriminant embedding
    labels = model.predict(X_test)    # nearest-centroid read-out
"""

from repro.baselines import IDRQR, LDA, PCA, RLDA, RidgeClassifier
from repro.exceptions import (
    ContractViolationError,
    ConvergenceError,
    InvariantViolationError,
    ReproError,
)
from repro.core import (
    KernelSRDA,
    SemiSupervisedSRDA,
    SolverConfig,
    SparseSRDA,
    SpectralRegressionEmbedding,
    SRDA,
    srda_alpha_path,
)
from repro.core.estimator import (
    ReproDeprecationWarning,
    ReproEstimator,
    all_estimators,
    clone,
)
from repro.datasets import CorruptCacheError, Dataset
from repro.linalg import CSRMatrix
from repro.observability import configure as configure_observability
from repro.observability import trace_span
from repro.robustness import FitReport, RobustnessWarning, guarded_solve

__version__ = "1.0.0"

__all__ = [
    "CSRMatrix",
    "ContractViolationError",
    "ConvergenceError",
    "CorruptCacheError",
    "Dataset",
    "FitReport",
    "InvariantViolationError",
    "ReproDeprecationWarning",
    "ReproError",
    "ReproEstimator",
    "IDRQR",
    "KernelSRDA",
    "LDA",
    "PCA",
    "RLDA",
    "RidgeClassifier",
    "RobustnessWarning",
    "SRDA",
    "SemiSupervisedSRDA",
    "SolverConfig",
    "SparseSRDA",
    "SpectralRegressionEmbedding",
    "__version__",
    "all_estimators",
    "clone",
    "configure_observability",
    "guarded_solve",
    "srda_alpha_path",
    "trace_span",
]
