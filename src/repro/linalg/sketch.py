"""Randomized sketching operators and the sketch-and-precondition path.

The paper reduces LDA to ``c-1`` regularized least-squares problems
solved by LSQR, so the total cost is *iterations × data passes*.  The
parallel layer attacks the passes; this module attacks the iteration
count, following "Randomized Iterative Algorithms for Fisher
Discriminant Analysis" (Chowdhury–Yang–Drineas, arXiv:1809.03045): a
random sketch ``S`` with ``s ≪ m`` rows embeds the column space of the
``(m, n)`` data operator well enough that the factor ``R`` of

    ``RᵀR = (S X)ᵀ(S X) + α I``

is a *right preconditioner* — ``[X; √α·I] R⁻¹`` has condition number
bounded by the sketch distortion (a small constant), independent of how
ill-conditioned ``X`` is.  LSQR on the preconditioned system then
converges in a few iterations where the plain iteration needs hundreds.

Three sketch families, each a first-class
:class:`~repro.linalg.operators.LinearOperator` (they compose with
``ShardedOperator``/``CenteringOperator`` and pass ``verify_operator``):

- :class:`CountSketchOperator` — one ±1 entry per input coordinate;
  ``S v`` is a signed :func:`numpy.bincount`, ``O(m)`` per apply and
  ``O(nnz)`` to sketch a CSR matrix.  The default: cheapest build, and
  the distortion bound only enters through the preconditioner quality.
- :class:`SparseSignOperator` — ``k`` entries of ``±1/√k`` per input
  coordinate; ``k`` times the CountSketch cost for a ``k``-fold variance
  reduction.  The middle ground when ``s`` must stay small.
- :class:`SRHTOperator` — subsampled randomized Hadamard transform
  ``(1/√s)·P·H·D`` via an in-place fast Walsh–Hadamard transform,
  ``O(m log m)`` per apply.  Densest mixing (best distortion per row of
  ``S``) but no ``O(nnz)`` sparse fast path — prefer it on dense data.

:func:`build_preconditioner` sketches the data operator (peeling
:class:`~repro.linalg.operators.AppendOnesOperator` /
:class:`~repro.linalg.operators.CenteringOperator` wrappers so the
structural tricks stay matrix-free), forms the small ``n × n`` Gram of
the sketch, factors it with the repo's blocked
:func:`~repro.linalg.cholesky.cholesky`, and returns a
:class:`SketchPreconditioner` whose triangular solves the solvers apply
per iteration.  ``lsqr``/``block_lsqr`` accept it via their
``precondition`` parameter; :class:`repro.core.srda.SRDA` exposes the
whole path as ``solver="sketched_lsqr"``.

Observability: the build emits one ``sketch.build`` span (kind, sizes,
regularization, jitter) and every triangular solve bumps the
``precond.apply`` counter, so iteration savings and preconditioner cost
land in the same trace as the ``lsqr.iteration`` events they pay for.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro._typing import (
    DTypeLike,
    Float64Array,
    FloatArray,
    FloatDType,
    IntArray,
    MatrixLike,
)
from repro.exceptions import ReproError
from repro.linalg.cholesky import (
    NotPositiveDefiniteError,
    cholesky,
    solve_triangular,
)
from repro.linalg.operators import (
    AppendOnesOperator,
    CenteringOperator,
    LinearOperator,
    as_operator,
)
from repro.linalg.sparse import CSRMatrix
from repro.observability import current_tracer

__all__ = [
    "SKETCH_KINDS",
    "CountSketchOperator",
    "PreconditionedOperator",
    "SRHTOperator",
    "SketchOperator",
    "SketchPreconditioner",
    "SketchingError",
    "SparseSignOperator",
    "build_preconditioner",
    "default_sketch_size",
    "preconditioner_from_gram",
    "sketch_apply",
    "sketch_operator",
]

#: Registered sketch families, in the order the docs discuss them.
SKETCH_KINDS: Tuple[str, ...] = ("countsketch", "sparse_sign", "srht")

#: Above this many cells the fused-bincount CSR sketch kernel would
#: allocate an unreasonable dense accumulator; fall back to the chunked
#: generic path instead.
_DENSE_ACCUMULATOR_LIMIT = 50_000_000

#: Identity-block width of the generic (operator-only) sketch path.
_SKETCH_CHUNK = 64

#: Jitter escalation for rank-deficient sketch Grams at alpha = 0
#: (relative to the mean diagonal), mirroring guarded_solve's ladder.
_JITTER_STEPS = (1e-12, 1e-10, 1e-8, 1e-6)


class SketchingError(ReproError, ValueError):
    """Raised for invalid sketch configuration or unusable sketches."""


class SketchOperator(LinearOperator):
    """Base class for seeded random sketching operators ``S : R^m → R^s``.

    Subclasses draw their randomness from ``np.random.default_rng(seed)``
    at construction, so two instances with equal parameters produce
    bitwise-identical products — the determinism the benchmarks assert.

    ``dtype`` declares the value dtype of products (float32 keeps the
    half-bandwidth pipeline intact); outputs are computed and returned
    in ``np.result_type(self.dtype, operand.dtype)``.
    """

    kind: str = "sketch"

    def __init__(
        self, m: int, sketch_size: int, seed: int, dtype: DTypeLike
    ) -> None:
        super().__init__()
        if m < 1:
            raise SketchingError(f"m must be >= 1, got {m}")
        if sketch_size < 1:
            raise SketchingError(
                f"sketch_size must be >= 1, got {sketch_size}"
            )
        self.shape = (int(sketch_size), int(m))
        self.seed = int(seed)
        self._dtype: FloatDType = np.dtype(dtype)
        if self._dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise SketchingError(
                f"sketch dtype must be float32 or float64, got {dtype!r}"
            )

    @property
    def dtype(self) -> FloatDType:
        return self._dtype

    def _out_dtype(self, operand: FloatArray) -> FloatDType:
        return np.dtype(np.result_type(self._dtype, operand.dtype))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(shape={self.shape}, seed={self.seed})"
        )


class CountSketchOperator(SketchOperator):
    """CountSketch: each input coordinate lands in one ±1 bucket.

    ``S`` has exactly one nonzero per *column*: coordinate ``i`` is
    hashed to row ``bucket[i]`` with sign ``sign[i]``.  ``S v`` is a
    signed bincount (``O(m)``); the adjoint is a gather.  ``E[SᵀS] = I``
    and the sketch embeds any fixed ``n``-dimensional column space with
    constant distortion once ``s = O(n²/δ)`` — in practice a small
    multiple of ``n`` suffices for preconditioning, which only needs the
    distortion to be bounded, not tiny.
    """

    kind = "countsketch"

    def __init__(
        self,
        m: int,
        sketch_size: int,
        seed: int = 0,
        dtype: DTypeLike = np.float64,
    ) -> None:
        super().__init__(m, sketch_size, seed, dtype)
        rng = np.random.default_rng(self.seed)
        self.buckets: IntArray = rng.integers(
            0, self.shape[0], size=m, dtype=np.int64
        )
        self.signs: Float64Array = np.where(
            rng.integers(0, 2, size=m) == 1, 1.0, -1.0
        )

    def _matvec(self, v: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(v)
        weighted = self.signs * v
        out = np.bincount(
            self.buckets, weights=weighted, minlength=self.shape[0]
        )
        return out.astype(out_dtype, copy=False)

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(u)
        out = self.signs * u[self.buckets]
        return out.astype(out_dtype, copy=False)

    def _matmat(self, B: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(B)
        out = np.zeros((self.shape[0], B.shape[1]), dtype=np.float64)
        np.add.at(out, self.buckets, self.signs[:, None] * B)
        return out.astype(out_dtype, copy=False)

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(U)
        out = self.signs[:, None] * U[self.buckets]
        return out.astype(out_dtype, copy=False)

    def sketch_csr(self, matrix: CSRMatrix) -> Optional[Float64Array]:
        """``S @ X`` for CSR ``X`` via one fused-key bincount, or None.

        Entry ``(r, c, x)`` of ``X`` contributes ``sign[r]·x`` to output
        cell ``(bucket[r], c)``; flattening cells to ``bucket·n + c``
        keys turns the whole product into a single ``O(nnz)`` bincount.
        Returns ``None`` when the dense accumulator would be too large
        (the caller falls back to the chunked operator path).
        """
        s, n = self.shape[0], matrix.shape[1]
        if s * n > _DENSE_ACCUMULATOR_LIMIT:
            return None
        row_ids = matrix._row_ids
        keys = self.buckets[row_ids] * n + matrix.indices
        weights = self.signs[row_ids] * matrix.data
        flat = np.bincount(keys, weights=weights, minlength=s * n)
        return flat.reshape(s, n)


class SparseSignOperator(SketchOperator):
    """Sparse-sign sketch: ``k`` entries of ``±1/√k`` per input coordinate.

    A ``k``-fold replicated CountSketch scaled by ``1/√k`` (replicas
    drawn independently, collisions within a coordinate allowed): the
    variance of ``‖Sv‖²`` shrinks by ``~k`` versus CountSketch, buying a
    usable embedding at smaller ``s``, for ``k`` times the apply cost.
    """

    kind = "sparse_sign"

    def __init__(
        self,
        m: int,
        sketch_size: int,
        k_nonzeros: int = 8,
        seed: int = 0,
        dtype: DTypeLike = np.float64,
    ) -> None:
        super().__init__(m, sketch_size, seed, dtype)
        if k_nonzeros < 1:
            raise SketchingError(
                f"k_nonzeros must be >= 1, got {k_nonzeros}"
            )
        self.k_nonzeros = int(k_nonzeros)
        rng = np.random.default_rng(self.seed)
        self.rows: IntArray = rng.integers(
            0, self.shape[0], size=(m, self.k_nonzeros), dtype=np.int64
        )
        signs = np.where(
            rng.integers(0, 2, size=(m, self.k_nonzeros)) == 1, 1.0, -1.0
        )
        self.signs: Float64Array = signs / np.sqrt(float(self.k_nonzeros))

    def _matvec(self, v: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(v)
        weighted = (self.signs * v[:, None]).ravel()
        out = np.bincount(
            self.rows.ravel(), weights=weighted, minlength=self.shape[0]
        )
        return out.astype(out_dtype, copy=False)

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(u)
        out = (self.signs * u[self.rows]).sum(axis=1)
        return out.astype(out_dtype, copy=False)

    def _matmat(self, B: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(B)
        out = np.zeros((self.shape[0], B.shape[1]), dtype=np.float64)
        for t in range(self.k_nonzeros):
            np.add.at(out, self.rows[:, t], self.signs[:, t][:, None] * B)
        return out.astype(out_dtype, copy=False)

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(U)
        # (m, k, j) gather summed over the k replicas
        out = (self.signs[:, :, None] * U[self.rows]).sum(axis=1)
        return out.astype(out_dtype, copy=False)

    def sketch_csr(self, matrix: CSRMatrix) -> Optional[Float64Array]:
        """``S @ X`` for CSR ``X``: one fused bincount per replica."""
        s, n = self.shape[0], matrix.shape[1]
        if s * n > _DENSE_ACCUMULATOR_LIMIT:
            return None
        row_ids = matrix._row_ids
        flat = np.zeros(s * n, dtype=np.float64)
        for t in range(self.k_nonzeros):
            keys = self.rows[:, t][row_ids] * n + matrix.indices
            weights = self.signs[:, t][row_ids] * matrix.data
            flat += np.bincount(keys, weights=weights, minlength=s * n)
        return flat.reshape(s, n)


def _fwht(block: Float64Array) -> Float64Array:
    """In-place fast Walsh–Hadamard transform over axis 0.

    ``block`` is ``(m2, k)`` with ``m2`` a power of two; applies the
    *unnormalized* Hadamard matrix (entries ±1) in ``O(m2 log m2 · k)``
    via the standard butterfly, vectorized as reshaped pair updates.
    """
    n = block.shape[0]
    h = 1
    while h < n:
        view = block.reshape(n // (2 * h), 2, h, -1)
        top = view[:, 0].copy()
        view[:, 0] += view[:, 1]
        view[:, 1] *= -1.0
        view[:, 1] += top
        h *= 2
    return block


class SRHTOperator(SketchOperator):
    """Subsampled randomized Hadamard transform ``(1/√s)·P·H·D``.

    ``D`` flips signs, the (unnormalized) Hadamard transform ``H`` mixes
    every coordinate into every other in ``O(m log m)``, and ``P``
    samples ``s`` of the ``m2`` mixed rows without replacement; the
    ``1/√s`` scale makes ``E[SᵀS] = I``.  Inputs are zero-padded to the
    next power of two ``m2 ≥ m``.  The dense mixing gives the best
    distortion per sketch row of the three families, at the price of no
    ``O(nnz)`` sparse fast path.
    """

    kind = "srht"

    def __init__(
        self,
        m: int,
        sketch_size: int,
        seed: int = 0,
        dtype: DTypeLike = np.float64,
    ) -> None:
        super().__init__(m, sketch_size, seed, dtype)
        self.padded: int = 1 << max(0, int(m - 1).bit_length())
        if sketch_size > self.padded:
            raise SketchingError(
                f"SRHT sketch_size {sketch_size} exceeds the padded "
                f"dimension {self.padded}"
            )
        rng = np.random.default_rng(self.seed)
        self.signs: Float64Array = np.where(
            rng.integers(0, 2, size=m) == 1, 1.0, -1.0
        )
        self.sample: IntArray = np.sort(
            rng.choice(self.padded, size=self.shape[0], replace=False)
        ).astype(np.int64)
        self._scale = 1.0 / np.sqrt(float(self.shape[0]))

    def _matmat(self, B: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(B)
        m = self.shape[1]
        padded = np.zeros((self.padded, B.shape[1]), dtype=np.float64)
        padded[:m] = self.signs[:, None] * B
        _fwht(padded)
        out = self._scale * padded[self.sample]
        return out.astype(out_dtype, copy=False)

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        out_dtype = self._out_dtype(U)
        m = self.shape[1]
        padded = np.zeros((self.padded, U.shape[1]), dtype=np.float64)
        padded[self.sample] = U
        _fwht(padded)
        out = self._scale * (self.signs[:, None] * padded[:m])
        return out.astype(out_dtype, copy=False)

    def _matvec(self, v: FloatArray) -> FloatArray:
        return self._matmat(v[:, None])[:, 0]

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        return self._rmatmat(u[:, None])[:, 0]


def sketch_operator(
    kind: str,
    m: int,
    sketch_size: int,
    seed: int = 0,
    dtype: DTypeLike = np.float64,
) -> SketchOperator:
    """Build a sketch operator by family name (see :data:`SKETCH_KINDS`).

    Complexity: O(m + s) — drawing the hash/sign (or sampling) arrays.
    """
    if kind == "countsketch":
        return CountSketchOperator(m, sketch_size, seed=seed, dtype=dtype)
    if kind == "sparse_sign":
        return SparseSignOperator(m, sketch_size, seed=seed, dtype=dtype)
    if kind == "srht":
        return SRHTOperator(m, sketch_size, seed=seed, dtype=dtype)
    raise SketchingError(
        f"unknown sketch kind {kind!r}; expected one of {SKETCH_KINDS}"
    )


def default_sketch_size(m: int, n: int) -> int:
    """Default sketch rows: ``min(m, max(4n, n + 64))``.

    Complexity: O(1) — integer arithmetic.

    Four rows of ``S`` per column of ``X`` keeps the CountSketch
    distortion comfortably below 1 for preconditioning (the convergence
    rate only degrades with the *bound* on the distortion); the ``n+64``
    floor keeps tiny problems full-rank, and sketching never exceeds the
    data's own row count.
    """
    return max(1, min(m, max(4 * n, n + 64)))


def sketch_apply(
    S: SketchOperator,
    A: MatrixLike,
    chunk: int = _SKETCH_CHUNK,
) -> Float64Array:
    """Compute the dense sketch ``S @ A`` of an ``(m, n)`` operator.

    Complexity: O(nnz) on the CSR fast paths (CountSketch/sparse-sign
    scatter once per stored entry; here ``s`` counts sketch rows, so
    the output adds an ``O(s·n)`` write).  Dense payloads cost a
    ``matmat``; generic operators fall back to chunked block products.

    Structural wrappers are peeled so the paper's memory tricks stay
    intact: ``S·[X|1] = [S·X | S·1]`` and ``S·(X − 1μᵀ) = S·X − (S·1)μᵀ``
    each cost one extra sketch mat-vec, never a densified matrix.  The
    base data is sketched by the family's ``O(nnz)`` CSR kernel or a
    dense ``matmat`` when the payload is reachable (this includes
    :class:`~repro.parallel.sharded.ShardedOperator`, whose underlying
    matrix is sketched directly — the build is a one-time coordinator
    step); arbitrary operators fall back to chunked
    ``(A ᵀ Sᵀ)ᵀ`` block products of width ``chunk``.
    """
    op = as_operator(A)
    if S.shape[1] != op.shape[0]:
        raise SketchingError(
            f"sketch expects {S.shape[1]} rows, operator has {op.shape[0]}"
        )
    if isinstance(op, AppendOnesOperator):
        inner = sketch_apply(S, op.base, chunk=chunk)
        ones_image = np.asarray(
            S.matvec(np.ones(op.shape[0])), dtype=np.float64
        )
        return np.hstack([inner, ones_image[:, None]])
    if isinstance(op, CenteringOperator):
        inner = sketch_apply(S, op.base, chunk=chunk)
        ones_image = np.asarray(
            S.matvec(np.ones(op.shape[0])), dtype=np.float64
        )
        means = np.asarray(op.column_means, dtype=np.float64)
        return inner - np.outer(ones_image, means)
    matrix = getattr(op, "matrix", None)
    if isinstance(matrix, CSRMatrix):
        kernel = getattr(S, "sketch_csr", None)
        if kernel is not None:
            fast = kernel(matrix)
            if fast is not None:
                return np.asarray(fast, dtype=np.float64)
    array = getattr(op, "array", None)
    if array is not None:
        return np.asarray(
            S.matmat(np.asarray(array, dtype=np.float64)), dtype=np.float64
        )
    return _sketch_via_rmatmat(S, op, chunk)


def _sketch_via_rmatmat(
    S: SketchOperator, op: LinearOperator, chunk: int
) -> Float64Array:
    """Generic ``S @ A`` via ``(Aᵀ · (Sᵀ block))ᵀ`` in identity chunks.

    Works for any operator (only ``rmatmat`` is required) at the cost of
    ``⌈s/chunk⌉`` block products of width ``chunk`` — the path taken
    when the data payload is hidden behind a custom operator.
    """
    s, m = S.shape
    n = op.shape[1]
    chunk = max(1, int(chunk))
    out = np.empty((s, n), dtype=np.float64)
    for start in range(0, s, chunk):
        stop = min(start + chunk, s)
        # fresh float64 identity block per chunk: the preconditioner path is
        # deliberately float64 end-to-end, and the block's width varies on
        # the ragged last chunk so a scratch buffer would need re-slicing
        basis = np.zeros((s, stop - start), dtype=np.float64)  # repro: noqa-RPR010
        basis[np.arange(start, stop), np.arange(stop - start)] = 1.0
        st_block = np.asarray(S.rmatmat(basis), dtype=np.float64)
        out[start:stop] = np.asarray(
            op.rmatmat(st_block), dtype=np.float64
        ).T
    return out


class SketchPreconditioner:
    """Right preconditioner ``R⁻¹`` with ``RᵀR = (S X)ᵀ(S X) + α I``.

    Holds the lower Cholesky factor ``L = Rᵀ`` of the regularized sketch
    Gram; :meth:`apply` maps preconditioned coordinates back
    (``W ↦ R⁻¹ W``) and :meth:`apply_adjoint` applies ``R⁻ᵀ`` (the
    adjoint direction the solvers need).  Both are ``O(n²)`` triangular
    solves per column — independent of ``m``, the whole point.

    Every application bumps the ``precond.apply`` counter on the ambient
    tracer, so preconditioner cost is visible next to the
    ``lsqr.iteration`` events it eliminates.
    """

    def __init__(
        self,
        factor_lower: Float64Array,
        alpha: float = 0.0,
        kind: str = "custom",
        sketch_size: int = 0,
        jitter: float = 0.0,
    ) -> None:
        factor = np.asarray(factor_lower, dtype=np.float64)
        if factor.ndim != 2 or factor.shape[0] != factor.shape[1]:
            raise SketchingError(
                "preconditioner factor must be a square lower-triangular "
                f"matrix, got shape {factor.shape}"
            )
        self.factor_lower = factor
        self.shape: Tuple[int, int] = factor.shape
        self.alpha = float(alpha)
        self.kind = kind
        self.sketch_size = int(sketch_size)
        self.jitter = float(jitter)
        self.n_applies = 0

    @property
    def n(self) -> int:
        """Dimension of the (column) space the preconditioner acts on."""
        return self.shape[0]

    def _count(self) -> None:
        self.n_applies += 1
        tracer = current_tracer()
        if tracer.enabled:
            tracer.metrics.counter("precond.apply").add(1.0)

    def apply(self, W: FloatArray) -> Float64Array:
        """``R⁻¹ W`` — map preconditioned coordinates to solutions."""
        self._count()
        return solve_triangular(self.factor_lower.T, W, lower=False)

    def apply_adjoint(self, W: FloatArray) -> Float64Array:
        """``R⁻ᵀ W`` — the transposed solve used by adjoint products."""
        self._count()
        return solve_triangular(self.factor_lower, W, lower=True)

    def wrap(self, op: LinearOperator) -> "PreconditionedOperator":
        """The preconditioned operator ``op · R⁻¹`` the solvers iterate on."""
        return PreconditionedOperator(op, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SketchPreconditioner(n={self.n}, kind={self.kind!r}, "
            f"sketch_size={self.sketch_size}, alpha={self.alpha})"
        )


class PreconditionedOperator(LinearOperator):
    """``A R⁻¹`` — a base operator right-multiplied by a preconditioner.

    The solvers iterate on this operator in the well-conditioned ``z``
    coordinates (``x = R⁻¹ z``); each forward product pays one
    triangular solve before the base product, each adjoint one after.
    Products keep the base operator's value dtype.
    """

    def __init__(
        self, base: LinearOperator, precondition: SketchPreconditioner
    ) -> None:
        super().__init__()
        if precondition.n != base.shape[1]:
            raise SketchingError(
                f"preconditioner dimension {precondition.n} does not match "
                f"operator column count {base.shape[1]}"
            )
        self.base = base
        self.precondition = precondition
        self.shape = base.shape

    @property
    def dtype(self) -> FloatDType:
        return self.base.dtype

    def _cast(self, out: FloatArray) -> FloatArray:
        return np.asarray(out).astype(self.dtype, copy=False)

    def _matvec(self, v: FloatArray) -> FloatArray:
        return self.base.matvec(self._cast(self.precondition.apply(v)))

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        return self._cast(self.precondition.apply_adjoint(self.base.rmatvec(u)))

    def _matmat(self, B: FloatArray) -> FloatArray:
        return self.base.matmat(self._cast(self.precondition.apply(B)))

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        return self._cast(self.precondition.apply_adjoint(self.base.rmatmat(U)))


def _factor_with_jitter(
    gram: Float64Array, alpha: float
) -> Tuple[Float64Array, float]:
    """Cholesky of ``gram + α I``, escalating jitter if rank-deficient.

    At ``alpha = 0`` a rank-deficient sketch (``s < n``, duplicate
    columns) makes the Gram semidefinite; mirroring ``guarded_solve``,
    a jitter ladder relative to the mean diagonal retries before giving
    up.  Returns ``(L, jitter_used)``.
    """
    n = gram.shape[0]
    work = np.array(gram, dtype=np.float64, copy=True)
    if alpha > 0:
        work[np.diag_indices(n)] += alpha
    scale = float(np.trace(work)) / max(1, n)
    if scale <= 0 or not np.isfinite(scale):
        scale = 1.0
    last_error: Optional[NotPositiveDefiniteError] = None
    for step, relative in enumerate((0.0,) + _JITTER_STEPS):
        jitter = relative * scale
        try:
            attempt = work if step == 0 else _with_jitter(work, jitter)
            return cholesky(attempt), jitter
        except NotPositiveDefiniteError as exc:
            last_error = exc
    raise SketchingError(
        "sketch Gram matrix is not positive definite even after jitter "
        f"escalation: {last_error}"
    )


def _with_jitter(gram: Float64Array, jitter: float) -> Float64Array:
    out = np.array(gram, copy=True)
    out[np.diag_indices(gram.shape[0])] += jitter
    return out


def preconditioner_from_gram(
    gram: Float64Array,
    alpha: float = 0.0,
    kind: str = "custom",
    sketch_size: int = 0,
) -> SketchPreconditioner:
    """Factor a precomputed sketch Gram ``(S X)ᵀ(S X)`` into ``R⁻¹``.

    Complexity: O(n^3) — one blocked Cholesky of the shifted Gram.

    The alpha sweep uses this to share one sketch across a whole grid:
    the ``O(s·n²)`` Gram is built once, and each alpha pays only the
    ``O(n³/3)`` Cholesky of ``gram + α I``.
    """
    gram = np.asarray(gram, dtype=np.float64)
    if gram.ndim != 2 or gram.shape[0] != gram.shape[1]:
        raise SketchingError(
            f"gram must be square, got shape {gram.shape}"
        )
    if alpha < 0:
        raise SketchingError("alpha must be non-negative")
    factor, jitter = _factor_with_jitter(gram, alpha)
    return SketchPreconditioner(
        factor, alpha=alpha, kind=kind, sketch_size=sketch_size, jitter=jitter
    )


def build_preconditioner(
    A: MatrixLike,
    alpha: float = 0.0,
    sketch: Union[str, SketchOperator] = "countsketch",
    sketch_size: Optional[int] = None,
    seed: int = 0,
    chunk: int = _SKETCH_CHUNK,
) -> SketchPreconditioner:
    """Sketch ``A`` and factor the regularized Gram into ``R⁻¹``.

    Complexity: O(nnz + s·n^2 + n^3) with ``s`` sketch rows — sketch
    apply, Gram build, and Cholesky; all one-time coordinator work.

    Parameters
    ----------
    A:
        The ``(m, n)`` data operator (dense array, CSR matrix, or any
        :class:`~repro.linalg.operators.LinearOperator`, including the
        structural SRDA wrappers and sharded operators).
    alpha:
        Ridge regularization ``α``; folded into the Gram so the factor
        preconditions the damped system ``[A; √α·I]`` exactly.  With
        ``alpha > 0`` the Gram is always positive definite, so the
        preconditioner exists for any sketch size.
    sketch:
        Family name from :data:`SKETCH_KINDS`, or a prebuilt
        :class:`SketchOperator` (whose row count then fixes the size).
    sketch_size:
        Rows of ``S``; default :func:`default_sketch_size`.
    seed:
        Seed for the sketch draw — fixed seed means a bitwise
        reproducible preconditioner and therefore bitwise reproducible
        sketched solves.
    chunk:
        Block width of the generic operator fallback in
        :func:`sketch_apply`.

    Emits one ``sketch.build`` span (kind, sizes, alpha, jitter) on the
    ambient tracer.
    """
    op = as_operator(A)
    m, n = op.shape
    if alpha < 0:
        raise SketchingError("alpha must be non-negative")
    if isinstance(sketch, SketchOperator):
        S = sketch
        if S.shape[1] != m:
            raise SketchingError(
                f"sketch operator expects {S.shape[1]} rows, data has {m}"
            )
    else:
        size = default_sketch_size(m, n) if sketch_size is None else int(sketch_size)
        if size < 1:
            raise SketchingError(f"sketch_size must be >= 1, got {size}")
        S = sketch_operator(sketch, m, min(size, m), seed=seed)
    tracer = current_tracer()
    with tracer.span(
        "sketch.build",
        kind=S.kind,
        sketch_size=int(S.shape[0]),
        rows=int(m),
        cols=int(n),
        alpha=float(alpha),
    ) as span:
        sketched = sketch_apply(S, op, chunk=chunk)
        gram = sketched.T @ sketched
        factor, jitter = _factor_with_jitter(gram, alpha)
        span.set_attribute("jitter", float(jitter))
    return SketchPreconditioner(
        factor,
        alpha=alpha,
        kind=S.kind,
        sketch_size=int(S.shape[0]),
        jitter=jitter,
    )
