"""Kernel dispatch: pure-numpy reference vs GIL-free compiled CSR kernels.

The paper's linear-time claim rests on four O(nnz) hot loops — ``A @ v``,
``A.T @ u``, and their block forms — and every solver in this package
reaches them through :class:`~repro.linalg.operators.CSROperator` or the
sharded substrate.  This module puts a dispatch seam in front of those
loops with two interchangeable backends:

``reference``
    The pure-numpy ``bincount``/``reduceat`` kernels of
    :class:`~repro.linalg.sparse.CSRMatrix`, kept verbatim.  This is the
    ground truth every other backend is measured against.

``compiled``
    A small self-contained C extension (``repro.linalg._csr_kernels``,
    built by ``python setup.py build_ext --inplace``; no third-party
    runtime deps) whose inner loops run between
    ``Py_BEGIN_ALLOW_THREADS`` — so thread-backend shard workers
    genuinely overlap instead of serializing on the GIL, which is the
    reason BENCH_parallel.json's ``speedup_vs_direct`` can exceed 1.

**Bitwise contract.** The compiled kernels replay the reference
accumulation order exactly — sequential scatter-adds where the
reference uses ``np.bincount`` and numpy's pairwise order
(``seg[0] + pairwise(seg[1:])``) where it uses ``np.add.reduceat`` —
so the two backends are interchangeable at the bit level, not merely to
rounding.  The parity suite (``tests/linalg/test_kernels.py``) asserts
``tobytes()`` equality across dtypes and CSR corner cases.

**Selection.** Per call, the backend is the innermost of:

1. an active :func:`use_backend` context (a ``ContextVar``, so thread
   backends propagate it into workers);
2. the ``REPRO_KERNEL_BACKEND`` environment variable (which spawned
   process workers inherit);
3. the default ``"auto"``.

``auto`` silently prefers the compiled backend when the extension is
importable and falls back to the reference otherwise.  Requesting
``"compiled"`` explicitly when the extension is absent emits a one-time
:class:`~repro.robustness.report.RobustnessWarning` and falls back —
results are identical either way, only the speed differs.

Calls the compiled kernels cannot replicate bit-for-bit (mixed-dtype
operands, non-contiguous storage) are routed to the reference
implementation regardless of the selected backend; the dispatch
functions therefore *never* change numerics, only execution.
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

import numpy as np

from repro._typing import FloatArray
from repro.linalg.sparse import CSRMatrix, as_value_dtype

__all__ = [
    "KERNEL_BACKENDS",
    "KERNEL_BACKEND_ENV",
    "active_backend",
    "compiled_available",
    "csr_adjoint_products",
    "csr_matmat",
    "csr_matvec",
    "csr_reduce_adjoint",
    "csr_rmatmat",
    "csr_rmatvec",
    "requested_backend",
    "use_backend",
]

#: Environment variable selecting the kernel backend for a whole run.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Accepted backend names.
KERNEL_BACKENDS = ("auto", "reference", "compiled")

try:  # pragma: no cover - exercised via both CI legs, not branch counts
    from repro.linalg import _csr_kernels as _compiled
except ImportError:  # pragma: no cover
    _compiled = None  # type: ignore[assignment]

#: Innermost selection — survives into thread-backend workers because
#: ThreadBackend copies the submitting context into each task.
_BACKEND_OVERRIDE: ContextVar[Optional[str]] = ContextVar(
    "repro_kernel_backend", default=None
)

_warn_lock = threading.Lock()
_warned_missing = False


def compiled_available() -> bool:
    """True when the ``_csr_kernels`` extension imported successfully.

    Complexity: O(1) — the import was attempted once at module load.
    """
    return _compiled is not None


def _validate_backend(name: str) -> str:
    if name not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of "
            f"{KERNEL_BACKENDS}"
        )
    return name


def requested_backend() -> str:
    """The backend name currently requested (before availability checks).

    Complexity: O(1) — a ContextVar read plus one environ lookup.
    """
    override = _BACKEND_OVERRIDE.get()
    if override is not None:
        return override
    env = os.environ.get(KERNEL_BACKEND_ENV)
    if env:
        return _validate_backend(env)
    return "auto"


def _warn_missing_once() -> None:
    global _warned_missing
    with _warn_lock:
        if _warned_missing:
            return
        _warned_missing = True
    from repro.robustness.report import RobustnessWarning

    warnings.warn(
        "kernel backend 'compiled' was requested but the "
        "repro.linalg._csr_kernels extension is not built; falling back "
        "to the bitwise-identical pure-numpy reference kernels (build "
        "with `python setup.py build_ext --inplace` to enable it)",
        RobustnessWarning,
        stacklevel=3,
    )


def _reset_missing_warning() -> None:
    """Re-arm the one-time fallback warning (test hook)."""
    global _warned_missing
    with _warn_lock:
        _warned_missing = False


def active_backend() -> str:
    """Resolve the request to the backend that will actually run.

    Complexity: O(1).

    ``"auto"`` prefers ``"compiled"`` when available, silently falling
    back to ``"reference"``; an explicit ``"compiled"`` request without
    the extension warns once (:class:`RobustnessWarning`) and falls
    back.  The return value is always concrete: ``"reference"`` or
    ``"compiled"``.
    """
    requested = requested_backend()
    if requested == "reference":
        return "reference"
    if compiled_available():
        return "compiled"
    if requested == "compiled":
        _warn_missing_once()
    return "reference"


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[None]:
    """Scope a kernel-backend selection to a ``with`` block.

    The selection rides a ``ContextVar``: thread-backend shard workers
    inherit it (each task runs in a copy of the submitting context),
    and nested scopes restore the outer selection on exit.  ``None`` is
    a no-op scope, so call sites can pass an optional config field
    straight through.

    Complexity: O(1) — one ContextVar set/reset pair.
    """
    if name is None:
        yield
        return
    token = _BACKEND_OVERRIDE.set(_validate_backend(name))
    try:
        yield
    finally:
        _BACKEND_OVERRIDE.reset(token)


# ----------------------------------------------------------------------
# Compiled-path eligibility
# ----------------------------------------------------------------------


def _storage_ok(matrix: CSRMatrix) -> bool:
    """True when the matrix's arrays satisfy the C kernels' layout."""
    return (
        matrix.data.flags.c_contiguous
        and matrix.indices.flags.c_contiguous
        and matrix.indptr.flags.c_contiguous
    )


def _operand_for_compiled(
    matrix: CSRMatrix, x: FloatArray
) -> Optional[FloatArray]:
    """``x`` as the C kernels need it, or ``None`` to use the reference.

    The compiled kernels compute in the matrix's value dtype.  A
    float32 operand against a float64 matrix upcasts exactly (so the
    cast below is bitwise-neutral — numpy's mixed-dtype ufunc does the
    same promotion); a float64 operand against a float32 matrix would
    have to *downcast*, which the reference never does, so that case
    (and any non-native layout) falls back.
    """
    if x.dtype == matrix.dtype:
        return np.ascontiguousarray(x)
    if matrix.dtype == np.float64:
        return np.ascontiguousarray(x, dtype=np.float64)
    return None


# ----------------------------------------------------------------------
# Dispatch functions
# ----------------------------------------------------------------------


def csr_matvec(matrix: CSRMatrix, v: FloatArray) -> FloatArray:
    """``A @ v`` through the selected kernel backend.

    Complexity: O(nnz) — one multiply-add per stored entry on either
    backend; the backends differ only in GIL behavior and constant.
    """
    v = as_value_dtype(v)
    if active_backend() != "compiled" or not _storage_ok(matrix):
        return matrix.matvec(v)
    if v.shape != (matrix.shape[1],):
        raise ValueError(
            f"matvec expects a vector of length {matrix.shape[1]}, "
            f"got shape {v.shape}"
        )
    vc = _operand_for_compiled(matrix, v)
    if vc is None:
        return matrix.matvec(v)
    out = np.zeros(matrix.shape[0], dtype=matrix.dtype)
    _compiled.csr_matvec(matrix.data, matrix.indices, matrix.indptr, vc, out)
    return out


def csr_rmatvec(matrix: CSRMatrix, u: FloatArray) -> FloatArray:
    """``A.T @ u`` through the selected kernel backend.

    Complexity: O(nnz) — the adjoint sweep at the same unit price as
    :func:`csr_matvec` (plus, on the float32 path, the one-time column
    segment build the reference also amortizes).
    """
    u = as_value_dtype(u)
    if active_backend() != "compiled" or not _storage_ok(matrix):
        return matrix.rmatvec(u)
    if u.shape != (matrix.shape[0],):
        raise ValueError(
            f"rmatvec expects a vector of length {matrix.shape[0]}, "
            f"got shape {u.shape}"
        )
    uc = _operand_for_compiled(matrix, u)
    if uc is None:
        return matrix.rmatvec(u)
    out = np.zeros(matrix.shape[1], dtype=matrix.dtype)
    if matrix.dtype == np.float64:
        _compiled.csr_rmatvec_scatter(
            matrix.data, matrix.indices, matrix.indptr, uc, out
        )
    else:
        order, starts, cols = matrix._col_segments
        _compiled.csr_rmatvec_segments(
            matrix.data, matrix._row_ids, order, starts, cols, uc, out
        )
    return out


def csr_adjoint_products(matrix: CSRMatrix, u: FloatArray) -> FloatArray:
    """Elementwise adjoint stage ``data * u[row_ids]``, in storage order.

    Complexity: O(nnz).

    The shard-local half of the sharded adjoint: each shard computes
    its slice of this product, and the coordinator applies the one
    canonical :func:`csr_reduce_adjoint` — which is what keeps the
    sharded ``rmatvec`` bitwise-identical to the direct one.
    """
    u = as_value_dtype(u)
    if (
        active_backend() == "compiled"
        and _storage_ok(matrix)
        and u.shape == (matrix.shape[0],)
    ):
        uc = _operand_for_compiled(matrix, u)
        if uc is not None:
            out = np.empty(matrix.nnz, dtype=matrix.dtype)
            _compiled.csr_adjoint_products(
                matrix.data, matrix.indptr, uc, out
            )
            return out
    products: FloatArray = matrix.data * u[matrix._row_ids]
    return products


def csr_reduce_adjoint(
    matrix: CSRMatrix,
    products: FloatArray,
    out: Optional[FloatArray] = None,
) -> FloatArray:
    """Reduce per-entry adjoint products to ``A.T @ u``.

    Complexity: O(nnz).

    The canonical reduction behind
    :meth:`~repro.linalg.sparse.CSRMatrix.reduce_adjoint_products`,
    backend-dispatched.  Per-dtype accumulation order (float64
    ``bincount`` fold, float32 segmented ``reduceat``) is preserved
    exactly on both backends.
    """
    if active_backend() != "compiled" or not _storage_ok(matrix):
        return matrix.reduce_adjoint_products(products, out=out)
    if products.shape != matrix.data.shape:
        return matrix.reduce_adjoint_products(products, out=out)
    if out is not None and (
        out.shape != (matrix.shape[1],) or out.dtype != products.dtype
    ):
        return matrix.reduce_adjoint_products(products, out=out)
    if not products.flags.c_contiguous:
        products = np.ascontiguousarray(products)
    if products.dtype == np.float64:
        # The scatter kernel only touches indices + products, so it
        # serves float64 products over a float32 matrix too (the shard
        # path can promote operands).
        target = out if out is not None else np.zeros(matrix.shape[1])
        target[:] = 0
        _compiled.csr_reduce_adjoint_scatter(
            matrix.indices, products, target
        )
        return target
    if products.dtype != matrix.dtype:
        return matrix.reduce_adjoint_products(products, out=out)
    target = (
        out if out is not None else np.zeros(matrix.shape[1], products.dtype)
    )
    target[:] = 0
    order, starts, cols = matrix._col_segments
    _compiled.csr_reduce_adjoint_segments(products, order, starts, cols, target)
    return target


def csr_matmat(matrix: CSRMatrix, B: FloatArray) -> FloatArray:
    """``A @ B`` for a dense block through the selected backend.

    Complexity: O(nnz·c) for a ``c``-column block — identical flam to
    ``c`` mat-vecs on either backend.
    """
    B = as_value_dtype(B)
    if active_backend() != "compiled" or not _storage_ok(matrix):
        return matrix.matmat(B)
    if B.ndim == 1:
        return csr_matvec(matrix, B)
    if B.shape[0] != matrix.shape[1]:
        raise ValueError("dimension mismatch in matmat")
    k = B.shape[1]
    if k == 1:
        return csr_matvec(matrix, B[:, 0])[:, None]
    dtype = np.result_type(matrix.data, B)
    if dtype != matrix.dtype:
        return matrix.matmat(B)
    Bf = np.asfortranarray(B, dtype=dtype)
    out = np.zeros((matrix.shape[0], k), dtype=dtype, order="F")
    _compiled.csr_matmat(matrix.data, matrix.indices, matrix.indptr, Bf, out)
    return out


def csr_rmatmat(matrix: CSRMatrix, U: FloatArray) -> FloatArray:
    """``A.T @ U`` for a dense block through the selected backend.

    Complexity: O(nnz·c) per call, plus the reference's one-time
    O(nnz log nnz) transpose build, amortized over every later block.

    Routed through the (lazily cached) transpose exactly as the
    reference is, so the forward sweep kernel — whichever backend — is
    reused and the result stays bitwise-stable.
    """
    U = as_value_dtype(U)
    if U.ndim == 1:
        return csr_rmatvec(matrix, U)
    if U.shape[0] != matrix.shape[0]:
        raise ValueError("dimension mismatch in rmatmat")
    if U.shape[1] == 1:
        return csr_rmatvec(matrix, U[:, 0])[:, None]
    return csr_matmat(matrix.T, U)
