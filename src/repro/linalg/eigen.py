"""From-scratch symmetric eigensolvers.

Two classical algorithms complementing the LAPACK wrapper in
:mod:`repro.linalg.dense`:

- :func:`jacobi_eigh` — the cyclic Jacobi rotation method for small
  dense symmetric matrices.  Slow (O(n³) per sweep) but self-contained
  and extremely accurate; the test suite uses it as an independent
  oracle for the LAPACK-based paths.
- :func:`lanczos_eigsh` — the Lanczos iteration with full
  reorthogonalization for the *leading* eigenpairs of a large symmetric
  operator.  This is what lets the generalized response construction
  (:func:`repro.core.graph.graph_responses`) scale past the dense
  eigensolve: a k-NN affinity only needs its top few eigenvectors, and
  Lanczos touches it through mat-vecs alone.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConvergenceError
from repro.linalg.operators import as_operator


def jacobi_eigh(
    A: np.ndarray, tol: float = 1e-12, max_sweeps: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a symmetric matrix by cyclic Jacobi.

    Complexity: O(iters·n^3) — each cyclic sweep applies ``n(n−1)/2``
    rotations of O(n) work; ``iters`` sweeps in total.

    Returns ``(eigenvalues, eigenvectors)`` sorted descending, like
    :func:`repro.linalg.dense.symmetric_eigh`.

    Parameters
    ----------
    A:
        Symmetric matrix (symmetrized defensively).
    tol:
        Convergence threshold on the off-diagonal Frobenius norm,
        relative to the matrix norm.
    max_sweeps:
        Upper bound on full cyclic sweeps; Jacobi converges
        quadratically, so ~10 sweeps suffice in practice.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("jacobi_eigh requires a square matrix")
    n = A.shape[0]
    M = 0.5 * (A + A.T)
    V = np.eye(n)
    norm = np.linalg.norm(M)
    if norm == 0.0:
        return np.zeros(n), V

    for _ in range(max_sweeps):
        off = np.sqrt(np.sum(M**2) - np.sum(np.diag(M) ** 2))
        if off <= tol * norm:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                if abs(M[p, q]) <= 1e-300:
                    continue
                # Jacobi rotation annihilating M[p, q]
                theta = (M[q, q] - M[p, p]) / (2.0 * M[p, q])
                # hypot avoids overflow of theta² for huge ratios
                t = np.sign(theta) / (abs(theta) + np.hypot(theta, 1.0))
                if theta == 0.0:
                    t = 1.0
                c = 1.0 / np.sqrt(t * t + 1.0)
                s = t * c
                rot_p = M[:, p].copy()
                rot_q = M[:, q].copy()
                M[:, p] = c * rot_p - s * rot_q
                M[:, q] = s * rot_p + c * rot_q
                rot_p = M[p, :].copy()
                rot_q = M[q, :].copy()
                M[p, :] = c * rot_p - s * rot_q
                M[q, :] = s * rot_p + c * rot_q
                rot_p = V[:, p].copy()
                rot_q = V[:, q].copy()
                V[:, p] = c * rot_p - s * rot_q
                V[:, q] = s * rot_p + c * rot_q

    eigenvalues = np.diag(M).copy()
    order = np.argsort(eigenvalues)[::-1]
    return eigenvalues[order], V[:, order]


def lanczos_eigsh(
    A,
    k: int,
    max_iter: Optional[int] = None,
    tol: float = 1e-10,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Leading ``k`` eigenpairs of a symmetric operator by Lanczos.

    Complexity: O(iters·(nnz + m·iters)) — one ``matvec`` per Krylov
    step plus full reorthogonalization against the basis built so far.

    Full reorthogonalization keeps the Krylov basis orthonormal (the
    classic three-term recurrence loses orthogonality as Ritz pairs
    converge); for the moderate ``k`` and matrix sizes this package
    needs, the O(m·j) per-step cost is a fine trade for robustness.

    Parameters
    ----------
    A:
        Symmetric matrix or operator of shape ``(m, m)`` (only
        ``matvec`` is used).
    k:
        Number of leading (largest-eigenvalue) pairs to return.
    max_iter:
        Krylov dimension cap; defaults to ``min(m, max(4k, 40))``.
    tol:
        Residual tolerance ``‖A v − λ v‖ ≤ tol·|λ_max|`` for convergence
        of all requested pairs.
    seed:
        Seed for the random starting vector.
    """
    op = as_operator(A)
    m = op.shape[0]
    if op.shape[0] != op.shape[1]:
        raise ValueError("lanczos_eigsh requires a square operator")
    if not 1 <= k <= m:
        raise ValueError(f"k must be in [1, {m}]")
    if max_iter is None:
        max_iter = min(m, max(4 * k, 40))
    max_iter = min(max_iter, m)

    rng = np.random.default_rng(seed)
    Q = np.zeros((m, max_iter + 1))
    alphas = []
    betas = []
    q = rng.standard_normal(m)
    q /= np.linalg.norm(q)
    Q[:, 0] = q

    def finalize(n_steps: int) -> Tuple[np.ndarray, np.ndarray]:
        T = np.diag(alphas)
        if betas:
            off = np.array(betas)
            T += np.diag(off, 1) + np.diag(off, -1)
        ritz_values, ritz_vectors = np.linalg.eigh(T)
        order = np.argsort(ritz_values)[::-1][: min(k, n_steps)]
        eigenvalues = ritz_values[order]
        eigenvectors = Q[:, :n_steps] @ ritz_vectors[:, order]
        eigenvectors /= np.linalg.norm(eigenvectors, axis=0)
        return eigenvalues, eigenvectors

    tiny = 1e-12
    for j in range(max_iter):
        w = op.matvec(Q[:, j])
        alpha = float(Q[:, j] @ w)
        alphas.append(alpha)
        w -= alpha * Q[:, j]
        if j > 0:
            w -= betas[-1] * Q[:, j - 1]
        # full reorthogonalization (twice for safety)
        for _ in range(2):
            w -= Q[:, : j + 1] @ (Q[:, : j + 1].T @ w)
        beta = float(np.linalg.norm(w))
        n_steps = j + 1

        if n_steps == max_iter:
            return finalize(n_steps)

        if beta <= tiny:
            # The Krylov block became an invariant subspace.  A single
            # starting vector can never expose an eigenvalue's further
            # multiplicity (e.g. the LDA graph matrix, a projection,
            # has a 2-dimensional Krylov space) — restart with a fresh
            # direction orthogonal to everything found so far; a zero
            # coupling in T keeps the blocks exactly decoupled.
            w = rng.standard_normal(m)
            for _ in range(2):
                w -= Q[:, :n_steps] @ (Q[:, :n_steps].T @ w)
            norm = float(np.linalg.norm(w))
            if norm <= tiny:  # the whole space is exhausted
                return finalize(n_steps)
            betas.append(0.0)
            Q[:, j + 1] = w / norm
            continue

        if n_steps >= k:
            T = np.diag(alphas)
            if betas:
                off = np.array(betas)
                T += np.diag(off, 1) + np.diag(off, -1)
            ritz_values, ritz_vectors = np.linalg.eigh(T)
            order = np.argsort(ritz_values)[::-1][:k]
            # residual of pair i is |beta * last component of ritz vec|
            residuals = beta * np.abs(ritz_vectors[-1, order])
            scale = max(abs(ritz_values[order[0]]), 1e-30)
            if np.all(residuals <= tol * scale):
                return finalize(n_steps)

        betas.append(beta)
        Q[:, j + 1] = w / beta

    raise ConvergenceError(
        "lanczos_eigsh failed to converge"
    )  # pragma: no cover
