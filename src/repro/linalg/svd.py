"""Cross-product SVD — the §II-B trick the LDA baseline relies on.

For a tall-or-wide matrix the economical SVD can be computed from the
eigendecomposition of the *smaller* Gram matrix: if ``X`` is ``(m, n)``
with ``m ≤ n``, the left singular vectors of ``X`` are the eigenvectors
of ``X Xᵀ`` (an ``m × m`` symmetric problem) and the right factor is
recovered as ``V = Xᵀ U Σ⁻¹``; symmetrically when ``n < m``.  The paper
counts this route ("the most efficient SVD decomposition algorithm, i.e.
cross-product") at ``(3/2) m n t + t³`` flam with ``t = min(m, n)`` —
this is the cubic term that SRDA removes.

Rank is determined from the eigenvalues of the Gram matrix with a
relative tolerance, so rank-deficient inputs (e.g. centered data, which
always loses one rank) come back with exactly ``r`` components.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.linalg.dense import symmetric_eigh


def cross_product_svd(
    X: np.ndarray, tol: float = 1e-10
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Economy SVD ``X = U diag(s) Vᵀ`` via the smaller Gram matrix.

    Complexity: O(m·n^2 + n^3) when ``n ≤ m`` (mirrored otherwise) —
    Gram build, eigensolve on the small side, and back-multiplication.

    Parameters
    ----------
    X:
        Dense ``(m, n)`` matrix.
    tol:
        Relative rank cutoff applied to the Gram-matrix *eigenvalues*:
        eigenvalues below ``tol * max_eigenvalue`` are discarded.  The
        cross-product route squares the condition number, so rounding
        noise in the Gram matrix sits at ``~eps * max_eigenvalue``; the
        cutoff must live in eigenvalue space (σ² ratios), which means
        the smallest resolvable singular-value ratio is ``sqrt(tol)``.

    Returns
    -------
    (U, s, V):
        ``U`` is ``(m, r)``, ``s`` the ``r`` singular values in
        descending order, ``V`` is ``(n, r)``, with
        ``r = numerical rank``.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("cross_product_svd requires a 2-D array")
    m, n = X.shape
    if m == 0 or n == 0:
        return np.empty((m, 0)), np.empty(0), np.empty((n, 0))

    if m <= n:
        gram = X @ X.T
        eigvals, eigvecs = symmetric_eigh(gram)
        s, U = _truncate(eigvals, eigvecs, tol)
        V = X.T @ (U / s)
        # The recovered factor inherits rounding from the division by
        # small singular values; one cheap re-normalization pass keeps it
        # orthonormal to working precision.
        V /= np.linalg.norm(V, axis=0)
    else:
        gram = X.T @ X
        eigvals, eigvecs = symmetric_eigh(gram)
        s, V = _truncate(eigvals, eigvecs, tol)
        U = X @ (V / s)
        U /= np.linalg.norm(U, axis=0)
    return U, s, V


def _truncate(
    eigvals: np.ndarray, eigvecs: np.ndarray, tol: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Convert Gram eigenvalues to singular values, dropping the null space."""
    eigvals = np.clip(eigvals, 0.0, None)
    if eigvals.size == 0 or eigvals[0] == 0.0:
        return np.empty(0), eigvecs[:, :0]
    cutoff = tol * eigvals[0]
    keep = eigvals > cutoff
    return np.sqrt(eigvals[keep]), eigvecs[:, keep]


def svd_rank(X: np.ndarray, tol: float = 1e-10) -> int:
    """Numerical rank of ``X`` by the same criterion as the SVD above.

    Complexity: O(m·n^2 + n^3) — delegates to the cross-product SVD.
    """
    _, s, _ = cross_product_svd(X, tol=tol)
    return int(s.shape[0])


def low_rank_approximation(X: np.ndarray, rank: int) -> np.ndarray:
    """Best rank-``k`` approximation of ``X`` (Eckart–Young), a test helper.

    Complexity: O(m·n^2 + n^3 + m·n·k) — full SVD plus the rank-``k``
    reconstruction.
    """
    U, s, V = cross_product_svd(X)
    k = min(rank, s.shape[0])
    return (U[:, :k] * s[:k]) @ V[:, :k].T
