"""A minimal compressed-sparse-row (CSR) matrix.

The paper's headline result — LDA training in time linear in the number of
non-zeros — depends on the solver only ever touching the data through
``X @ v`` and ``X.T @ u`` products over a sparse matrix.  This module
provides that substrate from scratch: a CSR container with exactly the
operations SRDA needs (mat-vec, transposed mat-vec, row slicing for
train/test splits, column means for centering, row normalization for TF
vectors) plus interop with ``scipy.sparse`` so users can bring their own
matrices.

The heavy loops are expressed with numpy ufuncs (``np.add.reduceat``,
``np.bincount``) rather than Python-level iteration, so the from-scratch
implementation stays usable at the paper's data scale (tens of thousands
of rows, ~26k columns).

Block products (``matmat``/``rmatmat``) sweep the columns of the dense
block through a fused gather–multiply–``np.add.reduceat`` kernel over
precomputed non-empty segment starts.  Measured against the
alternatives (2-D ``(nnz, k)`` gather/reduceat blocks, chunked
cache-sized variants, fused ``bincount`` keys), the 1-D sweep wins by
1.5–2.5×: numpy's 1-D reduceat runs at full memory bandwidth while its
axis-0 reduction over short ``k``-wide rows does not.  What the block
kernels amortize across columns — and the single-shot
``matvec``/``rmatvec`` deliberately avoid paying for one product — is
the cached segment structure: non-empty row starts for the forward
sweep and a lazily cached transpose (``O(nnz log nnz)`` sort, built
once) for ``rmatmat``.

Values are stored in float64 by default; float32 input is preserved
end-to-end (products, row slicing, transposes) so memory-bound kernels
can run at half the traffic.  Any other dtype is upcast to float64.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro._typing import FloatArray, FloatDType, IntArray

_VALUE_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def as_value_dtype(array: Any) -> FloatArray:
    """Coerce to a supported value dtype: float32 stays, others → float64.

    Complexity: O(m·n) worst case (one copying cast of a dense operand);
    free when the dtype already conforms.
    """
    array = np.asarray(array)
    if array.dtype not in _VALUE_DTYPES:
        return array.astype(np.float64)
    return array


class CSRMatrix:
    """Compressed sparse row matrix with float64 (or float32) values.

    Parameters
    ----------
    data:
        Non-zero values, concatenated row by row.
    indices:
        Column index of each value in ``data``.
    indptr:
        Row pointer array of length ``n_rows + 1``; row ``i`` owns the
        slice ``data[indptr[i]:indptr[i + 1]]``.
    shape:
        ``(n_rows, n_cols)``.

    Values keep float32 when given float32 input (the half-memory-traffic
    path); everything else is stored as float64.
    """

    def __init__(
        self,
        data: FloatArray,
        indices: IntArray,
        indptr: IntArray,
        shape: Tuple[int, int],
    ) -> None:
        self.data = as_value_dtype(data)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._row_ids_cache: Optional[IntArray] = None
        self._nonempty_rows_cache: Optional[IntArray] = None
        self._col_cache: Optional[Tuple[IntArray, IntArray, IntArray]] = None
        self._transpose_cache: Optional["CSRMatrix"] = None
        self._validate()

    @property
    def dtype(self) -> FloatDType:
        """Value dtype (float64, or float32 on the low-memory path)."""
        return self.data.dtype

    @property
    def _row_ids(self) -> IntArray:
        """Row index of each stored entry (cached; used by the kernels)."""
        if self._row_ids_cache is None:
            self._row_ids_cache = np.repeat(
                np.arange(self.shape[0]), np.diff(self.indptr)
            )
        return self._row_ids_cache

    @property
    def _nonempty_rows(self) -> IntArray:
        """Indices of rows holding at least one entry (cached)."""
        if self._nonempty_rows_cache is None:
            self._nonempty_rows_cache = np.flatnonzero(np.diff(self.indptr))
        return self._nonempty_rows_cache

    @property
    def _col_segments(self) -> Tuple[IntArray, IntArray, IntArray]:
        """Column-sorted view for transposed segment sums (cached).

        Returns ``(order, starts, nonempty_cols)`` where ``order`` sorts
        the stored entries by column, ``nonempty_cols`` lists columns
        with at least one entry, and ``starts[i]`` is the offset of
        ``nonempty_cols[i]``'s first entry in the sorted array.
        """
        if self._col_cache is None:
            order = np.argsort(self.indices, kind="stable")
            counts = np.bincount(self.indices, minlength=self.shape[1])
            col_indptr = np.zeros(self.shape[1] + 1, dtype=np.int64)
            np.cumsum(counts, out=col_indptr[1:])
            nonempty = np.flatnonzero(counts)
            self._col_cache = (order, col_indptr[nonempty], nonempty)
        return self._col_cache

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.shape != (n_rows + 1,):
            raise ValueError(
                f"indptr must have length n_rows + 1 = {n_rows + 1}, "
                f"got {self.indptr.shape[0]}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.shape[0]:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.data.shape != self.indices.shape:
            raise ValueError("data and indices must have the same length")
        if self.data.shape[0] and (
            self.indices.min() < 0 or self.indices.max() >= n_cols
        ):
            raise ValueError("column indices out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, array: FloatArray) -> "CSRMatrix":
        """Build a CSR matrix from a dense 2-D array, dropping zeros.

        Float32 input stays float32; everything else becomes float64.
        """
        array = as_value_dtype(array)
        if array.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={array.ndim}")
        rows, cols = np.nonzero(array)
        data = array[rows, cols]
        indptr = np.zeros(array.shape[0] + 1, dtype=np.int64)
        counts = np.bincount(rows, minlength=array.shape[0])
        indptr[1:] = np.cumsum(counts)
        return cls(data, cols.astype(np.int64), indptr, array.shape)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Tuple[Iterable[int], Iterable[float]]],
        n_cols: int,
    ) -> "CSRMatrix":
        """Build from per-row ``(column_indices, values)`` pairs."""
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        all_indices = []
        all_data = []
        for i, (cols, vals) in enumerate(rows):
            cols = np.asarray(list(cols), dtype=np.int64)
            vals = np.asarray(list(vals), dtype=np.float64)
            if cols.shape != vals.shape:
                raise ValueError(f"row {i}: indices and values length mismatch")
            order = np.argsort(cols, kind="stable")
            all_indices.append(cols[order])
            all_data.append(vals[order])
            indptr[i + 1] = indptr[i] + cols.shape[0]
        data = np.concatenate(all_data) if all_data else np.empty(0)
        indices = (
            np.concatenate(all_indices) if all_indices else np.empty(0, np.int64)
        )
        return cls(data, indices, indptr, (len(rows), n_cols))

    @classmethod
    def from_scipy(cls, matrix) -> "CSRMatrix":
        """Convert any scipy.sparse matrix to this CSR type."""
        csr = matrix.tocsr()
        return cls(
            as_value_dtype(csr.data),
            np.asarray(csr.indices, dtype=np.int64),
            np.asarray(csr.indptr, dtype=np.int64),
            csr.shape,
        )

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix``."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    def to_dense(self) -> FloatArray:
        """Materialize the matrix as a dense ndarray."""
        out = np.zeros(self.shape, dtype=self.dtype)
        out[self._row_ids, self.indices] = self.data
        return out

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.data.copy(), self.indices.copy(), self.indptr.copy(), self.shape
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Total number of stored non-zeros."""
        return int(self.data.shape[0])

    @property
    def T(self) -> "CSRMatrix":
        """Transpose, returned as a CSR matrix.

        Complexity: O(nnz log nnz) on the first call (the column sort);
        O(1) afterwards.

        Cached after the first call (and back-linked, so ``A.T.T is A``):
        ``rmatmat`` reuses it on every block product, and the stored
        arrays are treated as immutable throughout the package.
        """
        if self._transpose_cache is None:
            n_rows, n_cols = self.shape
            order, _, _ = self._col_segments
            new_indices = self._row_ids[order]
            new_data = self.data[order]
            counts = np.bincount(self.indices, minlength=n_cols)
            new_indptr = np.zeros(n_cols + 1, dtype=np.int64)
            new_indptr[1:] = np.cumsum(counts)
            transpose = CSRMatrix(
                new_data, new_indices, new_indptr, (n_cols, n_rows)
            )
            transpose._transpose_cache = self
            self._transpose_cache = transpose
        return self._transpose_cache

    def row_nnz(self) -> IntArray:
        """Number of non-zeros in each row (the paper's ``s`` statistic)."""
        return np.diff(self.indptr)

    def mean_nnz_per_row(self) -> float:
        """Average non-zeros per sample — ``s`` in the complexity model."""
        if self.shape[0] == 0:
            return 0.0
        return self.nnz / self.shape[0]

    # ------------------------------------------------------------------
    # Core products
    # ------------------------------------------------------------------
    def matvec(self, v: FloatArray) -> FloatArray:
        """Compute ``A @ v``.

        Complexity: O(nnz) — one multiply-add per stored entry, the
        Table-I unit price the linear-time claim is built on.
        """
        v = as_value_dtype(v)
        if v.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects a vector of length {self.shape[1]}, "
                f"got shape {v.shape}"
            )
        products = self.data * v[self.indices]
        if products.dtype == np.float64:
            # bincount is the fastest pure-numpy segmented sum (np.add.at
            # is an order of magnitude slower on large nnz) — but it
            # always emits float64, so float32 takes reduceat below.
            # (astype guards the nnz == 0 corner, where bincount ignores
            # the weights dtype and emits int64.)
            return np.bincount(
                self._row_ids, weights=products, minlength=self.shape[0]
            ).astype(np.float64, copy=False)
        out = np.zeros(self.shape[0], dtype=products.dtype)
        rows = self._nonempty_rows
        if rows.size:
            out[rows] = np.add.reduceat(products, self.indptr[rows])
        return out

    def rmatvec(self, u: FloatArray) -> FloatArray:
        """Compute ``A.T @ u``.

        Complexity: O(nnz) — adjoint sweep at the same unit price as
        :meth:`matvec`.
        """
        u = as_value_dtype(u)
        if u.shape != (self.shape[0],):
            raise ValueError(
                f"rmatvec expects a vector of length {self.shape[0]}, "
                f"got shape {u.shape}"
            )
        return self.reduce_adjoint_products(self.data * u[self._row_ids])

    def reduce_adjoint_products(
        self, products: FloatArray, out: Optional[FloatArray] = None
    ) -> FloatArray:
        """Reduce per-entry adjoint products to ``A.T @ u``.

        ``products`` must be ``data * u[row_ids]`` in storage order — the
        elementwise stage of :meth:`rmatvec`.  Splitting the product this
        way lets a row-sharded operator compute the elementwise stage
        shard-by-shard (each shard owns a contiguous slice of storage
        order) and still apply this one *canonical* reduction, making the
        sharded adjoint bitwise identical to the unsharded one.

        ``out``, when given, receives the reduction in place and is
        returned — callers that hold a long-lived column buffer (a
        solver's adjoint accumulator, say) keep a stable destination
        across products.  Results are **bitwise identical** with and
        without ``out``: both forms run the same per-dtype reduction
        kernel (``bincount``'s sequential fold for float64, segmented
        ``reduceat`` otherwise — the two accumulate in different orders,
        so they are *not* interchangeable at the bit level).
        """
        if products.shape != self.data.shape:
            raise ValueError(
                f"expected {self.data.shape[0]} adjoint products, "
                f"got shape {products.shape}"
            )
        if out is not None:
            if out.shape != (self.shape[1],):
                raise ValueError(
                    f"out must have shape ({self.shape[1]},), "
                    f"got {out.shape}"
                )
            if out.dtype != products.dtype:
                raise ValueError(
                    f"out dtype {out.dtype} does not match products "
                    f"dtype {products.dtype}"
                )
        if products.dtype == np.float64:
            reduced = np.bincount(
                self.indices, weights=products, minlength=self.shape[1]
            ).astype(np.float64, copy=False)
            if out is None:
                return reduced
            out[:] = reduced
            return out
        if out is None:
            out = np.zeros(self.shape[1], dtype=products.dtype)
        else:
            out[:] = 0
        order, starts, cols = self._col_segments
        if cols.size:
            out[cols] = np.add.reduceat(products[order], starts)
        return out

    def matmat(self, B: FloatArray) -> FloatArray:
        """Compute ``A @ B`` for a dense block ``B``.

        Complexity: O(nnz·c) for a ``c``-column block — identical flam
        to ``c`` mat-vecs; only the wall-clock constant differs.

        Sweeps the columns of ``B`` through a fused
        gather–multiply–``reduceat`` kernel: contiguous column slices of
        the Fortran-ordered copy feed a single segmented sum over the
        cached non-empty row starts.  Column-for-column this runs ~2×
        faster than the ``bincount`` mat-vec (measured; 1-D reduceat is
        the fastest segmented sum numpy exposes once the segment starts
        exist), which is what the block LSQR solver banks on.  The
        result is Fortran-ordered so downstream per-column work stays on
        contiguous memory.
        """
        B = as_value_dtype(B)
        if B.ndim == 1:
            return self.matvec(B)
        if B.shape[0] != self.shape[1]:
            raise ValueError("dimension mismatch in matmat")
        k = B.shape[1]
        if k == 1:
            return self.matvec(B[:, 0])[:, None]
        dtype = np.result_type(self.data, B)
        Bf = np.asfortranarray(B, dtype=dtype)
        out = np.zeros((self.shape[0], k), dtype=dtype, order="F")
        rows = self._nonempty_rows
        if not rows.size:
            return out
        starts = self.indptr[rows]
        dense_rows = rows.size == self.shape[0]
        for j in range(k):
            products = self.data * Bf[:, j][self.indices]
            if dense_rows:
                np.add.reduceat(products, starts, out=out[:, j])
            else:
                # empty rows stay zero; consecutive non-empty starts are
                # exactly the segment boundaries reduceat needs
                out[rows, j] = np.add.reduceat(products, starts)
        return out

    def rmatmat(self, U: FloatArray) -> FloatArray:
        """Compute ``A.T @ U`` for a dense block ``U``.

        Complexity: O(nnz·c) per call — plus a first-call
        ``O(nnz log nnz)`` transpose build, amortized over every later
        block product.

        Routed through the (lazily cached) transpose so it reuses the
        forward sweep kernel.
        """
        U = as_value_dtype(U)
        if U.ndim == 1:
            return self.rmatvec(U)
        if U.shape[0] != self.shape[0]:
            raise ValueError("dimension mismatch in rmatmat")
        if U.shape[1] == 1:
            return self.rmatvec(U[:, 0])[:, None]
        return self.T.matmat(U)

    def __matmul__(self, other):
        if isinstance(other, np.ndarray):
            return self.matmat(other)
        return NotImplemented

    # ------------------------------------------------------------------
    # Column statistics and row transforms
    # ------------------------------------------------------------------
    def column_means(self) -> FloatArray:
        """Per-column mean — the sample mean vector used for centering."""
        # bincount, not np.add.at — same reasoning as the mat-vec kernel
        # (np.add.at is an order of magnitude slower on large nnz)
        sums = np.bincount(
            self.indices,
            weights=self.data.astype(np.float64, copy=False),
            minlength=self.shape[1],
        ).astype(np.float64, copy=False)
        if self.shape[0] == 0:
            return sums
        return sums / self.shape[0]

    def row_norms(self) -> FloatArray:
        """Euclidean norm of each row.

        Each row is rescaled by its largest magnitude before squaring so
        tiny (subnormal-squared) and huge (overflowing) entries keep full
        precision.
        """
        row_ids = self._row_ids
        scale = np.zeros(self.shape[0], dtype=np.float64)
        np.maximum.at(scale, row_ids, np.abs(self.data))
        safe_scale = np.where(scale > 0, scale, 1.0)
        scaled = self.data / safe_scale[row_ids]
        sq = np.bincount(row_ids, weights=scaled**2, minlength=self.shape[0])
        return scale * np.sqrt(sq)

    def normalize_rows(self) -> "CSRMatrix":
        """Return a copy with each non-empty row scaled to unit L2 norm.

        Normalizes in two steps — rescale each row by its largest
        magnitude, then by the (now well-conditioned) norm of the
        rescaled row — so even rows of subnormal values come out exactly
        unit length instead of losing their low mantissa bits to a
        single subnormal division.
        """
        row_ids = self._row_ids
        scale = np.zeros(self.shape[0], dtype=np.float64)
        np.maximum.at(scale, row_ids, np.abs(self.data))
        safe_scale = np.where(scale > 0, scale, 1.0)
        rescaled = self.data / safe_scale[row_ids]
        sq = np.bincount(row_ids, weights=rescaled**2, minlength=self.shape[0])
        norms = np.sqrt(sq)
        safe_norms = np.where(norms > 0, norms, 1.0)
        return CSRMatrix(
            (rescaled / safe_norms[row_ids]).astype(self.dtype, copy=False),
            self.indices.copy(),
            self.indptr.copy(),
            self.shape,
        )

    def take_rows(self, row_indices: IntArray) -> "CSRMatrix":
        """Select rows (with repetition allowed), as fancy indexing does."""
        row_indices = np.asarray(row_indices, dtype=np.int64)
        if row_indices.size and (
            row_indices.min() < 0 or row_indices.max() >= self.shape[0]
        ):
            raise IndexError("row index out of range")
        lengths = np.diff(self.indptr)[row_indices]
        new_indptr = np.zeros(row_indices.shape[0] + 1, dtype=np.int64)
        new_indptr[1:] = np.cumsum(lengths)
        total = int(new_indptr[-1])
        # vectorized gather: for each output slot, its source position is
        # (selected row's start) + (offset within the row)
        starts = np.repeat(self.indptr[row_indices], lengths)
        within = np.arange(total) - np.repeat(new_indptr[:-1], lengths)
        gather = starts + within
        return CSRMatrix(
            self.data[gather],
            self.indices[gather],
            new_indptr,
            (row_indices.shape[0], self.shape[1]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.nnz / max(1, self.shape[0] * self.shape[1]):.4f})"
        )


def is_sparse(X) -> bool:
    """True if ``X`` is our CSR type or any scipy.sparse matrix.

    Complexity: O(1) — type inspection only, never touches the data.
    """
    if isinstance(X, CSRMatrix):
        return True
    try:
        from scipy.sparse import issparse

        return bool(issparse(X))
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return False
