"""A minimal compressed-sparse-row (CSR) matrix.

The paper's headline result — LDA training in time linear in the number of
non-zeros — depends on the solver only ever touching the data through
``X @ v`` and ``X.T @ u`` products over a sparse matrix.  This module
provides that substrate from scratch: a CSR container with exactly the
operations SRDA needs (mat-vec, transposed mat-vec, row slicing for
train/test splits, column means for centering, row normalization for TF
vectors) plus interop with ``scipy.sparse`` so users can bring their own
matrices.

The heavy loops are expressed with numpy ufuncs (``np.add.reduceat``,
``np.bincount``) rather than Python-level iteration, so the from-scratch
implementation stays usable at the paper's data scale (tens of thousands
of rows, ~26k columns).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np


class CSRMatrix:
    """Compressed sparse row matrix with float64 values.

    Parameters
    ----------
    data:
        Non-zero values, concatenated row by row.
    indices:
        Column index of each value in ``data``.
    indptr:
        Row pointer array of length ``n_rows + 1``; row ``i`` owns the
        slice ``data[indptr[i]:indptr[i + 1]]``.
    shape:
        ``(n_rows, n_cols)``.
    """

    def __init__(
        self,
        data: np.ndarray,
        indices: np.ndarray,
        indptr: np.ndarray,
        shape: Tuple[int, int],
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._row_ids_cache: np.ndarray = None
        self._validate()

    @property
    def _row_ids(self) -> np.ndarray:
        """Row index of each stored entry (cached; used by the kernels)."""
        if self._row_ids_cache is None:
            self._row_ids_cache = np.repeat(
                np.arange(self.shape[0]), np.diff(self.indptr)
            )
        return self._row_ids_cache

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.shape != (n_rows + 1,):
            raise ValueError(
                f"indptr must have length n_rows + 1 = {n_rows + 1}, "
                f"got {self.indptr.shape[0]}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.shape[0]:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.data.shape != self.indices.shape:
            raise ValueError("data and indices must have the same length")
        if self.data.shape[0] and (
            self.indices.min() < 0 or self.indices.max() >= n_cols
        ):
            raise ValueError("column indices out of range")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, array: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a dense 2-D array, dropping zeros."""
        array = np.asarray(array, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={array.ndim}")
        rows, cols = np.nonzero(array)
        data = array[rows, cols]
        indptr = np.zeros(array.shape[0] + 1, dtype=np.int64)
        counts = np.bincount(rows, minlength=array.shape[0])
        indptr[1:] = np.cumsum(counts)
        return cls(data, cols.astype(np.int64), indptr, array.shape)

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Tuple[Iterable[int], Iterable[float]]],
        n_cols: int,
    ) -> "CSRMatrix":
        """Build from per-row ``(column_indices, values)`` pairs."""
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        all_indices = []
        all_data = []
        for i, (cols, vals) in enumerate(rows):
            cols = np.asarray(list(cols), dtype=np.int64)
            vals = np.asarray(list(vals), dtype=np.float64)
            if cols.shape != vals.shape:
                raise ValueError(f"row {i}: indices and values length mismatch")
            order = np.argsort(cols, kind="stable")
            all_indices.append(cols[order])
            all_data.append(vals[order])
            indptr[i + 1] = indptr[i] + cols.shape[0]
        data = np.concatenate(all_data) if all_data else np.empty(0)
        indices = (
            np.concatenate(all_indices) if all_indices else np.empty(0, np.int64)
        )
        return cls(data, indices, indptr, (len(rows), n_cols))

    @classmethod
    def from_scipy(cls, matrix) -> "CSRMatrix":
        """Convert any scipy.sparse matrix to this CSR type."""
        csr = matrix.tocsr()
        return cls(
            np.asarray(csr.data, dtype=np.float64),
            np.asarray(csr.indices, dtype=np.int64),
            np.asarray(csr.indptr, dtype=np.int64),
            csr.shape,
        )

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix``."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the matrix as a dense ndarray."""
        out = np.zeros(self.shape, dtype=np.float64)
        out[self._row_ids, self.indices] = self.data
        return out

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.data.copy(), self.indices.copy(), self.indptr.copy(), self.shape
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Total number of stored non-zeros."""
        return int(self.data.shape[0])

    @property
    def T(self) -> "CSRMatrix":
        """Transpose, returned as a new CSR matrix."""
        n_rows, n_cols = self.shape
        order = np.argsort(self.indices, kind="stable")
        new_indices = self._row_ids[order]
        new_data = self.data[order]
        counts = np.bincount(self.indices, minlength=n_cols)
        new_indptr = np.zeros(n_cols + 1, dtype=np.int64)
        new_indptr[1:] = np.cumsum(counts)
        return CSRMatrix(new_data, new_indices, new_indptr, (n_cols, n_rows))

    def row_nnz(self) -> np.ndarray:
        """Number of non-zeros in each row (the paper's ``s`` statistic)."""
        return np.diff(self.indptr)

    def mean_nnz_per_row(self) -> float:
        """Average non-zeros per sample — ``s`` in the complexity model."""
        if self.shape[0] == 0:
            return 0.0
        return self.nnz / self.shape[0]

    # ------------------------------------------------------------------
    # Core products
    # ------------------------------------------------------------------
    def matvec(self, v: np.ndarray) -> np.ndarray:
        """Compute ``A @ v`` in O(nnz)."""
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects a vector of length {self.shape[1]}, "
                f"got shape {v.shape}"
            )
        products = self.data * v[self.indices]
        # bincount is the fastest pure-numpy segmented sum (np.add.at is
        # an order of magnitude slower on large nnz)
        return np.bincount(
            self._row_ids, weights=products, minlength=self.shape[0]
        )

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """Compute ``A.T @ u`` in O(nnz)."""
        u = np.asarray(u, dtype=np.float64)
        if u.shape != (self.shape[0],):
            raise ValueError(
                f"rmatvec expects a vector of length {self.shape[0]}, "
                f"got shape {u.shape}"
            )
        products = self.data * u[self._row_ids]
        return np.bincount(
            self.indices, weights=products, minlength=self.shape[1]
        )

    def matmat(self, B: np.ndarray) -> np.ndarray:
        """Compute ``A @ B`` for a dense matrix ``B`` column by column."""
        B = np.asarray(B, dtype=np.float64)
        if B.ndim == 1:
            return self.matvec(B)
        if B.shape[0] != self.shape[1]:
            raise ValueError("dimension mismatch in matmat")
        out = np.empty((self.shape[0], B.shape[1]), dtype=np.float64)
        for j in range(B.shape[1]):
            out[:, j] = self.matvec(B[:, j])
        return out

    def __matmul__(self, other):
        if isinstance(other, np.ndarray):
            return self.matmat(other)
        return NotImplemented

    # ------------------------------------------------------------------
    # Column statistics and row transforms
    # ------------------------------------------------------------------
    def column_means(self) -> np.ndarray:
        """Per-column mean — the sample mean vector used for centering."""
        sums = np.zeros(self.shape[1], dtype=np.float64)
        np.add.at(sums, self.indices, self.data)
        if self.shape[0] == 0:
            return sums
        return sums / self.shape[0]

    def row_norms(self) -> np.ndarray:
        """Euclidean norm of each row.

        Each row is rescaled by its largest magnitude before squaring so
        tiny (subnormal-squared) and huge (overflowing) entries keep full
        precision.
        """
        row_ids = self._row_ids
        scale = np.zeros(self.shape[0], dtype=np.float64)
        np.maximum.at(scale, row_ids, np.abs(self.data))
        safe_scale = np.where(scale > 0, scale, 1.0)
        scaled = self.data / safe_scale[row_ids]
        sq = np.bincount(row_ids, weights=scaled**2, minlength=self.shape[0])
        return scale * np.sqrt(sq)

    def normalize_rows(self) -> "CSRMatrix":
        """Return a copy with each non-empty row scaled to unit L2 norm."""
        norms = self.row_norms()
        safe_norms = np.where(norms > 0, norms, 1.0)
        return CSRMatrix(
            self.data / safe_norms[self._row_ids],
            self.indices.copy(),
            self.indptr.copy(),
            self.shape,
        )

    def take_rows(self, row_indices: np.ndarray) -> "CSRMatrix":
        """Select rows (with repetition allowed), as fancy indexing does."""
        row_indices = np.asarray(row_indices, dtype=np.int64)
        if row_indices.size and (
            row_indices.min() < 0 or row_indices.max() >= self.shape[0]
        ):
            raise IndexError("row index out of range")
        lengths = np.diff(self.indptr)[row_indices]
        new_indptr = np.zeros(row_indices.shape[0] + 1, dtype=np.int64)
        new_indptr[1:] = np.cumsum(lengths)
        total = int(new_indptr[-1])
        # vectorized gather: for each output slot, its source position is
        # (selected row's start) + (offset within the row)
        starts = np.repeat(self.indptr[row_indices], lengths)
        within = np.arange(total) - np.repeat(new_indptr[:-1], lengths)
        gather = starts + within
        return CSRMatrix(
            self.data[gather],
            self.indices[gather],
            new_indptr,
            (row_indices.shape[0], self.shape[1]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.nnz / max(1, self.shape[0] * self.shape[1]):.4f})"
        )


def is_sparse(X) -> bool:
    """True if ``X`` is our CSR type or any scipy.sparse matrix."""
    if isinstance(X, CSRMatrix):
        return True
    try:
        from scipy.sparse import issparse

        return bool(issparse(X))
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return False
