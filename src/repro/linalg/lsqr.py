"""LSQR — Paige & Saunders' iterative solver for sparse least squares.

This is the engine behind the paper's title claim.  Each LSQR iteration
touches the data only through one ``A @ v`` and one ``A.T @ u`` product,
so on a sparse matrix with ``s`` non-zeros per row the per-iteration cost
is ``2 m s + 3 m + 5 n`` flam and the total cost for SRDA's ``c-1``
regression problems is linear in both ``m`` and ``n``.  The paper runs a
fixed, small iteration count (15–20) and observes convergence.

Implementation follows Paige & Saunders, *ACM TOMS* 8(1):43–71 (1982)
and the companion Algorithm 583 paper:

- Golub–Kahan bidiagonalization of ``A`` started from ``b``;
- QR factorization of the bidiagonal matrix updated by Givens rotations;
- built-in Tikhonov damping: solves ``min ‖Ax - b‖² + damp²‖x‖²`` without
  forming the augmented system;
- the standard stopping rules (atol/btol on the residual, conlim on the
  condition estimate) plus a hard iteration limit.

Works on anything accepted by :func:`repro.linalg.operators.as_operator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro._typing import FloatArray, MatrixLike

from repro.linalg.operators import (
    IdentityOperator,
    LinearOperator,
    StackedOperator,
    as_operator,
)
from repro.observability.hooks import IterationEvent, IterationHook

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.linalg.sketch import SketchPreconditioner

#: Human-readable meanings of the termination codes.  0–7 follow Paige &
#: Saunders / Algorithm 583; 8 and 9 are this implementation's explicit
#: failure codes — previously those runs silently returned garbage.
ISTOP_REASONS = {
    0: "x = 0 is the exact solution",
    1: "residual small enough (btol test)",
    2: "least-squares optimality reached (atol test)",
    3: "condition estimate exceeded conlim",
    4: "residual as small as machine precision allows",
    5: "optimality as small as machine precision allows",
    6: "condition estimate at machine-precision limit",
    7: "iteration limit reached before convergence tests fired",
    8: "non-finite values encountered (diverged or faulty operator)",
    9: "residual stagnated far from optimality",
}

#: Codes that indicate the run failed to make progress (8 = divergence /
#: NaN contamination, 9 = stagnation).  Code 7 is *not* listed: hitting
#: the iteration cap is normal operation for the paper's fixed 15–20
#: iteration protocol (``tol = 0``); callers decide whether it matters.
FAILURE_ISTOPS = frozenset({8, 9})

#: Consecutive no-progress iterations before stagnation is declared.
_STAGNATION_WINDOW = 5
#: Relative residual decrease below which an iteration counts as stalled.
_STAGNATION_RTOL = 1e-12
#: Optimality levels that must *both* still be poor for a plateau to be
#: stagnation rather than ordinary convergence with tol = 0.
_STAGNATION_FLOOR = 1e-6


@dataclass
class LSQRResult:
    """Outcome of an LSQR run.

    Attributes
    ----------
    x:
        The solution estimate.
    istop:
        Why the iteration stopped: 0 = x=0 is the exact solution,
        1 = residual small (btol test), 2 = least-squares optimality
        (atol test), 3 = condition-number limit, 7 = iteration limit,
        8 = non-finite values (divergence/faulty operator),
        9 = stagnation far from optimality.  See :data:`ISTOP_REASONS`.
    itn:
        Iterations performed.
    r1norm:
        ``‖b - Ax‖`` (undamped residual norm).
    r2norm:
        ``sqrt(‖b - Ax‖² + damp²‖x‖²)`` — the quantity LSQR minimizes.
    anorm, acond:
        Frobenius-norm and condition estimates of the (damped) operator.
    arnorm:
        ``‖Aᵀr‖`` — the least-squares optimality residual.
    xnorm:
        ``‖x‖``.
    residual_history:
        ``r2norm`` after each iteration, when history recording is on.
    """

    x: FloatArray
    istop: int
    itn: int
    r1norm: float
    r2norm: float
    anorm: float
    acond: float
    arnorm: float
    xnorm: float
    residual_history: List[float] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """True when the run diverged (8) or stagnated (9)."""
        return self.istop in FAILURE_ISTOPS

    @property
    def converged(self) -> bool:
        """True when a convergence test fired (not a cap or a failure)."""
        return self.istop in (0, 1, 2, 4, 5)

    @property
    def stop_reason(self) -> str:
        """Human-readable meaning of :attr:`istop`."""
        return ISTOP_REASONS.get(self.istop, f"unknown code {self.istop}")


def lsqr(
    A: "MatrixLike",
    b: FloatArray,
    damp: float = 0.0,
    atol: float = 1e-8,
    btol: float = 1e-8,
    conlim: float = 1e8,
    iter_lim: Optional[int] = None,
    x0: Optional[FloatArray] = None,
    record_history: bool = False,
    on_iteration: Optional[IterationHook] = None,
    precondition: Optional["SketchPreconditioner"] = None,
) -> LSQRResult:
    """Solve ``min_x ‖A x - b‖² + damp² ‖x‖²`` by the LSQR iteration.

    Complexity: O(iters·(nnz + m + n)) — the paper's headline: each
    Golub–Kahan step costs one ``matvec`` plus one ``rmatvec``
    (``2·nnz`` flam) and a handful of length-``m``/``n`` vector ops.

    Parameters
    ----------
    A:
        Dense array, sparse matrix, or :class:`LinearOperator` of shape
        ``(m, n)``.
    b:
        Right-hand side of length ``m``.
    damp:
        Tikhonov damping √α; ``damp > 0`` gives exactly the ridge
        solution SRDA needs.
    atol, btol:
        Relative stopping tolerances (see Paige & Saunders §6).
    conlim:
        Stop when the condition estimate exceeds this.
    iter_lim:
        Hard iteration cap; defaults to ``2 n``.  SRDA uses small fixed
        values (15–20) per the paper.
    x0:
        Optional warm start; internally LSQR solves for the correction
        ``x - x0`` against the shifted residual.
    record_history:
        Keep ``r2norm`` per iteration (used by the convergence ablation).
    on_iteration:
        Optional observability hook called with one
        :class:`~repro.observability.hooks.IterationEvent` per counted
        iteration — the firing count always equals the returned
        ``itn``, including on divergence (events fired at an istop=8
        break carry the last finite diagnostics).
    precondition:
        Optional right preconditioner from
        :func:`repro.linalg.sketch.build_preconditioner`.  The
        iteration then runs on ``A R⁻¹`` (with damping and warm starts
        folded into an explicit augmented system, since LSQR's internal
        damping would penalize the preconditioned variable ``z`` rather
        than ``x = R⁻¹ z``) and the solution is mapped back through
        ``R⁻¹``.  ``r1norm``/``r2norm``/``xnorm`` are recomputed
        against the *original* system; ``anorm``/``acond``/``arnorm``
        and the residual history describe the preconditioned system the
        iteration actually ran on.  For the exact ridge problem the
        preconditioner should be built with ``alpha = damp²``.
    """
    op = as_operator(A)
    m, n = op.shape
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (m,):
        raise ValueError(f"b must have length {m}, got shape {b.shape}")
    if damp < 0:
        raise ValueError("damp must be non-negative")
    if iter_lim is None:
        iter_lim = 2 * n
    if iter_lim < 0:
        raise ValueError("iter_lim must be non-negative")

    if precondition is not None:
        if precondition.n != n:
            raise ValueError(
                f"preconditioner dimension {precondition.n} does not "
                f"match operator column count {n}"
            )
        if x0 is not None:
            x0 = np.asarray(x0, dtype=np.float64)
            if x0.shape != (n,):
                raise ValueError(f"x0 must have length {n}")
        # Fold damping (and any warm start) into an explicit augmented
        # system: LSQR's built-in damp would penalize ‖z‖ = ‖Rx‖, not
        # ‖x‖, under a right preconditioner.
        system: LinearOperator = op
        if damp > 0:
            system = StackedOperator(
                op, IdentityOperator(n, scale=damp, dtype=op.dtype)
            )
        top = b if x0 is None else b - np.asarray(
            op.matvec(x0), dtype=np.float64
        )
        if damp > 0:
            tail = np.zeros(n) if x0 is None else -damp * x0
            rhs = np.concatenate([top, tail])
        else:
            rhs = top
        inner = lsqr(
            precondition.wrap(system),
            rhs,
            damp=0.0,
            atol=atol,
            btol=btol,
            conlim=conlim,
            iter_lim=iter_lim,
            record_history=record_history,
            on_iteration=on_iteration,
        )
        x = np.asarray(precondition.apply(inner.x), dtype=np.float64)
        if x0 is not None:
            x = x + x0
        residual = b - np.asarray(op.matvec(x), dtype=np.float64)
        r1norm = float(np.linalg.norm(residual))
        xnorm = float(np.linalg.norm(x))
        return LSQRResult(
            x=x,
            istop=inner.istop,
            itn=inner.itn,
            r1norm=r1norm,
            r2norm=float(np.sqrt(r1norm**2 + (damp * xnorm) ** 2)),
            anorm=inner.anorm,
            acond=inner.acond,
            arnorm=inner.arnorm,
            xnorm=xnorm,
            residual_history=inner.residual_history,
        )

    if x0 is not None:
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != (n,):
            raise ValueError(f"x0 must have length {n}")
        if damp > 0:
            # Warm-starting the damped problem needs care: solving for
            # the correction d = x − x0 must penalize ‖x0 + d‖, not
            # ‖d‖.  Solve the explicit augmented system
            #   [A; damp·I] d ≈ [b − A·x0; −damp·x0]
            # with the plain (damp = 0) iteration, then shift back.
            stacked = StackedOperator(
                op, IdentityOperator(n, scale=damp, dtype=op.dtype)
            )
            extended_b = np.concatenate(
                [b - op.matvec(x0), -damp * x0]
            )
            inner = lsqr(
                stacked,
                extended_b,
                damp=0.0,
                atol=atol,
                btol=btol,
                conlim=conlim,
                iter_lim=iter_lim,
                record_history=record_history,
                on_iteration=on_iteration,
            )
            x = inner.x + x0
            residual = b - op.matvec(x)
            return LSQRResult(
                x=x,
                istop=inner.istop,
                itn=inner.itn,
                r1norm=float(np.linalg.norm(residual)),
                r2norm=float(
                    np.sqrt(
                        np.linalg.norm(residual) ** 2
                        + (damp * np.linalg.norm(x)) ** 2
                    )
                ),
                anorm=inner.anorm,
                acond=inner.acond,
                arnorm=inner.arnorm,
                xnorm=float(np.linalg.norm(x)),
                residual_history=inner.residual_history,
            )

    x = np.zeros(n)
    u = b.copy()
    if x0 is not None:
        u = u - op.matvec(x0)

    history: List[float] = []

    itn = 0
    istop = 0
    ctol = 1.0 / conlim if conlim > 0 else 0.0
    anorm = 0.0
    acond = 0.0
    dampsq = damp * damp
    ddnorm = 0.0
    res2 = 0.0
    xnorm = 0.0
    xxnorm = 0.0
    z = 0.0
    cs2 = -1.0
    sn2 = 0.0

    alfa = 0.0
    beta = np.linalg.norm(u)
    v = np.zeros(n)
    if beta > 0:
        u /= beta
        v = op.rmatvec(u)
        alfa = np.linalg.norm(v)
        if alfa > 0:
            v /= alfa
    w = v.copy()

    rhobar = alfa
    phibar = beta
    bnorm = beta
    rnorm = beta
    r1norm = rnorm
    r2norm = rnorm
    arnorm = alfa * beta

    if arnorm == 0.0:
        # b lies in the null space of Aᵀ (or b == 0): x = x0 is optimal.
        x_final = x if x0 is None else x + x0
        return LSQRResult(
            x=x_final,
            istop=0,
            itn=0,
            r1norm=r1norm,
            r2norm=r2norm,
            anorm=0.0,
            acond=0.0,
            arnorm=0.0,
            xnorm=float(np.linalg.norm(x_final)),
            residual_history=history,
        )

    prev_r2norm = r2norm
    stalled_iterations = 0

    def _notify(current_istop: int) -> None:
        # Exactly one event per counted iteration: every `break` below
        # is preceded by a call, and the loop bottom covers the
        # continuing path.  Early breaks (non-finite beta/alfa) fire
        # with the last finite diagnostics.
        if on_iteration is not None:
            on_iteration(
                IterationEvent(
                    solver="lsqr",
                    itn=itn,
                    r2norm=float(r2norm),
                    arnorm=float(arnorm),
                    istop=current_istop,
                )
            )

    while itn < iter_lim:
        itn += 1
        # Continue the bidiagonalization: beta*u = A v - alfa*u
        u = op.matvec(v) - alfa * u
        beta = np.linalg.norm(u)
        if not np.isfinite(beta):
            # A NaN/Inf entered through the operator (or the iteration
            # diverged); x still holds the last finite iterate.
            istop = 8
            _notify(istop)
            break
        if beta > 0:
            u /= beta
            anorm = np.sqrt(anorm**2 + alfa**2 + beta**2 + dampsq)
            v = op.rmatvec(u) - beta * v
            alfa = np.linalg.norm(v)
            if not np.isfinite(alfa):
                istop = 8
                _notify(istop)
                break
            if alfa > 0:
                v /= alfa
        else:
            anorm = np.sqrt(anorm**2 + alfa**2 + dampsq)

        # Eliminate the damping parameter with a rotation.
        if damp > 0:
            rhobar1 = np.sqrt(rhobar**2 + dampsq)
            cs1 = rhobar / rhobar1
            sn1 = damp / rhobar1
            psi = sn1 * phibar
            phibar = cs1 * phibar
        else:
            rhobar1 = rhobar
            psi = 0.0

        # Plane rotation to eliminate the subdiagonal of the bidiagonal.
        rho = np.sqrt(rhobar1**2 + beta**2)
        cs = rhobar1 / rho
        sn = beta / rho
        theta = sn * alfa
        rhobar = -cs * alfa
        phi = cs * phibar
        phibar = sn * phibar
        tau = sn * phi

        # Update x and the search direction w.
        t1 = phi / rho
        t2 = -theta / rho
        dk = w / rho
        x += t1 * w
        w = v + t2 * w
        ddnorm += np.linalg.norm(dk) ** 2

        # Estimate ‖x‖ (uses another rotation to account for damping).
        delta = sn2 * rho
        gambar = -cs2 * rho
        rhs = phi - delta * z
        zbar = rhs / gambar
        xnorm = np.sqrt(xxnorm + zbar**2)
        gamma = np.sqrt(gambar**2 + theta**2)
        cs2 = gambar / gamma
        sn2 = theta / gamma
        z = rhs / gamma
        xxnorm += z**2

        # Convergence diagnostics.
        acond = anorm * np.sqrt(ddnorm)
        res1 = phibar**2
        res2 += psi**2
        rnorm = np.sqrt(res1 + res2)
        arnorm = alfa * abs(tau)

        r1sq = rnorm**2 - dampsq * xxnorm
        r1norm = np.sqrt(abs(r1sq))
        if r1sq < 0:
            r1norm = -r1norm
        r2norm = rnorm

        if record_history:
            history.append(float(r2norm))

        test1 = rnorm / bnorm if bnorm > 0 else 0.0
        test2 = arnorm / (anorm * rnorm) if anorm * rnorm > 0 else 0.0
        test3 = 1.0 / acond if acond > 0 else 0.0

        if not np.isfinite(r2norm) or not np.isfinite(xnorm):
            istop = 8
            _notify(istop)
            break
        # Stagnation: several consecutive iterations with no residual
        # progress while *both* residual and optimality tests are still
        # far from firing.  A plateau at the least-squares optimum is
        # normal (arnorm → 0 makes test2 tiny) and is NOT flagged — this
        # only catches runs that stopped improving short of any answer.
        if prev_r2norm - r2norm <= _STAGNATION_RTOL * max(prev_r2norm, 1.0):
            stalled_iterations += 1
        else:
            stalled_iterations = 0
        prev_r2norm = r2norm
        if (
            stalled_iterations >= _STAGNATION_WINDOW
            and test1 > _STAGNATION_FLOOR
            and test2 > _STAGNATION_FLOOR
        ):
            istop = 9
            _notify(istop)
            break
        t1_stop = test1 / (1 + anorm * xnorm / bnorm) if bnorm > 0 else 0.0
        rtol = btol + atol * anorm * xnorm / bnorm if bnorm > 0 else 0.0

        # Stopping rules, checked loosest first so istop records the
        # strongest condition that fired.
        if itn >= iter_lim:
            istop = 7
        if 1 + test3 <= 1:
            istop = 6
        if 1 + test2 <= 1:
            istop = 5
        if 1 + t1_stop <= 1:
            istop = 4
        if test3 <= ctol:
            istop = 3
        if test2 <= atol:
            istop = 2
        if test1 <= rtol:
            istop = 1
        _notify(istop)
        if istop != 0:
            break

    if x0 is not None:
        x = x + x0
        xnorm = float(np.linalg.norm(x))

    return LSQRResult(
        x=x,
        istop=istop,
        itn=itn,
        r1norm=float(r1norm),
        r2norm=float(r2norm),
        anorm=float(anorm),
        acond=float(acond),
        arnorm=float(arnorm),
        xnorm=float(xnorm),
        residual_history=history,
    )


def lsqr_flam_per_iteration(m: int, n: int, nnz: Optional[int] = None) -> int:
    """Paper's per-iteration cost: ``2·nnz + 3m + 5n`` flam.

    Complexity: O(1) — closed-form arithmetic on three integers.

    With dense data ``nnz = m·n`` this is the ``2mn + 3m + 5n`` of
    Section III-C.2; with sparse data it is ``2ms + 3m + 5n``.
    """
    if nnz is None:
        nnz = m * n
    return 2 * nnz + 3 * m + 5 * n
