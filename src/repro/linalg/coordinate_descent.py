"""Coordinate descent for the elastic net — the sparse-projection substrate.

The spectral-regression framework's sparse variant (the paper's ref
[15], "Spectral Regression: a unified approach for sparse subspace
learning") swaps the ridge penalty of Eqn 14 for an ℓ1/ℓ2 mix, so each
projective function solves

    a = argmin_a  (1/2)‖X a − ȳ‖² + α·l1_ratio·‖a‖₁
                  + (α/2)·(1 − l1_ratio)·‖a‖²₂

This module implements the standard cyclic coordinate-descent solver
from scratch: exact coordinate minimization via soft thresholding,
residual updates in O(m) per coordinate, active-set sweeps once the
support stabilizes, and a duality-free convergence test on the maximum
coefficient change.  Dense and CSC-style column access are both
supported (columns of our CSR matrices are extracted through the
transpose).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.linalg.sparse import CSRMatrix


def soft_threshold(value: float, threshold: float) -> float:
    """The ℓ1 proximal map: ``sign(v)·max(|v| − t, 0)``.

    Complexity: O(1) — scalar arithmetic.
    """
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


@dataclass
class ElasticNetResult:
    """Outcome of :func:`elastic_net`."""

    coef: np.ndarray
    n_iter: int
    converged: bool
    n_nonzero: int


def _column_norms_sq(columns) -> np.ndarray:
    return np.array([float(col @ col) for col in columns])


def elastic_net(
    X,
    y: np.ndarray,
    alpha: float,
    l1_ratio: float = 0.5,
    max_iter: int = 1000,
    tol: float = 1e-6,
    coef_init: Optional[np.ndarray] = None,
) -> ElasticNetResult:
    """Cyclic coordinate descent for the elastic-net problem above.

    Complexity: O(iters·nnz) — each full sweep touches every stored
    entry a constant number of times (``O(iters·m·n)`` when dense).

    Parameters
    ----------
    X:
        Dense ``(m, n)`` array or :class:`CSRMatrix` (columns accessed
        via the transpose).
    y:
        Length-``m`` target.
    alpha:
        Overall penalty strength (> 0 for a well-posed ℓ1 problem).
    l1_ratio:
        1.0 = lasso, 0.0 = ridge, in between = elastic net.
    max_iter:
        Full coordinate sweeps.
    tol:
        Stop when the largest coefficient update in a sweep falls below
        ``tol·max(1, ‖coef‖∞)``.
    coef_init:
        Warm start.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if not 0.0 <= l1_ratio <= 1.0:
        raise ValueError("l1_ratio must lie in [0, 1]")
    y = np.asarray(y, dtype=np.float64)

    if isinstance(X, CSRMatrix):
        transpose = X.T
        columns = [
            transpose.data[transpose.indptr[j] : transpose.indptr[j + 1]]
            for j in range(X.shape[1])
        ]
        column_rows = [
            transpose.indices[transpose.indptr[j] : transpose.indptr[j + 1]]
            for j in range(X.shape[1])
        ]
        dense_X = None
        m, n = X.shape
    else:
        dense_X = np.asarray(X, dtype=np.float64)
        m, n = dense_X.shape
        columns = column_rows = None
    if y.shape != (m,):
        raise ValueError(f"y must have length {m}")

    l1_penalty = alpha * l1_ratio
    l2_penalty = alpha * (1.0 - l1_ratio)

    coef = (
        np.zeros(n)
        if coef_init is None
        else np.asarray(coef_init, dtype=np.float64).copy()
    )
    if coef.shape != (n,):
        raise ValueError(f"coef_init must have length {n}")

    # residual r = y - X @ coef, maintained incrementally
    if dense_X is not None:
        col_sq = np.einsum("ij,ij->j", dense_X, dense_X)
        residual = y - dense_X @ coef
    else:
        col_sq = np.array([float(c @ c) for c in columns])
        residual = y.copy()
        for j in range(n):
            if coef[j] != 0.0:
                residual[column_rows[j]] -= coef[j] * columns[j]

    denom = col_sq + l2_penalty
    converged = False
    sweeps = 0
    for sweeps in range(1, max_iter + 1):
        max_update = 0.0
        max_coef = 1.0
        for j in range(n):
            if denom[j] == 0.0:
                continue
            old = coef[j]
            if dense_X is not None:
                rho = float(dense_X[:, j] @ residual) + col_sq[j] * old
            else:
                rho = float(columns[j] @ residual[column_rows[j]])
                rho += col_sq[j] * old
            new = soft_threshold(rho, l1_penalty) / denom[j]
            if new != old:
                delta = new - old
                if dense_X is not None:
                    residual -= delta * dense_X[:, j]
                else:
                    residual[column_rows[j]] -= delta * columns[j]
                coef[j] = new
                max_update = max(max_update, abs(delta))
            max_coef = max(max_coef, abs(coef[j]))
        if max_update <= tol * max_coef:
            converged = True
            break

    return ElasticNetResult(
        coef=coef,
        n_iter=sweeps,
        converged=converged,
        n_nonzero=int(np.count_nonzero(coef)),
    )


def elastic_net_path(
    X,
    y: np.ndarray,
    alphas: np.ndarray,
    l1_ratio: float = 0.5,
    max_iter: int = 1000,
    tol: float = 1e-6,
) -> np.ndarray:
    """Solutions along a decreasing α path, warm-starting each step.

    Complexity: O(k·iters·nnz) for ``k`` path points, with warm starts
    keeping the effective ``iters`` per point small.

    Returns an ``(len(alphas), n)`` coefficient matrix.  The path trick
    (solve from strong to weak penalty, reusing the previous solution)
    is the standard way to get the whole regularization path at little
    more than the cost of the final solve.
    """
    alphas = np.asarray(alphas, dtype=np.float64)
    if np.any(np.diff(alphas) > 0):
        raise ValueError("alphas must be non-increasing for warm starts")
    n = X.shape[1]
    path = np.zeros((alphas.shape[0], n))
    coef = None
    for i, alpha in enumerate(alphas):
        result = elastic_net(
            X, y, float(alpha), l1_ratio=l1_ratio,
            max_iter=max_iter, tol=tol, coef_init=coef,
        )
        coef = result.coef
        path[i] = coef
    return path
