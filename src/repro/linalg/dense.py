"""Small dense helpers shared across the baselines and tests."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro._typing import FloatArray

def symmetric_eigh(A: FloatArray) -> Tuple[FloatArray, FloatArray]:
    """Eigendecomposition of a symmetric matrix, sorted descending.

    Complexity: O(n^3) — dense symmetric eigensolve.

    Thin wrapper over ``numpy.linalg.eigh`` that symmetrizes the input
    (guarding against rounding asymmetry in computed Gram matrices) and
    returns eigenvalues in decreasing order — the convention every
    caller in this package wants, since discriminant directions are the
    *leading* eigenvectors.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError("symmetric_eigh requires a square matrix")
    eigvals, eigvecs = np.linalg.eigh(0.5 * (A + A.T))
    order = np.argsort(eigvals)[::-1]
    return eigvals[order], eigvecs[:, order]


def solve_lstsq(A: FloatArray, b: FloatArray) -> FloatArray:
    """Minimum-norm least-squares solution of ``A x ≈ b``.

    Complexity: O(m·n^2) — dense SVD-backed ``lstsq``.
    """
    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    x, _, _, _ = np.linalg.lstsq(A, b, rcond=None)
    return x


def ridge_solution(A: FloatArray, b: FloatArray, alpha: float) -> FloatArray:
    """Reference ridge solution ``(AᵀA + αI)⁻¹ Aᵀ b`` for tests.

    Complexity: O(m·n^2 + n^3) — Gram build plus one factorization.

    The normal-equations matrix is factored once by the repo's blocked
    Cholesky and the factor is reused for every right-hand-side column
    of ``b`` — the triangular solves handle ``b`` as a matrix, so a
    multi-column call pays one O(n³) factorization total.  When the
    shifted Gram matrix is numerically semidefinite (e.g. ``alpha = 0``
    on rank-deficient data) it falls back to the minimum-norm
    least-squares solution.
    """
    from repro.linalg.cholesky import (
        NotPositiveDefiniteError,
        cholesky,
        solve_factored,
    )

    A = np.asarray(A, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = A.shape[1]
    gram = A.T @ A + alpha * np.eye(n)
    rhs = A.T @ b
    try:
        L = cholesky(gram)
    except NotPositiveDefiniteError:
        return solve_lstsq(gram, rhs)
    return solve_factored(L, rhs)


def generalized_eigh(
    B: FloatArray, A: FloatArray, regularization: float = 0.0
) -> Tuple[FloatArray, FloatArray]:
    """Solve ``B v = λ A v`` for symmetric ``B`` and SPD (after shift) ``A``.

    Complexity: O(n^3) — Cholesky reduction plus a symmetric eigensolve.

    Reduces to a standard symmetric problem through the Cholesky factor
    of ``A + regularization·I``.  Eigenvalues come back descending.
    """
    from repro.linalg.cholesky import cholesky, solve_triangular

    B = np.asarray(B, dtype=np.float64)
    A = np.asarray(A, dtype=np.float64)
    n = A.shape[0]
    L = cholesky(A + regularization * np.eye(n))
    # C = L⁻¹ B L⁻ᵀ
    C = solve_triangular(L, B, lower=True)
    C = solve_triangular(L, C.T, lower=True).T
    eigvals, W = symmetric_eigh(C)
    V = solve_triangular(L.T, W, lower=False)
    return eigvals, V


def is_orthonormal(Q: FloatArray, tol: float = 1e-8) -> bool:
    """True if the columns of ``Q`` are orthonormal within ``tol``.

    Complexity: O(m·k^2) for a ``(m, k)`` input — the Gram matrix.
    """
    Q = np.asarray(Q, dtype=np.float64)
    if Q.shape[1] == 0:
        return True
    gram = Q.T @ Q
    return bool(np.abs(gram - np.eye(Q.shape[1])).max() <= tol)
