"""Linear-algebra substrates used by SRDA and the LDA baselines.

Everything numerically interesting in the paper is built from a small set
of kernels, each implemented here from scratch on top of numpy primitives:

- :mod:`repro.linalg.sparse` — a minimal CSR matrix (the sparse substrate
  that lets SRDA exploit text-like data).
- :mod:`repro.linalg.operators` — matrix-free linear operators, including
  the implicit-centering and append-ones tricks from the paper.
- :mod:`repro.linalg.gram_schmidt` — modified Gram–Schmidt, used for the
  response-generation step (Eqn 15/16).
- :mod:`repro.linalg.cholesky` — Cholesky factorization and triangular
  solves, used by the normal-equations solver (Eqn 20/21).
- :mod:`repro.linalg.lsqr` — the Paige–Saunders LSQR iteration, the
  linear-time solver of the paper's title.
- :mod:`repro.linalg.block_lsqr` — the blocked multi-RHS variant that
  carries all ``c-1`` SRDA systems through shared mat-mats, plus the
  bidiagonalize-once alpha-sweep engine.
- :mod:`repro.linalg.svd` — the cross-product SVD trick from Section II-B.
- :mod:`repro.linalg.dense` — small dense helpers shared by the baselines.
- :mod:`repro.linalg.sketch` — randomized sketching operators
  (CountSketch / sparse-sign / SRHT) and the sketch-and-precondition
  path that cuts LSQR iteration counts on ill-conditioned data.
- :mod:`repro.linalg.kernels` — the CSR kernel dispatcher: pure-numpy
  reference vs the GIL-free compiled backend, bitwise-interchangeable.
"""

from repro.linalg.block_lsqr import (
    BlockLSQRResult,
    SharedBidiagonalization,
    block_lsqr,
)
from repro.linalg.cholesky import cholesky, solve_cholesky, solve_triangular
from repro.linalg.coordinate_descent import (
    ElasticNetResult,
    elastic_net,
    elastic_net_path,
)
from repro.linalg.dense import solve_lstsq, symmetric_eigh
from repro.linalg.eigen import jacobi_eigh, lanczos_eigsh
from repro.linalg.gram_schmidt import orthogonalize_against, orthonormalize
from repro.linalg.kernels import (
    KERNEL_BACKEND_ENV,
    KERNEL_BACKENDS,
    active_backend,
    compiled_available,
    use_backend,
)
from repro.linalg.lsqr import FAILURE_ISTOPS, ISTOP_REASONS, LSQRResult, lsqr
from repro.linalg.operators import (
    AppendOnesOperator,
    CenteringOperator,
    CSROperator,
    DenseOperator,
    FaultyOperator,
    InjectedFaultError,
    LinearOperator,
    TransposedOperator,
    as_operator,
)
from repro.linalg.sketch import (
    SKETCH_KINDS,
    CountSketchOperator,
    PreconditionedOperator,
    SRHTOperator,
    SketchOperator,
    SketchPreconditioner,
    SketchingError,
    SparseSignOperator,
    build_preconditioner,
    default_sketch_size,
    preconditioner_from_gram,
    sketch_apply,
    sketch_operator,
)
from repro.linalg.sparse import CSRMatrix
from repro.linalg.svd import cross_product_svd

__all__ = [
    "AppendOnesOperator",
    "BlockLSQRResult",
    "CSRMatrix",
    "CSROperator",
    "CenteringOperator",
    "CountSketchOperator",
    "DenseOperator",
    "ElasticNetResult",
    "FAILURE_ISTOPS",
    "FaultyOperator",
    "ISTOP_REASONS",
    "InjectedFaultError",
    "KERNEL_BACKENDS",
    "KERNEL_BACKEND_ENV",
    "LSQRResult",
    "LinearOperator",
    "PreconditionedOperator",
    "SKETCH_KINDS",
    "SRHTOperator",
    "SharedBidiagonalization",
    "SketchOperator",
    "SketchPreconditioner",
    "SketchingError",
    "SparseSignOperator",
    "TransposedOperator",
    "active_backend",
    "as_operator",
    "block_lsqr",
    "build_preconditioner",
    "cholesky",
    "compiled_available",
    "cross_product_svd",
    "default_sketch_size",
    "elastic_net",
    "elastic_net_path",
    "jacobi_eigh",
    "lanczos_eigsh",
    "lsqr",
    "orthogonalize_against",
    "orthonormalize",
    "preconditioner_from_gram",
    "sketch_apply",
    "sketch_operator",
    "solve_cholesky",
    "solve_lstsq",
    "solve_triangular",
    "symmetric_eigh",
    "use_backend",
]
