/*
 * GIL-free compiled CSR kernels — the "compiled" backend behind
 * repro.linalg.kernels.
 *
 * Every kernel here is bitwise-identical to the pure-numpy reference
 * implementation in repro.linalg.sparse.CSRMatrix.  That contract pins
 * the accumulation order exactly:
 *
 * - float64 mat-vec / adjoint reductions mirror numpy's ``bincount``:
 *   a zero-initialized output receives one sequential scatter-add per
 *   stored entry, in storage order.
 * - float32 reductions and every ``matmat`` column sweep mirror
 *   ``np.add.reduceat``: each segment reduces as
 *   ``seg[0] + pairwise_sum(seg[1:])`` where ``pairwise_sum`` is
 *   numpy's pairwise algorithm (8-accumulator blocks up to 128
 *   elements, then recursive halving on 8-aligned splits).  The
 *   structure below is a faithful port of numpy's ``pairwise_sum_@TYPE@``
 *   (numpy/_core/src/umath/loops.c.src); the tests assert bit equality
 *   against the live numpy, so a silent ordering change in either
 *   implementation fails loudly.
 *
 * All inner loops run between Py_BEGIN_ALLOW_THREADS /
 * Py_END_ALLOW_THREADS — no Python objects are touched inside — which
 * is the whole point: thread-backend shard workers genuinely overlap
 * where the numpy kernels serialize on the GIL.
 *
 * The Python-side dispatcher (repro.linalg.kernels) owns all
 * validation and dtype/contiguity normalization; this module only
 * asserts what it relies on (dtype match, contiguity, 1-D/2-D rank)
 * and raises ValueError otherwise.
 */

#define PY_SSIZE_T_CLEAN
#define NPY_NO_DEPRECATED_API NPY_1_22_API_VERSION
#include <Python.h>
#include <numpy/arrayobject.h>
#include <stdlib.h>

/* ------------------------------------------------------------------ */
/* numpy-order pairwise summation (port of numpy's pairwise_sum)       */
/* ------------------------------------------------------------------ */

#define PW_BLOCKSIZE 128

#define DEFINE_PAIRWISE(T, SUF)                                          \
    static T pairwise_sum_##SUF(const T *a, npy_intp n)                  \
    {                                                                    \
        if (n < 8) {                                                     \
            npy_intp i;                                                  \
            T res = (T)0.0;                                              \
            for (i = 0; i < n; i++) {                                    \
                res += a[i];                                             \
            }                                                            \
            return res;                                                  \
        }                                                                \
        else if (n <= PW_BLOCKSIZE) {                                    \
            npy_intp i;                                                  \
            T r[8], res;                                                 \
            r[0] = a[0]; r[1] = a[1]; r[2] = a[2]; r[3] = a[3];          \
            r[4] = a[4]; r[5] = a[5]; r[6] = a[6]; r[7] = a[7];          \
            for (i = 8; i < n - (n % 8); i += 8) {                       \
                r[0] += a[i + 0]; r[1] += a[i + 1];                      \
                r[2] += a[i + 2]; r[3] += a[i + 3];                      \
                r[4] += a[i + 4]; r[5] += a[i + 5];                      \
                r[6] += a[i + 6]; r[7] += a[i + 7];                      \
            }                                                            \
            res = ((r[0] + r[1]) + (r[2] + r[3])) +                      \
                  ((r[4] + r[5]) + (r[6] + r[7]));                       \
            for (; i < n; i++) {                                         \
                res += a[i];                                             \
            }                                                            \
            return res;                                                  \
        }                                                                \
        else {                                                           \
            npy_intp n2 = n / 2;                                         \
            n2 -= n2 % 8;                                                \
            return pairwise_sum_##SUF(a, n2) +                           \
                   pairwise_sum_##SUF(a + n2, n - n2);                   \
        }                                                                \
    }                                                                    \
                                                                         \
    /* np.add.reduceat on one segment: seg[0] + pairwise(seg[1:]) */     \
    static T segment_reduce_##SUF(const T *seg, npy_intp n)              \
    {                                                                    \
        if (n == 1) {                                                    \
            return seg[0];                                               \
        }                                                                \
        return seg[0] + pairwise_sum_##SUF(seg + 1, n - 1);              \
    }

DEFINE_PAIRWISE(npy_double, f64)
DEFINE_PAIRWISE(npy_float, f32)

/* ------------------------------------------------------------------ */
/* Kernel bodies (templated over the value type)                       */
/* ------------------------------------------------------------------ */

/* A @ v, float64: bincount order — sequential scatter-add from zero. */
static void
matvec_scatter_f64(const npy_double *data, const npy_int64 *indices,
                   const npy_int64 *indptr, npy_intp n_rows,
                   const npy_double *v, npy_double *out)
{
    npy_intp r;
    for (r = 0; r < n_rows; r++) {
        npy_int64 i, end = indptr[r + 1];
        npy_double acc = out[r]; /* zero-initialized by the caller */
        for (i = indptr[r]; i < end; i++) {
            acc += data[i] * v[indices[i]];
        }
        out[r] = acc;
    }
}

/* A @ v / A @ B column, reduceat order over row segments. */
#define DEFINE_MATVEC_SEGMENTS(T, SUF)                                   \
    static void matvec_segments_##SUF(                                   \
        const T *data, const npy_int64 *indices, const npy_int64 *indptr,\
        npy_intp n_rows, const T *v, T *out, T *scratch)                 \
    {                                                                    \
        npy_intp r;                                                      \
        for (r = 0; r < n_rows; r++) {                                   \
            npy_int64 i, start = indptr[r], end = indptr[r + 1];         \
            npy_intp len = (npy_intp)(end - start), t = 0;               \
            if (len == 0) {                                              \
                continue; /* empty rows stay zero */                     \
            }                                                            \
            for (i = start; i < end; i++, t++) {                         \
                scratch[t] = data[i] * v[indices[i]];                    \
            }                                                            \
            out[r] = segment_reduce_##SUF(scratch, len);                 \
        }                                                                \
    }

/* Only the float32 variant is instantiated: the float64 reference
 * matvec is bincount-ordered (scatter), never reduceat-ordered. */
DEFINE_MATVEC_SEGMENTS(npy_float, f32)

/* A.T @ u, float64: bincount order over column indices in storage
 * order — one sequential scatter-add per stored entry. */
static void
rmatvec_scatter_f64(const npy_double *data, const npy_int64 *indices,
                    const npy_int64 *indptr, npy_intp n_rows,
                    const npy_double *u, npy_double *out)
{
    npy_intp r;
    for (r = 0; r < n_rows; r++) {
        npy_int64 i, end = indptr[r + 1];
        npy_double ur = u[r];
        for (i = indptr[r]; i < end; i++) {
            out[indices[i]] += data[i] * ur;
        }
    }
}

/* A.T @ u, float32: reduceat order over the cached column segments.
 * ``order`` sorts stored entries by column (stable), ``starts[t]`` is
 * the offset of segment t in the sorted view, ``cols[t]`` its column. */
#define DEFINE_RMATVEC_SEGMENTS(T, SUF)                                  \
    static void rmatvec_segments_##SUF(                                  \
        const T *data, const npy_int64 *row_ids, const npy_int64 *order, \
        const npy_int64 *starts, const npy_int64 *cols,                  \
        npy_intp n_segments, npy_intp nnz, const T *u, T *out,           \
        T *scratch)                                                      \
    {                                                                    \
        npy_intp s;                                                      \
        for (s = 0; s < n_segments; s++) {                               \
            npy_int64 start = starts[s];                                 \
            npy_int64 end = (s + 1 < n_segments) ? starts[s + 1]         \
                                                 : (npy_int64)nnz;       \
            npy_intp len = (npy_intp)(end - start), t;                   \
            for (t = 0; t < len; t++) {                                  \
                npy_int64 o = order[start + t];                          \
                scratch[t] = data[o] * u[row_ids[o]];                    \
            }                                                            \
            out[cols[s]] = segment_reduce_##SUF(scratch, len);           \
        }                                                                \
    }

DEFINE_RMATVEC_SEGMENTS(npy_double, f64)
DEFINE_RMATVEC_SEGMENTS(npy_float, f32)

/* Adjoint elementwise stage: products[i] = data[i] * u[row(i)]. */
#define DEFINE_ADJOINT_PRODUCTS(T, SUF)                                  \
    static void adjoint_products_##SUF(                                  \
        const T *data, const npy_int64 *indptr, npy_intp n_rows,         \
        const T *u, T *out)                                              \
    {                                                                    \
        npy_intp r;                                                      \
        for (r = 0; r < n_rows; r++) {                                   \
            npy_int64 i, end = indptr[r + 1];                            \
            T ur = u[r];                                                 \
            for (i = indptr[r]; i < end; i++) {                          \
                out[i] = data[i] * ur;                                   \
            }                                                            \
        }                                                                \
    }

DEFINE_ADJOINT_PRODUCTS(npy_double, f64)
DEFINE_ADJOINT_PRODUCTS(npy_float, f32)

/* Adjoint reduction, float64: bincount order in storage order. */
static void
reduce_adjoint_scatter_f64(const npy_int64 *indices,
                           const npy_double *products, npy_intp nnz,
                           npy_double *out)
{
    npy_intp i;
    for (i = 0; i < nnz; i++) {
        out[indices[i]] += products[i];
    }
}

/* Adjoint reduction, float32: reduceat order over column segments. */
#define DEFINE_REDUCE_ADJOINT_SEGMENTS(T, SUF)                           \
    static void reduce_adjoint_segments_##SUF(                           \
        const T *products, const npy_int64 *order,                       \
        const npy_int64 *starts, const npy_int64 *cols,                  \
        npy_intp n_segments, npy_intp nnz, T *out, T *scratch)           \
    {                                                                    \
        npy_intp s;                                                      \
        for (s = 0; s < n_segments; s++) {                               \
            npy_int64 start = starts[s];                                 \
            npy_int64 end = (s + 1 < n_segments) ? starts[s + 1]         \
                                                 : (npy_int64)nnz;       \
            npy_intp len = (npy_intp)(end - start), t;                   \
            for (t = 0; t < len; t++) {                                  \
                scratch[t] = products[order[start + t]];                 \
            }                                                            \
            out[cols[s]] = segment_reduce_##SUF(scratch, len);           \
        }                                                                \
    }

DEFINE_REDUCE_ADJOINT_SEGMENTS(npy_double, f64)
DEFINE_REDUCE_ADJOINT_SEGMENTS(npy_float, f32)

/* A @ B for a dense F-ordered block: one reduceat-order column sweep
 * per output column, fused gather-multiply into a small scratch.
 * Column base pointers advance by the block's column stride (ldb/ldo),
 * matching the reference's per-column ``out[:, j] = reduceat(...)``. */
#define DEFINE_MATMAT(T, SUF)                                            \
    static void matmat_##SUF(                                            \
        const T *data, const npy_int64 *indices, const npy_int64 *indptr,\
        npy_intp n_rows, npy_intp n_cols_B, const T *B, npy_intp ldb,    \
        T *out, npy_intp ldo, T *scratch)                                \
    {                                                                    \
        npy_intp j, r;                                                   \
        for (j = 0; j < n_cols_B; j++) {                                 \
            const T *Bj = B + j * ldb;                                   \
            T *outj = out + j * ldo;                                     \
            for (r = 0; r < n_rows; r++) {                               \
                npy_int64 i, start = indptr[r], end = indptr[r + 1];     \
                npy_intp len = (npy_intp)(end - start), t = 0;           \
                if (len == 0) {                                          \
                    continue;                                            \
                }                                                        \
                for (i = start; i < end; i++, t++) {                     \
                    scratch[t] = data[i] * Bj[indices[i]];               \
                }                                                        \
                outj[r] = segment_reduce_##SUF(scratch, len);            \
            }                                                            \
        }                                                                \
    }

DEFINE_MATMAT(npy_double, f64)
DEFINE_MATMAT(npy_float, f32)

/* ------------------------------------------------------------------ */
/* Argument helpers                                                    */
/* ------------------------------------------------------------------ */

static int
check_array(PyArrayObject *arr, int typenum, int ndim, const char *name)
{
    if (PyArray_TYPE(arr) != typenum) {
        PyErr_Format(PyExc_ValueError, "%s has the wrong dtype", name);
        return 0;
    }
    if (PyArray_NDIM(arr) != ndim) {
        PyErr_Format(PyExc_ValueError, "%s must be %d-dimensional", name,
                     ndim);
        return 0;
    }
    if (!PyArray_IS_C_CONTIGUOUS(arr) && !PyArray_IS_F_CONTIGUOUS(arr)) {
        PyErr_Format(PyExc_ValueError, "%s must be contiguous", name);
        return 0;
    }
    return 1;
}

/* Longest row segment — sizes the per-call scratch buffer. */
static npy_intp
max_segment(const npy_int64 *indptr, npy_intp n_rows)
{
    npy_intp r, best = 1;
    for (r = 0; r < n_rows; r++) {
        npy_intp len = (npy_intp)(indptr[r + 1] - indptr[r]);
        if (len > best) {
            best = len;
        }
    }
    return best;
}

static npy_intp
max_col_segment(const npy_int64 *starts, npy_intp n_segments, npy_intp nnz)
{
    npy_intp s, best = 1;
    for (s = 0; s < n_segments; s++) {
        npy_int64 end = (s + 1 < n_segments) ? starts[s + 1]
                                             : (npy_int64)nnz;
        npy_intp len = (npy_intp)(end - starts[s]);
        if (len > best) {
            best = len;
        }
    }
    return best;
}

/* ------------------------------------------------------------------ */
/* Python-visible wrappers                                             */
/* ------------------------------------------------------------------ */

static PyObject *
py_csr_matvec(PyObject *self, PyObject *args)
{
    PyArrayObject *data, *indices, *indptr, *v, *out;
    npy_intp n_rows, nnz;
    int typenum;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!", &PyArray_Type, &data,
                          &PyArray_Type, &indices, &PyArray_Type, &indptr,
                          &PyArray_Type, &v, &PyArray_Type, &out)) {
        return NULL;
    }
    typenum = PyArray_TYPE(data);
    if (typenum != NPY_DOUBLE && typenum != NPY_FLOAT) {
        PyErr_SetString(PyExc_ValueError, "data must be float32 or float64");
        return NULL;
    }
    if (!check_array(data, typenum, 1, "data") ||
        !check_array(indices, NPY_INT64, 1, "indices") ||
        !check_array(indptr, NPY_INT64, 1, "indptr") ||
        !check_array(v, typenum, 1, "v") ||
        !check_array(out, typenum, 1, "out")) {
        return NULL;
    }
    n_rows = PyArray_DIM(indptr, 0) - 1;
    nnz = PyArray_DIM(data, 0);
    if (PyArray_DIM(indices, 0) != nnz || PyArray_DIM(out, 0) != n_rows) {
        PyErr_SetString(PyExc_ValueError, "inconsistent kernel shapes");
        return NULL;
    }

    {
        const npy_int64 *ip = (const npy_int64 *)PyArray_DATA(indptr);
        const npy_int64 *ind = (const npy_int64 *)PyArray_DATA(indices);
        int failed = 0;
        if (typenum == NPY_DOUBLE) {
            const npy_double *d = (const npy_double *)PyArray_DATA(data);
            const npy_double *vv = (const npy_double *)PyArray_DATA(v);
            npy_double *o = (npy_double *)PyArray_DATA(out);
            Py_BEGIN_ALLOW_THREADS
            matvec_scatter_f64(d, ind, ip, n_rows, vv, o);
            Py_END_ALLOW_THREADS
        }
        else {
            const npy_float *d = (const npy_float *)PyArray_DATA(data);
            const npy_float *vv = (const npy_float *)PyArray_DATA(v);
            npy_float *o = (npy_float *)PyArray_DATA(out);
            npy_float *scratch;
            npy_intp cap = max_segment(ip, n_rows);
            scratch = (npy_float *)malloc((size_t)cap * sizeof(npy_float));
            if (scratch == NULL) {
                failed = 1;
            }
            else {
                Py_BEGIN_ALLOW_THREADS
                matvec_segments_f32(d, ind, ip, n_rows, vv, o, scratch);
                Py_END_ALLOW_THREADS
                free(scratch);
            }
        }
        if (failed) {
            return PyErr_NoMemory();
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
py_csr_rmatvec_scatter(PyObject *self, PyObject *args)
{
    PyArrayObject *data, *indices, *indptr, *u, *out;
    npy_intp n_rows, nnz;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!", &PyArray_Type, &data,
                          &PyArray_Type, &indices, &PyArray_Type, &indptr,
                          &PyArray_Type, &u, &PyArray_Type, &out)) {
        return NULL;
    }
    if (!check_array(data, NPY_DOUBLE, 1, "data") ||
        !check_array(indices, NPY_INT64, 1, "indices") ||
        !check_array(indptr, NPY_INT64, 1, "indptr") ||
        !check_array(u, NPY_DOUBLE, 1, "u") ||
        !check_array(out, NPY_DOUBLE, 1, "out")) {
        return NULL;
    }
    n_rows = PyArray_DIM(indptr, 0) - 1;
    nnz = PyArray_DIM(data, 0);
    if (PyArray_DIM(indices, 0) != nnz || PyArray_DIM(u, 0) != n_rows) {
        PyErr_SetString(PyExc_ValueError, "inconsistent kernel shapes");
        return NULL;
    }
    {
        const npy_double *d = (const npy_double *)PyArray_DATA(data);
        const npy_int64 *ind = (const npy_int64 *)PyArray_DATA(indices);
        const npy_int64 *ip = (const npy_int64 *)PyArray_DATA(indptr);
        const npy_double *uu = (const npy_double *)PyArray_DATA(u);
        npy_double *o = (npy_double *)PyArray_DATA(out);
        Py_BEGIN_ALLOW_THREADS
        rmatvec_scatter_f64(d, ind, ip, n_rows, uu, o);
        Py_END_ALLOW_THREADS
    }
    Py_RETURN_NONE;
}

static PyObject *
py_csr_rmatvec_segments(PyObject *self, PyObject *args)
{
    PyArrayObject *data, *row_ids, *order, *starts, *cols, *u, *out;
    npy_intp nnz, n_segments;
    int typenum;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!O!O!", &PyArray_Type, &data,
                          &PyArray_Type, &row_ids, &PyArray_Type, &order,
                          &PyArray_Type, &starts, &PyArray_Type, &cols,
                          &PyArray_Type, &u, &PyArray_Type, &out)) {
        return NULL;
    }
    typenum = PyArray_TYPE(data);
    if (typenum != NPY_DOUBLE && typenum != NPY_FLOAT) {
        PyErr_SetString(PyExc_ValueError, "data must be float32 or float64");
        return NULL;
    }
    if (!check_array(data, typenum, 1, "data") ||
        !check_array(row_ids, NPY_INT64, 1, "row_ids") ||
        !check_array(order, NPY_INT64, 1, "order") ||
        !check_array(starts, NPY_INT64, 1, "starts") ||
        !check_array(cols, NPY_INT64, 1, "cols") ||
        !check_array(u, typenum, 1, "u") ||
        !check_array(out, typenum, 1, "out")) {
        return NULL;
    }
    nnz = PyArray_DIM(data, 0);
    n_segments = PyArray_DIM(starts, 0);
    if (PyArray_DIM(row_ids, 0) != nnz || PyArray_DIM(order, 0) != nnz ||
        PyArray_DIM(cols, 0) != n_segments) {
        PyErr_SetString(PyExc_ValueError, "inconsistent kernel shapes");
        return NULL;
    }
    {
        const npy_int64 *rid = (const npy_int64 *)PyArray_DATA(row_ids);
        const npy_int64 *ord = (const npy_int64 *)PyArray_DATA(order);
        const npy_int64 *st = (const npy_int64 *)PyArray_DATA(starts);
        const npy_int64 *cl = (const npy_int64 *)PyArray_DATA(cols);
        npy_intp cap = max_col_segment(st, n_segments, nnz);
        int failed = 0;
        if (typenum == NPY_DOUBLE) {
            const npy_double *d = (const npy_double *)PyArray_DATA(data);
            const npy_double *uu = (const npy_double *)PyArray_DATA(u);
            npy_double *o = (npy_double *)PyArray_DATA(out);
            npy_double *scratch =
                (npy_double *)malloc((size_t)cap * sizeof(npy_double));
            if (scratch == NULL) {
                failed = 1;
            }
            else {
                Py_BEGIN_ALLOW_THREADS
                rmatvec_segments_f64(d, rid, ord, st, cl, n_segments, nnz,
                                     uu, o, scratch);
                Py_END_ALLOW_THREADS
                free(scratch);
            }
        }
        else {
            const npy_float *d = (const npy_float *)PyArray_DATA(data);
            const npy_float *uu = (const npy_float *)PyArray_DATA(u);
            npy_float *o = (npy_float *)PyArray_DATA(out);
            npy_float *scratch =
                (npy_float *)malloc((size_t)cap * sizeof(npy_float));
            if (scratch == NULL) {
                failed = 1;
            }
            else {
                Py_BEGIN_ALLOW_THREADS
                rmatvec_segments_f32(d, rid, ord, st, cl, n_segments, nnz,
                                     uu, o, scratch);
                Py_END_ALLOW_THREADS
                free(scratch);
            }
        }
        if (failed) {
            return PyErr_NoMemory();
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
py_csr_adjoint_products(PyObject *self, PyObject *args)
{
    PyArrayObject *data, *indptr, *u, *out;
    npy_intp n_rows, nnz;
    int typenum;

    if (!PyArg_ParseTuple(args, "O!O!O!O!", &PyArray_Type, &data,
                          &PyArray_Type, &indptr, &PyArray_Type, &u,
                          &PyArray_Type, &out)) {
        return NULL;
    }
    typenum = PyArray_TYPE(data);
    if (typenum != NPY_DOUBLE && typenum != NPY_FLOAT) {
        PyErr_SetString(PyExc_ValueError, "data must be float32 or float64");
        return NULL;
    }
    if (!check_array(data, typenum, 1, "data") ||
        !check_array(indptr, NPY_INT64, 1, "indptr") ||
        !check_array(u, typenum, 1, "u") ||
        !check_array(out, typenum, 1, "out")) {
        return NULL;
    }
    n_rows = PyArray_DIM(indptr, 0) - 1;
    nnz = PyArray_DIM(data, 0);
    if (PyArray_DIM(u, 0) != n_rows || PyArray_DIM(out, 0) != nnz) {
        PyErr_SetString(PyExc_ValueError, "inconsistent kernel shapes");
        return NULL;
    }
    {
        const npy_int64 *ip = (const npy_int64 *)PyArray_DATA(indptr);
        if (typenum == NPY_DOUBLE) {
            const npy_double *d = (const npy_double *)PyArray_DATA(data);
            const npy_double *uu = (const npy_double *)PyArray_DATA(u);
            npy_double *o = (npy_double *)PyArray_DATA(out);
            Py_BEGIN_ALLOW_THREADS
            adjoint_products_f64(d, ip, n_rows, uu, o);
            Py_END_ALLOW_THREADS
        }
        else {
            const npy_float *d = (const npy_float *)PyArray_DATA(data);
            const npy_float *uu = (const npy_float *)PyArray_DATA(u);
            npy_float *o = (npy_float *)PyArray_DATA(out);
            Py_BEGIN_ALLOW_THREADS
            adjoint_products_f32(d, ip, n_rows, uu, o);
            Py_END_ALLOW_THREADS
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
py_csr_reduce_adjoint_scatter(PyObject *self, PyObject *args)
{
    PyArrayObject *indices, *products, *out;
    npy_intp nnz;

    if (!PyArg_ParseTuple(args, "O!O!O!", &PyArray_Type, &indices,
                          &PyArray_Type, &products, &PyArray_Type, &out)) {
        return NULL;
    }
    if (!check_array(indices, NPY_INT64, 1, "indices") ||
        !check_array(products, NPY_DOUBLE, 1, "products") ||
        !check_array(out, NPY_DOUBLE, 1, "out")) {
        return NULL;
    }
    nnz = PyArray_DIM(products, 0);
    if (PyArray_DIM(indices, 0) != nnz) {
        PyErr_SetString(PyExc_ValueError, "inconsistent kernel shapes");
        return NULL;
    }
    {
        const npy_int64 *ind = (const npy_int64 *)PyArray_DATA(indices);
        const npy_double *p = (const npy_double *)PyArray_DATA(products);
        npy_double *o = (npy_double *)PyArray_DATA(out);
        Py_BEGIN_ALLOW_THREADS
        reduce_adjoint_scatter_f64(ind, p, nnz, o);
        Py_END_ALLOW_THREADS
    }
    Py_RETURN_NONE;
}

static PyObject *
py_csr_reduce_adjoint_segments(PyObject *self, PyObject *args)
{
    PyArrayObject *products, *order, *starts, *cols, *out;
    npy_intp nnz, n_segments;
    int typenum;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!", &PyArray_Type, &products,
                          &PyArray_Type, &order, &PyArray_Type, &starts,
                          &PyArray_Type, &cols, &PyArray_Type, &out)) {
        return NULL;
    }
    typenum = PyArray_TYPE(products);
    if (typenum != NPY_DOUBLE && typenum != NPY_FLOAT) {
        PyErr_SetString(PyExc_ValueError,
                        "products must be float32 or float64");
        return NULL;
    }
    if (!check_array(products, typenum, 1, "products") ||
        !check_array(order, NPY_INT64, 1, "order") ||
        !check_array(starts, NPY_INT64, 1, "starts") ||
        !check_array(cols, NPY_INT64, 1, "cols") ||
        !check_array(out, typenum, 1, "out")) {
        return NULL;
    }
    nnz = PyArray_DIM(products, 0);
    n_segments = PyArray_DIM(starts, 0);
    if (PyArray_DIM(order, 0) != nnz ||
        PyArray_DIM(cols, 0) != n_segments) {
        PyErr_SetString(PyExc_ValueError, "inconsistent kernel shapes");
        return NULL;
    }
    {
        const npy_int64 *ord = (const npy_int64 *)PyArray_DATA(order);
        const npy_int64 *st = (const npy_int64 *)PyArray_DATA(starts);
        const npy_int64 *cl = (const npy_int64 *)PyArray_DATA(cols);
        npy_intp cap = max_col_segment(st, n_segments, nnz);
        int failed = 0;
        if (typenum == NPY_DOUBLE) {
            const npy_double *p = (const npy_double *)PyArray_DATA(products);
            npy_double *o = (npy_double *)PyArray_DATA(out);
            npy_double *scratch =
                (npy_double *)malloc((size_t)cap * sizeof(npy_double));
            if (scratch == NULL) {
                failed = 1;
            }
            else {
                Py_BEGIN_ALLOW_THREADS
                reduce_adjoint_segments_f64(p, ord, st, cl, n_segments, nnz,
                                            o, scratch);
                Py_END_ALLOW_THREADS
                free(scratch);
            }
        }
        else {
            const npy_float *p = (const npy_float *)PyArray_DATA(products);
            npy_float *o = (npy_float *)PyArray_DATA(out);
            npy_float *scratch =
                (npy_float *)malloc((size_t)cap * sizeof(npy_float));
            if (scratch == NULL) {
                failed = 1;
            }
            else {
                Py_BEGIN_ALLOW_THREADS
                reduce_adjoint_segments_f32(p, ord, st, cl, n_segments, nnz,
                                            o, scratch);
                Py_END_ALLOW_THREADS
                free(scratch);
            }
        }
        if (failed) {
            return PyErr_NoMemory();
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
py_csr_matmat(PyObject *self, PyObject *args)
{
    PyArrayObject *data, *indices, *indptr, *B, *out;
    npy_intp n_rows, nnz, k;
    int typenum;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!", &PyArray_Type, &data,
                          &PyArray_Type, &indices, &PyArray_Type, &indptr,
                          &PyArray_Type, &B, &PyArray_Type, &out)) {
        return NULL;
    }
    typenum = PyArray_TYPE(data);
    if (typenum != NPY_DOUBLE && typenum != NPY_FLOAT) {
        PyErr_SetString(PyExc_ValueError, "data must be float32 or float64");
        return NULL;
    }
    if (!check_array(data, typenum, 1, "data") ||
        !check_array(indices, NPY_INT64, 1, "indices") ||
        !check_array(indptr, NPY_INT64, 1, "indptr")) {
        return NULL;
    }
    if (PyArray_TYPE(B) != typenum || PyArray_NDIM(B) != 2 ||
        !PyArray_IS_F_CONTIGUOUS(B)) {
        PyErr_SetString(PyExc_ValueError,
                        "B must be a Fortran-contiguous 2-D block of the "
                        "data dtype");
        return NULL;
    }
    if (PyArray_TYPE(out) != typenum || PyArray_NDIM(out) != 2 ||
        !PyArray_IS_F_CONTIGUOUS(out)) {
        PyErr_SetString(PyExc_ValueError,
                        "out must be a Fortran-contiguous 2-D block of the "
                        "data dtype");
        return NULL;
    }
    n_rows = PyArray_DIM(indptr, 0) - 1;
    nnz = PyArray_DIM(data, 0);
    k = PyArray_DIM(B, 1);
    if (PyArray_DIM(indices, 0) != nnz || PyArray_DIM(out, 0) != n_rows ||
        PyArray_DIM(out, 1) != k) {
        PyErr_SetString(PyExc_ValueError, "inconsistent kernel shapes");
        return NULL;
    }
    {
        const npy_int64 *ind = (const npy_int64 *)PyArray_DATA(indices);
        const npy_int64 *ip = (const npy_int64 *)PyArray_DATA(indptr);
        npy_intp ldb = PyArray_DIM(B, 0);
        npy_intp ldo = n_rows;
        npy_intp cap = max_segment(ip, n_rows);
        int failed = 0;
        if (typenum == NPY_DOUBLE) {
            const npy_double *d = (const npy_double *)PyArray_DATA(data);
            const npy_double *b = (const npy_double *)PyArray_DATA(B);
            npy_double *o = (npy_double *)PyArray_DATA(out);
            npy_double *scratch =
                (npy_double *)malloc((size_t)cap * sizeof(npy_double));
            if (scratch == NULL) {
                failed = 1;
            }
            else {
                Py_BEGIN_ALLOW_THREADS
                matmat_f64(d, ind, ip, n_rows, k, b, ldb, o, ldo, scratch);
                Py_END_ALLOW_THREADS
                free(scratch);
            }
        }
        else {
            const npy_float *d = (const npy_float *)PyArray_DATA(data);
            const npy_float *b = (const npy_float *)PyArray_DATA(B);
            npy_float *o = (npy_float *)PyArray_DATA(out);
            npy_float *scratch =
                (npy_float *)malloc((size_t)cap * sizeof(npy_float));
            if (scratch == NULL) {
                failed = 1;
            }
            else {
                Py_BEGIN_ALLOW_THREADS
                matmat_f32(d, ind, ip, n_rows, k, b, ldb, o, ldo, scratch);
                Py_END_ALLOW_THREADS
                free(scratch);
            }
        }
        if (failed) {
            return PyErr_NoMemory();
        }
    }
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Module definition                                                   */
/* ------------------------------------------------------------------ */

static PyMethodDef csr_kernel_methods[] = {
    {"csr_matvec", py_csr_matvec, METH_VARARGS,
     "A @ v into a zeroed out (bincount order for f64, reduceat for f32)."},
    {"csr_rmatvec_scatter", py_csr_rmatvec_scatter, METH_VARARGS,
     "A.T @ u into a zeroed out, float64 bincount order."},
    {"csr_rmatvec_segments", py_csr_rmatvec_segments, METH_VARARGS,
     "A.T @ u into a zeroed out via column segments, reduceat order."},
    {"csr_adjoint_products", py_csr_adjoint_products, METH_VARARGS,
     "Elementwise adjoint stage: out[i] = data[i] * u[row(i)]."},
    {"csr_reduce_adjoint_scatter", py_csr_reduce_adjoint_scatter,
     METH_VARARGS, "Adjoint reduction into a zeroed out, float64 bincount "
     "order."},
    {"csr_reduce_adjoint_segments", py_csr_reduce_adjoint_segments,
     METH_VARARGS, "Adjoint reduction into a zeroed out via column "
     "segments, reduceat order."},
    {"csr_matmat", py_csr_matmat, METH_VARARGS,
     "A @ B for F-contiguous B into a zeroed F-contiguous out, reduceat "
     "order per column."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef csr_kernels_module = {
    PyModuleDef_HEAD_INIT,
    "_csr_kernels",
    "GIL-free compiled CSR kernels, bitwise-equal to the numpy reference.",
    -1,
    csr_kernel_methods,
};

PyMODINIT_FUNC
PyInit__csr_kernels(void)
{
    PyObject *module;
    import_array();
    module = PyModule_Create(&csr_kernels_module);
    if (module == NULL) {
        return NULL;
    }
    return module;
}
