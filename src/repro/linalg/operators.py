"""Matrix-free linear operators.

LSQR (and therefore SRDA's linear-time path) only ever needs two products:
``A @ v`` and ``A.T @ u``.  Expressing the data matrix as an *operator*
instead of an explicit array is what makes the paper's two memory tricks
implementable without densifying anything:

- :class:`AppendOnesOperator` realizes the bias-absorption trick of
  Section III-B — appending a constant 1 feature to every sample so the
  fitted intercept replaces explicit centering.
- :class:`CenteringOperator` realizes ``X - 1 μᵀ`` implicitly, for code
  paths (the LDA baseline analysis, tests) that need the centered matrix
  as an operator without allocating a dense copy.

The block solver adds two more products: ``A @ B`` and ``A.T @ U`` for
dense blocks ``B``/``U`` (``matmat``/``rmatmat``).  Every structural
operator forwards whole blocks to its base so a multi-RHS solve stays
matrix-free at block width — centering becomes one base ``matmat`` plus
a rank-one correction instead of ``k`` corrected mat-vecs.  Operators
without a specialized block product fall back to a per-column sweep of
``_matvec``, which keeps per-column semantics (fault injection, counts)
identical to the sequential path.

Operators compose, transpose, and count their products (for the empirical
complexity validation in :mod:`repro.complexity.counter`).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple, Union

import numpy as np

from repro._typing import DTypeLike, FloatArray, FloatDType, MatrixLike
from repro.exceptions import ReproError
from repro.linalg import kernels
from repro.linalg.sparse import CSRMatrix, as_value_dtype, is_sparse


class LinearOperator:
    """Base class: a shape plus ``matvec``/``rmatvec`` products.

    Subclasses must set ``self.shape`` and implement ``_matvec`` and
    ``_rmatvec``.  The public entry points validate dimensions and keep a
    product count so experiments can report how many passes over the data
    a solver made.
    """

    shape: Tuple[int, int]

    def __init__(self) -> None:
        self.n_matvec = 0
        self.n_rmatvec = 0
        self.n_matmat = 0
        self.n_rmatmat = 0

    @property
    def dtype(self) -> FloatDType:
        """Value dtype of the products (float64 unless data says float32)."""
        return np.dtype(np.float64)

    def _matvec(self, v: FloatArray) -> FloatArray:
        raise NotImplementedError

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        raise NotImplementedError

    def _matmat(self, B: FloatArray) -> FloatArray:
        # Per-column fallback.  Goes through _matvec, not matvec, so one
        # block product counts as one matmat — but still column by
        # column, so wrappers with per-product semantics (fault
        # injection) behave exactly as they would sequentially.
        first = self._matvec(np.ascontiguousarray(B[:, 0]))
        out = np.empty(
            (self.shape[0], B.shape[1]), dtype=first.dtype, order="F"
        )
        out[:, 0] = first
        for j in range(1, B.shape[1]):
            out[:, j] = self._matvec(np.ascontiguousarray(B[:, j]))
        return out

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        first = self._rmatvec(np.ascontiguousarray(U[:, 0]))
        out = np.empty(
            (self.shape[1], U.shape[1]), dtype=first.dtype, order="F"
        )
        out[:, 0] = first
        for j in range(1, U.shape[1]):
            out[:, j] = self._rmatvec(np.ascontiguousarray(U[:, j]))
        return out

    def matvec(self, v: FloatArray) -> FloatArray:
        """Compute ``A @ v``."""
        v = as_value_dtype(v)
        if v.shape != (self.shape[1],):
            raise ValueError(
                f"matvec expects length {self.shape[1]}, got {v.shape}"
            )
        self.n_matvec += 1
        return self._matvec(v)

    def rmatvec(self, u: FloatArray) -> FloatArray:
        """Compute ``A.T @ u``."""
        u = as_value_dtype(u)
        if u.shape != (self.shape[0],):
            raise ValueError(
                f"rmatvec expects length {self.shape[0]}, got {u.shape}"
            )
        self.n_rmatvec += 1
        return self._rmatvec(u)

    def matmat(self, B: FloatArray) -> FloatArray:
        """Compute ``A @ B`` for a dense block ``B`` in one pass."""
        B = as_value_dtype(B)
        if B.ndim == 1:
            return self.matvec(B)
        if B.shape[0] != self.shape[1]:
            raise ValueError(
                f"matmat expects {self.shape[1]} rows, got {B.shape[0]}"
            )
        if B.shape[1] == 0:
            return np.empty((self.shape[0], 0), dtype=self.dtype)
        self.n_matmat += 1
        return self._matmat(B)

    def rmatmat(self, U: FloatArray) -> FloatArray:
        """Compute ``A.T @ U`` for a dense block ``U`` in one pass."""
        U = as_value_dtype(U)
        if U.ndim == 1:
            return self.rmatvec(U)
        if U.shape[0] != self.shape[0]:
            raise ValueError(
                f"rmatmat expects {self.shape[0]} rows, got {U.shape[0]}"
            )
        if U.shape[1] == 0:
            return np.empty((self.shape[1], 0), dtype=self.dtype)
        self.n_rmatmat += 1
        return self._rmatmat(U)

    @property
    def T(self) -> "LinearOperator":
        """The transposed operator (matvec and rmatvec swapped)."""
        return TransposedOperator(self)

    def to_dense(self) -> FloatArray:
        """Materialize the operator (tests and small problems only)."""
        eye = np.eye(self.shape[1])
        return self.matmat(eye)

    def reset_counts(self) -> None:
        """Zero the product counters."""
        self.n_matvec = 0
        self.n_rmatvec = 0
        self.n_matmat = 0
        self.n_rmatmat = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shape={self.shape})"


class DenseOperator(LinearOperator):
    """Operator view over a dense ndarray.

    The value dtype follows the data: float32 input stays float32
    (halving bandwidth on the single-precision path), anything else is
    promoted to float64.
    """

    def __init__(self, array: MatrixLike) -> None:
        super().__init__()
        array = as_value_dtype(np.asarray(array))
        if array.ndim != 2:
            raise ValueError("DenseOperator requires a 2-D array")
        self.array: FloatArray = array
        self.shape = array.shape

    @property
    def dtype(self) -> FloatDType:
        return self.array.dtype

    def _matvec(self, v: FloatArray) -> FloatArray:
        return self.array @ v

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        return self.array.T @ u

    def _matmat(self, B: FloatArray) -> FloatArray:
        return self.array @ B

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        return self.array.T @ U


class CSROperator(LinearOperator):
    """Operator view over our :class:`CSRMatrix` or a scipy CSR matrix.

    Products route through the kernel dispatcher
    (:mod:`repro.linalg.kernels`), so the compiled GIL-free backend —
    when built and selected — serves every solver that reaches the data
    through this operator, bitwise-identically to the numpy reference.
    """

    def __init__(self, matrix: Union[CSRMatrix, Any]) -> None:
        super().__init__()
        if isinstance(matrix, CSRMatrix):
            self.matrix = matrix
        elif is_sparse(matrix):
            self.matrix = CSRMatrix.from_scipy(matrix)
        else:
            raise TypeError(f"expected a sparse matrix, got {type(matrix)}")
        self.shape = self.matrix.shape

    @property
    def dtype(self) -> FloatDType:
        return self.matrix.dtype

    def _matvec(self, v: FloatArray) -> FloatArray:
        return kernels.csr_matvec(self.matrix, v)

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        return kernels.csr_rmatvec(self.matrix, u)

    def _matmat(self, B: FloatArray) -> FloatArray:
        return kernels.csr_matmat(self.matrix, B)

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        return kernels.csr_rmatmat(self.matrix, U)


class TransposedOperator(LinearOperator):
    """Lazy transpose of another operator."""

    def __init__(self, base: LinearOperator) -> None:
        super().__init__()
        self.base = base
        self.shape = (base.shape[1], base.shape[0])

    @property
    def dtype(self) -> FloatDType:
        return self.base.dtype

    def _matvec(self, v: FloatArray) -> FloatArray:
        return self.base.rmatvec(v)

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        return self.base.matvec(u)

    def _matmat(self, B: FloatArray) -> FloatArray:
        return self.base.rmatmat(B)

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        return self.base.matmat(U)


class CenteringOperator(LinearOperator):
    """Implicit ``X - 1 μᵀ`` where ``μ`` is the column-mean vector.

    The centered data matrix of a sparse ``X`` is dense; the paper notes
    this is exactly what makes classic LDA infeasible on text data.  This
    operator applies the centered matrix without ever forming it:

    - ``(X - 1 μᵀ) v   = X v - (μ·v) 1``
    - ``(X - 1 μᵀ)ᵀ u  = Xᵀ u - (Σᵢ uᵢ) μ``
    """

    def __init__(
        self, base: LinearOperator, column_means: Optional[FloatArray] = None
    ) -> None:
        super().__init__()
        self.base = base
        self.shape = base.shape
        if column_means is None:
            # Probe in the base's value dtype so a float32 base yields
            # float32 means and the operator never upcasts products.
            ones = np.ones(base.shape[0], dtype=base.dtype)
            column_means = base.rmatvec(ones) / base.shape[0]
            base.reset_counts()
        column_means = np.asarray(column_means, dtype=base.dtype)
        if column_means.shape != (base.shape[1],):
            raise ValueError("column_means must have length n_features")
        self.column_means: FloatArray = column_means

    @property
    def dtype(self) -> FloatDType:
        return self.base.dtype

    def _matvec(self, v: FloatArray) -> FloatArray:
        shift = float(self.column_means @ v)
        return self.base.matvec(v) - shift

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        return self.base.rmatvec(u) - float(u.sum()) * self.column_means

    def _matmat(self, B: FloatArray) -> FloatArray:
        # (X - 1 μᵀ) B = X B - 1 (μᵀ B): one base block product plus a
        # rank-one correction — centering stays matrix-free at block width
        return self.base.matmat(B) - (self.column_means @ B)[None, :]

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        # (X - 1 μᵀ)ᵀ U = Xᵀ U - μ (1ᵀ U)
        return self.base.rmatmat(U) - np.outer(
            self.column_means, U.sum(axis=0)
        )


class AppendOnesOperator(LinearOperator):
    """Implicit ``[X | 1]`` — the bias-absorption trick of Section III-B.

    Appending a constant 1 feature lets the regression intercept absorb
    the class-mean offsets, so SRDA can regress on the raw (sparse,
    uncentered) data.  The augmented matrix is never formed:

    - ``[X | 1] v = X v[:-1] + v[-1] 1``
    - ``[X | 1]ᵀ u = (Xᵀ u, Σᵢ uᵢ)``
    """

    def __init__(self, base: LinearOperator) -> None:
        super().__init__()
        self.base = base
        self.shape = (base.shape[0], base.shape[1] + 1)

    @property
    def dtype(self) -> FloatDType:
        return self.base.dtype

    def _matvec(self, v: FloatArray) -> FloatArray:
        return self.base.matvec(v[:-1]) + v[-1]

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        head = self.base.rmatvec(u)
        return np.concatenate([head, [u.sum()]])

    def _matmat(self, B: FloatArray) -> FloatArray:
        # [X | 1] B = X B[:-1] + 1 B[-1]
        return self.base.matmat(B[:-1]) + B[-1][None, :]

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        head = self.base.rmatmat(U)
        return np.vstack([head, U.sum(axis=0)[None, :]])


class InjectedFaultError(ReproError, RuntimeError):
    """Raised by :class:`FaultyOperator` when a scheduled fault fires."""


class FaultyOperator(LinearOperator):
    """Fault-injection wrapper: corrupt or abort mat-vecs on schedule.

    Testing scaffolding for the robustness layer — wraps any operator
    and, on selected products, either corrupts the output (NaN/Inf) or
    raises :class:`InjectedFaultError`.  Products are counted across
    ``matvec`` *and* ``rmatvec`` in call order, so ``fail_at={3}``
    poisons the fourth product LSQR requests regardless of direction.

    Parameters
    ----------
    base:
        The healthy operator to wrap.
    fail_at:
        Iterable of 0-based product indices at which to inject.
    fail_every:
        Alternatively (or additionally), inject on every ``k``-th
        product (indices ``k-1, 2k-1, ...``).
    mode:
        ``"nan"`` / ``"inf"`` corrupt the first output entry;
        ``"raise"`` raises :class:`InjectedFaultError`.

    Attributes
    ----------
    n_faults_injected:
        How many faults actually fired.
    """

    def __init__(
        self,
        base: LinearOperator,
        fail_at: Iterable[int] = (),
        fail_every: Optional[int] = None,
        mode: str = "nan",
    ) -> None:
        super().__init__()
        if mode not in ("nan", "inf", "raise"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if fail_every is not None and fail_every < 1:
            raise ValueError("fail_every must be a positive integer")
        self.base = base
        self.shape = base.shape
        self.fail_at = frozenset(int(i) for i in fail_at)
        self.fail_every = fail_every
        self.mode = mode
        self.n_products = 0
        self.n_faults_injected = 0

    @property
    def dtype(self) -> FloatDType:
        return self.base.dtype

    def _due(self) -> bool:
        index = self.n_products
        self.n_products += 1
        if index in self.fail_at:
            return True
        if self.fail_every is not None and (index + 1) % self.fail_every == 0:
            return True
        return False

    def _inject(self, out: FloatArray, direction: str) -> FloatArray:
        self.n_faults_injected += 1
        if self.mode == "raise":
            raise InjectedFaultError(
                f"injected fault on {direction} product "
                f"#{self.n_products - 1}"
            )
        # Copy in the base's own dtype: a float32 pipeline must see the
        # corruption in float32, not a silently upcast float64 product.
        out = np.array(out, copy=True)
        if out.size:
            out[0] = np.nan if self.mode == "nan" else np.inf
        return out

    def _matvec(self, v: FloatArray) -> FloatArray:
        due = self._due()
        out = self.base.matvec(v)
        return self._inject(out, "matvec") if due else out

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        due = self._due()
        out = self.base.rmatvec(u)
        return self._inject(out, "rmatvec") if due else out


class ScaledOperator(LinearOperator):
    """``c * A`` for a scalar ``c``."""

    def __init__(self, base: LinearOperator, scale: float) -> None:
        super().__init__()
        self.base = base
        self.scale = float(scale)
        self.shape = base.shape

    @property
    def dtype(self) -> FloatDType:
        return self.base.dtype

    def _matvec(self, v: FloatArray) -> FloatArray:
        return self.scale * self.base.matvec(v)

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        return self.scale * self.base.rmatvec(u)

    def _matmat(self, B: FloatArray) -> FloatArray:
        return self.scale * self.base.matmat(B)

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        return self.scale * self.base.rmatmat(U)


class StackedOperator(LinearOperator):
    """Vertical stack ``[A; B]`` of two operators with equal column counts.

    Used to express the damped least-squares system ``[X; √α I]`` that
    LSQR solves when regularization is folded into the operator rather
    than handled by LSQR's own ``damp`` parameter (the two paths are
    equivalent; having both lets tests cross-check them).
    """

    def __init__(self, top: LinearOperator, bottom: LinearOperator) -> None:
        super().__init__()
        if top.shape[1] != bottom.shape[1]:
            raise ValueError("stacked operators must share column count")
        self.top = top
        self.bottom = bottom
        self.shape = (top.shape[0] + bottom.shape[0], top.shape[1])

    @property
    def dtype(self) -> FloatDType:
        return np.result_type(self.top.dtype, self.bottom.dtype)

    def _matvec(self, v: FloatArray) -> FloatArray:
        return np.concatenate([self.top.matvec(v), self.bottom.matvec(v)])

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        head = u[: self.top.shape[0]]
        tail = u[self.top.shape[0] :]
        return self.top.rmatvec(head) + self.bottom.rmatvec(tail)

    def _matmat(self, B: FloatArray) -> FloatArray:
        return np.vstack([self.top.matmat(B), self.bottom.matmat(B)])

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        head = U[: self.top.shape[0]]
        tail = U[self.top.shape[0] :]
        return self.top.rmatmat(head) + self.bottom.rmatmat(tail)


class IdentityOperator(LinearOperator):
    """``c * I`` on n-dimensional vectors.

    ``dtype`` declares the value dtype of products; pass the data
    operator's dtype when stacking (``[X; √α I]``) so the stack's
    promoted dtype matches ``X`` instead of defaulting to float64.
    """

    def __init__(
        self, n: int, scale: float = 1.0, dtype: DTypeLike = np.float64
    ) -> None:
        super().__init__()
        self.shape = (n, n)
        self.scale = float(scale)
        self._dtype: FloatDType = np.dtype(dtype)

    @property
    def dtype(self) -> FloatDType:
        return self._dtype

    def _matvec(self, v: FloatArray) -> FloatArray:
        return self.scale * v

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        return self.scale * u

    def _matmat(self, B: FloatArray) -> FloatArray:
        return self.scale * B

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        return self.scale * U


def as_operator(X: MatrixLike) -> LinearOperator:
    """Wrap a dense array, CSRMatrix, scipy sparse matrix, or operator.

    Complexity: O(1) — wrapping only; no data is copied or scanned.

    Dense input keeps its value dtype (float32 stays float32); see
    :func:`repro.linalg.sparse.as_value_dtype`.
    """
    if isinstance(X, LinearOperator):
        return X
    if isinstance(X, CSRMatrix) or is_sparse(X):
        return CSROperator(X)
    return DenseOperator(np.asarray(X))
