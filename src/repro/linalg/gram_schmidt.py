"""Modified Gram–Schmidt orthogonalization.

SRDA's response-generation step (Section III, Eqn 15/16) takes the ``c``
class-indicator eigenvectors of the graph matrix ``W`` together with the
all-ones vector, orthogonalizes them, and discards the all-ones direction.
The paper quotes this step at ``O(m c²)`` flam and ``O(m c)`` memory — it
is the cheap half of the algorithm, and this module provides it.

We use *modified* Gram–Schmidt with one optional re-orthogonalization pass
(the classical variant loses orthogonality catastrophically for nearly
dependent inputs), and detect rank deficiency via a relative tolerance so
the caller can drop dependent vectors instead of dividing by ~0.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro._typing import ArrayLike, Float64Array, IntArray


def orthogonalize_against(
    v: ArrayLike, basis: ArrayLike, reorthogonalize: bool = True
) -> Float64Array:
    """Remove from ``v`` its components along orthonormal ``basis`` columns.

    Complexity: O(m·k) — one (or two, reorthogonalized) sweeps over the
    ``k`` basis columns of length ``m``.

    Parameters
    ----------
    v:
        Vector of length ``m``.
    basis:
        ``(m, k)`` matrix whose columns are orthonormal.
    reorthogonalize:
        Apply the projection twice ("twice is enough" — Kahan/Parlett);
        keeps the result orthogonal to working precision even when ``v``
        is nearly inside the span of ``basis``.
    """
    work = np.asarray(v, dtype=np.float64).copy()
    Q = np.asarray(basis, dtype=np.float64)
    if Q.ndim != 2 or Q.shape[0] != work.shape[0]:
        raise ValueError("basis must be (m, k) with m matching v")
    passes = 2 if reorthogonalize else 1
    for _ in range(passes):
        for j in range(Q.shape[1]):
            column = Q[:, j]
            work -= (column @ work) * column
    return work


def orthonormalize(
    vectors: ArrayLike,
    tol: float = 1e-10,
    reorthogonalize: bool = True,
) -> Tuple[Float64Array, IntArray]:
    """Orthonormalize the columns of ``vectors`` by modified Gram–Schmidt.

    Complexity: O(m·k^2) — the paper's quoted cost for the response
    step with ``k = c`` indicator columns (Table I's cheap half).

    Returns ``(Q, kept)`` where ``Q`` is ``(m, r)`` with orthonormal
    columns spanning the input, and ``kept`` holds the indices of the
    input columns that survived (columns that were linearly dependent on
    earlier ones, relative to ``tol`` times their original norm, are
    dropped).
    """
    V = np.asarray(vectors, dtype=np.float64)
    if V.ndim != 2:
        raise ValueError("expected a 2-D array of column vectors")
    m, k = V.shape
    columns: List[Float64Array] = []
    kept: List[int] = []
    for j in range(k):
        v = V[:, j].copy()
        original_norm = np.linalg.norm(v)
        if original_norm == 0.0:
            continue
        if columns:
            basis = np.column_stack(columns)
            v = orthogonalize_against(v, basis, reorthogonalize)
        norm = np.linalg.norm(v)
        if norm <= tol * original_norm:
            continue
        columns.append(v / norm)
        kept.append(j)
    if not columns:
        return np.empty((m, 0)), np.empty(0, dtype=np.int64)
    return np.column_stack(columns), np.asarray(kept, dtype=np.int64)


def orthonormality_error(Q: ArrayLike) -> float:
    """Max-abs deviation of ``QᵀQ`` from the identity (a test helper).

    Complexity: O(m·k^2) — builds the full ``k × k`` Gram matrix.
    """
    dense = np.asarray(Q, dtype=np.float64)
    if dense.shape[1] == 0:
        return 0.0
    gram = dense.T @ dense
    return float(np.abs(gram - np.eye(dense.shape[1])).max())


def project_onto_span(v: ArrayLike, basis: ArrayLike) -> Float64Array:
    """Orthogonal projection of ``v`` onto the span of orthonormal columns.

    Complexity: O(m·k) — two thin matrix–vector products.
    """
    Q = np.asarray(basis, dtype=np.float64)
    dense_v = np.asarray(v, dtype=np.float64)
    result: Float64Array = Q @ (Q.T @ dense_v)
    return result


def gram_schmidt_qr(
    A: ArrayLike, tol: float = 1e-10
) -> Tuple[Float64Array, Float64Array, IntArray]:
    """Thin QR factorization ``A = Q R`` via modified Gram–Schmidt.

    Complexity: O(m·k^2) for a ``(m, k)`` input — twice that of a
    single-pass MGS because of the stability re-projection.

    Used by the IDR/QR baseline, which is defined by a QR factorization
    of the class-centroid matrix.  Returns ``(Q, R, kept)``; when ``A``
    is rank-deficient the dependent columns are dropped from ``Q`` and
    ``kept`` records the survivors, with ``R`` of shape ``(r, k)`` still
    satisfying ``A ≈ Q R``.
    """
    dense = np.asarray(A, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError("expected a 2-D array")
    m, k = dense.shape
    Q_cols: List[Float64Array] = []
    kept: List[int] = []
    R = np.zeros((k, k))
    for j in range(k):
        v = dense[:, j].copy()
        original_norm = np.linalg.norm(v)
        for i, q in enumerate(Q_cols):
            # two projection passes for stability
            coeff = q @ v
            v -= coeff * q
            extra = q @ v
            v -= extra * q
            R[i, j] += coeff + extra
        norm = np.linalg.norm(v)
        if original_norm == 0.0 or norm <= tol * max(original_norm, 1.0):
            continue
        R[len(Q_cols), j] = norm
        Q_cols.append(v / norm)
        kept.append(j)
    if not Q_cols:
        return np.empty((m, 0)), np.empty((0, k)), np.empty(0, dtype=np.int64)
    r = len(Q_cols)
    return (
        np.column_stack(Q_cols),
        R[:r, :],
        np.asarray(kept, dtype=np.int64),
    )
