"""Modified Gram–Schmidt orthogonalization.

SRDA's response-generation step (Section III, Eqn 15/16) takes the ``c``
class-indicator eigenvectors of the graph matrix ``W`` together with the
all-ones vector, orthogonalizes them, and discards the all-ones direction.
The paper quotes this step at ``O(m c²)`` flam and ``O(m c)`` memory — it
is the cheap half of the algorithm, and this module provides it.

We use *modified* Gram–Schmidt with one optional re-orthogonalization pass
(the classical variant loses orthogonality catastrophically for nearly
dependent inputs), and detect rank deficiency via a relative tolerance so
the caller can drop dependent vectors instead of dividing by ~0.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def orthogonalize_against(
    v: np.ndarray, basis: np.ndarray, reorthogonalize: bool = True
) -> np.ndarray:
    """Remove from ``v`` its components along orthonormal ``basis`` columns.

    Parameters
    ----------
    v:
        Vector of length ``m``.
    basis:
        ``(m, k)`` matrix whose columns are orthonormal.
    reorthogonalize:
        Apply the projection twice ("twice is enough" — Kahan/Parlett);
        keeps the result orthogonal to working precision even when ``v``
        is nearly inside the span of ``basis``.
    """
    v = np.asarray(v, dtype=np.float64).copy()
    basis = np.asarray(basis, dtype=np.float64)
    if basis.ndim != 2 or basis.shape[0] != v.shape[0]:
        raise ValueError("basis must be (m, k) with m matching v")
    passes = 2 if reorthogonalize else 1
    for _ in range(passes):
        for j in range(basis.shape[1]):
            column = basis[:, j]
            v -= (column @ v) * column
    return v


def orthonormalize(
    vectors: np.ndarray,
    tol: float = 1e-10,
    reorthogonalize: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Orthonormalize the columns of ``vectors`` by modified Gram–Schmidt.

    Returns ``(Q, kept)`` where ``Q`` is ``(m, r)`` with orthonormal
    columns spanning the input, and ``kept`` holds the indices of the
    input columns that survived (columns that were linearly dependent on
    earlier ones, relative to ``tol`` times their original norm, are
    dropped).
    """
    V = np.asarray(vectors, dtype=np.float64)
    if V.ndim != 2:
        raise ValueError("expected a 2-D array of column vectors")
    m, k = V.shape
    columns = []
    kept = []
    for j in range(k):
        v = V[:, j].copy()
        original_norm = np.linalg.norm(v)
        if original_norm == 0.0:
            continue
        if columns:
            basis = np.column_stack(columns)
            v = orthogonalize_against(v, basis, reorthogonalize)
        norm = np.linalg.norm(v)
        if norm <= tol * original_norm:
            continue
        columns.append(v / norm)
        kept.append(j)
    if not columns:
        return np.empty((m, 0)), np.empty(0, dtype=np.int64)
    return np.column_stack(columns), np.asarray(kept, dtype=np.int64)


def orthonormality_error(Q: np.ndarray) -> float:
    """Max-abs deviation of ``QᵀQ`` from the identity (a test helper)."""
    Q = np.asarray(Q, dtype=np.float64)
    if Q.shape[1] == 0:
        return 0.0
    gram = Q.T @ Q
    return float(np.abs(gram - np.eye(Q.shape[1])).max())


def project_onto_span(v: np.ndarray, basis: np.ndarray) -> np.ndarray:
    """Orthogonal projection of ``v`` onto the span of orthonormal columns."""
    basis = np.asarray(basis, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    return basis @ (basis.T @ v)


def gram_schmidt_qr(
    A: np.ndarray, tol: float = 1e-10
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Thin QR factorization ``A = Q R`` via modified Gram–Schmidt.

    Used by the IDR/QR baseline, which is defined by a QR factorization
    of the class-centroid matrix.  Returns ``(Q, R, kept)``; when ``A``
    is rank-deficient the dependent columns are dropped from ``Q`` and
    ``kept`` records the survivors, with ``R`` of shape ``(r, k)`` still
    satisfying ``A ≈ Q R``.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2:
        raise ValueError("expected a 2-D array")
    m, k = A.shape
    Q_cols = []
    kept = []
    R = np.zeros((k, k))
    for j in range(k):
        v = A[:, j].copy()
        original_norm = np.linalg.norm(v)
        for i, q in enumerate(Q_cols):
            # two projection passes for stability
            coeff = q @ v
            v -= coeff * q
            extra = q @ v
            v -= extra * q
            R[i, j] += coeff + extra
        norm = np.linalg.norm(v)
        if original_norm == 0.0 or norm <= tol * max(original_norm, 1.0):
            continue
        R[len(Q_cols), j] = norm
        Q_cols.append(v / norm)
        kept.append(j)
    if not Q_cols:
        return np.empty((m, 0)), np.empty((0, k)), np.empty(0, dtype=np.int64)
    r = len(Q_cols)
    return (
        np.column_stack(Q_cols),
        R[:r, :],
        np.asarray(kept, dtype=np.int64),
    )
