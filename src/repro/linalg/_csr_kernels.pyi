"""Type stub for the optional compiled CSR kernel extension.

All functions write into a caller-allocated (zeroed, where the kernel
accumulates) output array and return ``None``; dtype/contiguity/shape
violations raise ``ValueError``.
"""

import numpy as np
from numpy.typing import NDArray

_Values = NDArray[np.floating]
_Index = NDArray[np.int64]

def csr_matvec(
    data: _Values,
    indices: _Index,
    indptr: _Index,
    v: _Values,
    out: _Values,
) -> None: ...
def csr_rmatvec_scatter(
    data: _Values,
    indices: _Index,
    indptr: _Index,
    u: _Values,
    out: _Values,
) -> None: ...
def csr_rmatvec_segments(
    data: _Values,
    row_ids: _Index,
    order: _Index,
    starts: _Index,
    cols: _Index,
    u: _Values,
    out: _Values,
) -> None: ...
def csr_adjoint_products(
    data: _Values,
    indptr: _Index,
    u: _Values,
    out: _Values,
) -> None: ...
def csr_reduce_adjoint_scatter(
    indices: _Index,
    products: _Values,
    out: _Values,
) -> None: ...
def csr_reduce_adjoint_segments(
    products: _Values,
    order: _Index,
    starts: _Index,
    cols: _Index,
    out: _Values,
) -> None: ...
def csr_matmat(
    data: _Values,
    indices: _Index,
    indptr: _Index,
    B: _Values,
    out: _Values,
) -> None: ...
