"""Cholesky factorization and triangular solves.

The normal-equations path of SRDA (Section III-C.1) factors the
regularized Gram matrix ``XᵀX + αI`` (or its ``m×m`` dual ``XXᵀ + αI``
when ``n > m``) as ``R R ᵀ`` with ``R`` triangular, at ``n³/3`` flam, and
then back-substitutes each of the ``c-1`` responses at ``n²`` flam each.
This module implements that substrate from scratch:

- :func:`cholesky` — blocked right-looking Cholesky (lower triangular),
  with an explicit positive-definiteness check.
- :func:`solve_triangular` — forward/back substitution, vector or matrix
  right-hand sides.
- :func:`solve_cholesky` — factor once, solve many.

The blocked factorization does its inner updates with matrix products, so
the from-scratch code runs at BLAS speed for the sizes in the paper.
"""

from __future__ import annotations

import numpy as np

from repro._typing import ArrayLike, Float64Array
from repro.exceptions import ReproError


class NotPositiveDefiniteError(ReproError, ValueError):
    """Raised when a matrix handed to :func:`cholesky` is not SPD."""


def cholesky(A: ArrayLike, block_size: int = 64) -> Float64Array:
    """Compute the lower-triangular Cholesky factor ``L`` with ``A = L Lᵀ``.

    Complexity: O(n^3) — the dense-baseline cost SRDA's iterative
    regression avoids (``n³/3`` flam, blocked or not).

    Parameters
    ----------
    A:
        Symmetric positive-definite matrix.  Only the lower triangle is
        read.
    block_size:
        Panel width of the blocked algorithm.  Each diagonal panel is
        factored unblocked, then the trailing submatrix is updated with
        one triangular solve and one symmetric rank-k update.

    Raises
    ------
    NotPositiveDefiniteError
        If a non-positive pivot is encountered.
    """
    matrix = np.asarray(A, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("cholesky requires a square matrix")
    n = matrix.shape[0]
    L = np.tril(matrix).astype(np.float64, copy=True)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        _factor_panel(L, start, stop)
        if stop < n:
            # L21 <- A21 * L11^{-T}
            L11 = L[start:stop, start:stop]
            L[stop:, start:stop] = solve_triangular(
                L11, L[stop:, start:stop].T, lower=True
            ).T
            # A22 <- A22 - L21 L21ᵀ  (lower triangle only matters)
            L21 = L[stop:, start:stop]
            L[stop:, stop:] -= L21 @ L21.T
    return np.tril(L)


def _factor_panel(L: Float64Array, start: int, stop: int) -> None:
    """Unblocked Cholesky of the diagonal panel ``L[start:stop, start:stop]``."""
    for j in range(start, stop):
        pivot = L[j, j]
        if pivot <= 0.0 or not np.isfinite(pivot):
            raise NotPositiveDefiniteError(
                f"leading minor {j + 1} is not positive definite "
                f"(pivot={pivot!r})"
            )
        L[j, j] = np.sqrt(pivot)
        if j + 1 < stop:
            L[j + 1 : stop, j] /= L[j, j]
            rows = slice(j + 1, stop)
            L[rows, rows] -= np.outer(L[rows, j], L[rows, j])


def solve_triangular(
    L: ArrayLike, b: ArrayLike, lower: bool = True
) -> Float64Array:
    """Solve ``L x = b`` for triangular ``L`` by substitution.

    Complexity: O(n^2) per right-hand side (O(n^2·c) for a ``c``-column
    block).

    Accepts a vector or matrix right-hand side.  Row-block substitution
    (64 rows at a time) keeps the inner work in matrix products.
    """
    factor = np.asarray(L, dtype=np.float64)
    rhs = np.asarray(b, dtype=np.float64)
    n = factor.shape[0]
    if factor.ndim != 2 or factor.shape[1] != n:
        raise ValueError("triangular solve requires a square matrix")
    vector_input = rhs.ndim == 1
    B = rhs.reshape(n, -1).astype(np.float64, copy=True)
    block = 64
    if lower:
        for start in range(0, n, block):
            stop = min(start + block, n)
            if start:
                B[start:stop] -= factor[start:stop, :start] @ B[:start]
            for i in range(start, stop):
                if start < i:
                    B[i] -= factor[i, start:i] @ B[start:i]
                diag = factor[i, i]
                if diag == 0.0:
                    raise np.linalg.LinAlgError("singular triangular matrix")
                B[i] /= diag
    else:
        for stop in range(n, 0, -block):
            start = max(stop - block, 0)
            if stop < n:
                B[start:stop] -= factor[start:stop, stop:] @ B[stop:]
            for i in range(stop - 1, start - 1, -1):
                if i + 1 < stop:
                    B[i] -= factor[i, i + 1 : stop] @ B[i + 1 : stop]
                diag = factor[i, i]
                if diag == 0.0:
                    raise np.linalg.LinAlgError("singular triangular matrix")
                B[i] /= diag
    return B[:, 0] if vector_input else B


def solve_cholesky(A: ArrayLike, b: ArrayLike) -> Float64Array:
    """Solve ``A x = b`` for SPD ``A`` via Cholesky (factor once per call).

    Complexity: O(n^3) — dominated by the factorization.
    """
    L = cholesky(A)
    y = solve_triangular(L, b, lower=True)
    return solve_triangular(L.T, y, lower=False)


def solve_factored(L: ArrayLike, b: ArrayLike) -> Float64Array:
    """Solve with a precomputed lower factor ``L`` (``A = L Lᵀ``).

    Complexity: O(n^2) per right-hand side — two triangular solves.

    This is the "factor once, solve ``c-1`` right-hand sides" pattern the
    complexity analysis counts: the factorization dominates, each extra
    response costs only two triangular solves.
    """
    y = solve_triangular(L, b, lower=True)
    return solve_triangular(L.T, y, lower=False)
