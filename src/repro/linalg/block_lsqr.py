"""Block LSQR — multi-RHS Golub–Kahan iteration with shared mat-mats.

SRDA's fit cost is ``c-1`` independent damped least-squares solves
against the *same* operator.  Running them through
:func:`repro.linalg.lsqr.lsqr` one at a time issues ``2(c-1)``
memory-bound products per iteration; this module carries all right-hand
sides through one Golub–Kahan iteration, so each step touches the data
exactly twice (one ``A @ V`` and one ``A.T @ U`` block product) no
matter how many systems ride along.  The scalar QR recurrences are
independent per column, so every column reproduces the sequential
iteration up to floating-point summation order: istop codes, damping,
warm starts, and the istop-8/9 failure semantics of
:func:`repro.linalg.lsqr.lsqr` all carry over per column.

Columns stop independently.  A column whose convergence test fires (or
that hits istop 8/9) is frozen — its solution and diagnostics recorded
at that iteration — and compacted out of the working block, so late
iterations only pay for the columns still running.

:class:`SharedBidiagonalization` exploits the fact that the Golub–Kahan
basis depends only on ``(A, B)`` and never on ``damp``: it records the
basis once (``2·depth + 1`` operator passes over the data) and then
re-solves for any number of damping values with *zero* further operator
products — the engine behind the one-pass alpha sweep.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro._typing import BoolArray, FloatArray, IntArray, MatrixLike

from repro.linalg.lsqr import (
    _STAGNATION_FLOOR,
    _STAGNATION_RTOL,
    _STAGNATION_WINDOW,
    FAILURE_ISTOPS,
    LSQRResult,
)
from repro.linalg.operators import (
    IdentityOperator,
    LinearOperator,
    StackedOperator,
    as_operator,
)
from repro.linalg.sparse import as_value_dtype
from repro.observability.hooks import IterationEvent, IterationHook

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.linalg.sketch import SketchPreconditioner


def _block_event(
    solver: str,
    itn: int,
    state: "_ColumnState",
    istop_iter: IntArray,
    active: IntArray,
) -> IterationEvent:
    """One observability event for a whole block iteration.

    ``r2norm``/``arnorm`` are the maxima over still-finite columns (a
    diverged lane's NaN must not poison the trace); ``istop`` is the
    strongest code any column hit this iteration (0 while all run).
    """
    finite_r2 = state.r2norm[np.isfinite(state.r2norm)]
    finite_ar = state.arnorm[np.isfinite(state.arnorm)]
    return IterationEvent(
        solver=solver,
        itn=itn,
        r2norm=float(finite_r2.max()) if finite_r2.size else 0.0,
        arnorm=float(finite_ar.max()) if finite_ar.size else 0.0,
        istop=int(istop_iter.max()) if istop_iter.size else 0,
        active=[int(col) for col in active],
    )


def _masked_errstate(fn):
    """Silence IEEE warnings from already-poisoned column lanes.

    The sequential solver breaks out of its loop the moment a non-finite
    quantity appears, so it never performs arithmetic on NaN/Inf.  The
    blocked iteration must carry a poisoned lane to the end of the
    iteration that froze it (the lane is compacted out afterwards), and
    the vectorized updates run over every lane — the resulting
    ``invalid``/``overflow`` signals describe values that are already
    frozen as istop 8 and never reach the output.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            return fn(*args, **kwargs)

    return wrapper


def _column_norms(block: FloatArray) -> FloatArray:
    """Per-column 2-norms of a 2-D block, accumulated in float64."""
    return np.sqrt(np.einsum("ij,ij->j", block, block, dtype=np.float64))


@dataclass
class BlockLSQRResult:
    """Outcome of a blocked LSQR run: per-column arrays of diagnostics.

    Attributes mirror :class:`repro.linalg.lsqr.LSQRResult`, vectorized
    over the ``k`` right-hand sides: ``X`` is ``(n, k)`` and every
    diagnostic is a length-``k`` array whose entry ``j`` is exactly what
    the sequential solver would have reported for column ``j``.
    """

    X: FloatArray
    istop: IntArray
    itn: IntArray
    r1norm: FloatArray
    r2norm: FloatArray
    anorm: FloatArray
    acond: FloatArray
    arnorm: FloatArray
    xnorm: FloatArray
    residual_history: List[List[float]] = field(default_factory=list)

    @property
    def n_columns(self) -> int:
        return int(self.istop.size)

    @property
    def failed(self) -> BoolArray:
        """Boolean mask of columns that diverged (8) or stagnated (9)."""
        return np.isin(self.istop, tuple(FAILURE_ISTOPS))

    @property
    def any_failed(self) -> bool:
        return bool(self.failed.any())

    def column(self, j: int) -> LSQRResult:
        """Column ``j`` repackaged as a sequential :class:`LSQRResult`."""
        return LSQRResult(
            x=np.array(self.X[:, j]),
            istop=int(self.istop[j]),
            itn=int(self.itn[j]),
            r1norm=float(self.r1norm[j]),
            r2norm=float(self.r2norm[j]),
            anorm=float(self.anorm[j]),
            acond=float(self.acond[j]),
            arnorm=float(self.arnorm[j]),
            xnorm=float(self.xnorm[j]),
            residual_history=list(self.residual_history[j]),
        )


class _ColumnState:
    """Per-column scalar recurrences of the damped LSQR QR step.

    Every field is a length-``k_active`` float64 array; :meth:`take`
    compacts all of them together when columns freeze.  The update
    methods replay the sequential solver's scalar arithmetic verbatim,
    just vectorized across columns.
    """

    _FIELDS = (
        "rhobar",
        "phibar",
        "bnorm",
        "rnorm",
        "r1norm",
        "r2norm",
        "arnorm",
        "anorm",
        "acond",
        "ddnorm",
        "res2",
        "xnorm",
        "xxnorm",
        "z",
        "cs2",
        "sn2",
        "prev_r2norm",
        "stalled",
        "rho",
        "phi",
        "theta",
        "psi",
        "tau",
    )

    def __init__(self, alfa: FloatArray, beta: FloatArray, dampsq: float):
        k = beta.size
        self.dampsq = float(dampsq)
        self.rhobar = alfa.astype(np.float64, copy=True)
        self.phibar = beta.astype(np.float64, copy=True)
        self.bnorm = self.phibar.copy()
        self.rnorm = self.phibar.copy()
        self.r1norm = self.phibar.copy()
        self.r2norm = self.phibar.copy()
        self.arnorm = self.rhobar * self.phibar
        self.anorm = np.zeros(k)
        self.acond = np.zeros(k)
        self.ddnorm = np.zeros(k)
        self.res2 = np.zeros(k)
        self.xnorm = np.zeros(k)
        self.xxnorm = np.zeros(k)
        self.z = np.zeros(k)
        self.cs2 = np.full(k, -1.0)
        self.sn2 = np.zeros(k)
        self.prev_r2norm = self.r2norm.copy()
        self.stalled = np.zeros(k, dtype=np.int64)
        self.rho = np.zeros(k)
        self.phi = np.zeros(k)
        self.theta = np.zeros(k)
        self.psi = np.zeros(k)
        self.tau = np.zeros(k)

    def take(self, idx: IntArray) -> None:
        """Keep only the columns at ``idx`` (local indices)."""
        for name in self._FIELDS:
            setattr(self, name, getattr(self, name)[idx])

    def rotation(self, alfa: FloatArray, beta: FloatArray, damp: float):
        """Damping + Givens rotations; returns the (t1, t2) step sizes."""
        if damp > 0:
            rhobar1 = np.sqrt(self.rhobar**2 + self.dampsq)
            cs1 = self.rhobar / rhobar1
            sn1 = damp / rhobar1
            psi = sn1 * self.phibar
            self.phibar = cs1 * self.phibar
        else:
            rhobar1 = self.rhobar
            psi = np.zeros_like(rhobar1)
        rho = np.sqrt(rhobar1**2 + beta**2)
        cs = rhobar1 / rho
        sn = beta / rho
        theta = sn * alfa
        self.rhobar = -cs * alfa
        phi = cs * self.phibar
        self.phibar = sn * self.phibar
        self.rho = rho
        self.phi = phi
        self.theta = theta
        self.psi = psi
        self.tau = sn * phi
        return phi / rho, -theta / rho

    def diagnostics(self, alfa: FloatArray, wnorm_sq: FloatArray) -> None:
        """Norm estimates after the rotation (sequential lines, batched)."""
        rho, phi, theta = self.rho, self.phi, self.theta
        self.ddnorm = self.ddnorm + wnorm_sq / rho**2
        delta = self.sn2 * rho
        gambar = -self.cs2 * rho
        rhs = phi - delta * self.z
        zbar = rhs / gambar
        self.xnorm = np.sqrt(self.xxnorm + zbar**2)
        gamma = np.sqrt(gambar**2 + theta**2)
        self.cs2 = gambar / gamma
        self.sn2 = theta / gamma
        self.z = rhs / gamma
        self.xxnorm = self.xxnorm + self.z**2
        self.acond = self.anorm * np.sqrt(self.ddnorm)
        self.res2 = self.res2 + self.psi**2
        self.rnorm = np.sqrt(self.phibar**2 + self.res2)
        self.arnorm = alfa * np.abs(self.tau)
        r1sq = self.rnorm**2 - self.dampsq * self.xxnorm
        r1 = np.sqrt(np.abs(r1sq))
        self.r1norm = np.where(r1sq < 0, -r1, r1)
        self.r2norm = self.rnorm.copy()


def _post_step_istop(
    state: _ColumnState,
    itn: int,
    iter_lim: int,
    atol: float,
    btol: float,
    ctol: float,
) -> FloatArray:
    """Per-column istop after one iteration (0 where nothing fired).

    Replays the sequential solver's check order: non-finite → 8 wins,
    stagnation → 9 next, then the convergence cascade 7…1 where later
    (stronger) assignments override earlier ones.
    """
    k = state.rnorm.size
    nonfinite = ~np.isfinite(state.r2norm) | ~np.isfinite(state.xnorm)

    stalled_now = (state.prev_r2norm - state.r2norm) <= _STAGNATION_RTOL * (
        np.maximum(state.prev_r2norm, 1.0)
    )
    state.stalled = np.where(stalled_now, state.stalled + 1, 0)
    state.prev_r2norm = state.r2norm.copy()

    bpos = state.bnorm > 0
    test1 = np.divide(state.rnorm, state.bnorm, out=np.zeros(k), where=bpos)
    anr = state.anorm * state.rnorm
    test2 = np.divide(state.arnorm, anr, out=np.zeros(k), where=anr > 0)
    test3 = np.divide(
        1.0, state.acond, out=np.zeros(k), where=state.acond > 0
    )
    stagnated = (
        (state.stalled >= _STAGNATION_WINDOW)
        & (test1 > _STAGNATION_FLOOR)
        & (test2 > _STAGNATION_FLOOR)
    )
    ratio = np.divide(
        state.anorm * state.xnorm, state.bnorm, out=np.zeros(k), where=bpos
    )
    t1_stop = np.where(bpos, test1 / (1.0 + ratio), 0.0)
    rtol = np.where(bpos, btol + atol * ratio, 0.0)

    istop = np.zeros(k, dtype=np.int64)
    if itn >= iter_lim:
        istop[:] = 7
    istop[1.0 + test3 <= 1.0] = 6
    istop[1.0 + test2 <= 1.0] = 5
    istop[1.0 + t1_stop <= 1.0] = 4
    istop[test3 <= ctol] = 3
    istop[test2 <= atol] = 2
    istop[test1 <= rtol] = 1
    istop[stagnated] = 9
    istop[nonfinite] = 8
    return istop


class _Outputs:
    """Full-width result arrays that frozen columns are written into."""

    def __init__(self, n: int, k: int, block_dtype) -> None:
        self.X = np.zeros((n, k), dtype=block_dtype, order="F")
        self.istop = np.zeros(k, dtype=np.int64)
        self.itn = np.zeros(k, dtype=np.int64)
        self.r1norm = np.zeros(k)
        self.r2norm = np.zeros(k)
        self.anorm = np.zeros(k)
        self.acond = np.zeros(k)
        self.arnorm = np.zeros(k)
        self.xnorm = np.zeros(k)
        self.histories: List[List[float]] = [[] for _ in range(k)]

    def freeze(
        self,
        active: FloatArray,
        local_idx: FloatArray,
        state: _ColumnState,
        Xa: Optional[FloatArray],
        istop,
        itn: int,
    ) -> None:
        """Record final state for the active columns at ``local_idx``."""
        if local_idx.size == 0:
            return
        cols = active[local_idx]
        if Xa is not None:
            self.X[:, cols] = Xa[:, local_idx]
        self.istop[cols] = istop
        self.itn[cols] = itn
        self.r1norm[cols] = state.r1norm[local_idx]
        self.r2norm[cols] = state.r2norm[local_idx]
        self.anorm[cols] = state.anorm[local_idx]
        self.acond[cols] = state.acond[local_idx]
        self.arnorm[cols] = state.arnorm[local_idx]
        self.xnorm[cols] = state.xnorm[local_idx]

    def result(self) -> BlockLSQRResult:
        return BlockLSQRResult(
            X=self.X,
            istop=self.istop,
            itn=self.itn,
            r1norm=self.r1norm,
            r2norm=self.r2norm,
            anorm=self.anorm,
            acond=self.acond,
            arnorm=self.arnorm,
            xnorm=self.xnorm,
            residual_history=self.histories,
        )


@_masked_errstate
def _solve_block(
    op,
    B: FloatArray,
    damp: float,
    atol: float,
    btol: float,
    conlim: float,
    iter_lim: int,
    record_history: bool,
    on_iteration: Optional[IterationHook] = None,
) -> BlockLSQRResult:
    """Cold-start blocked iteration (X0 handling lives in the wrapper)."""
    m, n = op.shape
    k = B.shape[1]
    block_dtype = B.dtype
    out = _Outputs(n, k, block_dtype)

    dampsq = damp * damp
    ctol = 1.0 / conlim if conlim > 0 else 0.0

    U = np.array(B, dtype=block_dtype, order="F", copy=True)
    beta0 = _column_norms(U)
    pos0 = beta0 > 0
    np.divide(U, beta0[None, :], out=U, where=pos0[None, :])
    V = np.asfortranarray(op.rmatmat(U)) if k else np.zeros((n, 0), order="F")
    if not pos0.all():
        # Sequential semantics: beta == 0 skips the rmatvec, leaving
        # v = 0 and alfa = 0 for that column.
        V[:, ~pos0] = 0.0
    alfa0 = _column_norms(V)
    alfa0[~pos0] = 0.0
    apos = alfa0 > 0
    np.divide(V, alfa0[None, :], out=V, where=apos[None, :])

    state = _ColumnState(alfa0, beta0, dampsq)
    active = np.arange(k)

    # b in the null space of Aᵀ (or b == 0): x = 0 is already optimal.
    frozen0 = (alfa0 * beta0) == 0.0
    if frozen0.any():
        out.freeze(active, np.flatnonzero(frozen0), state, None, 0, 0)
        keep = np.flatnonzero(~frozen0)
        active = active[keep]
        U = np.asfortranarray(U[:, keep])
        V = np.asfortranarray(V[:, keep])
        state.take(keep)
        alfa0 = alfa0[keep]
    alfa = alfa0.copy()

    W = V.copy(order="F")
    Xa = np.zeros((n, active.size), dtype=block_dtype, order="F")

    itn = 0
    while active.size and itn < iter_lim:
        itn += 1
        # Continue the bidiagonalization: beta·u = A v − alfa·u,
        # alfa·v = Aᵀ u − beta·v — two block products for all columns.
        AV = op.matmat(V)
        U *= -alfa[None, :]
        U += AV
        beta = _column_norms(U)

        bad_beta = ~np.isfinite(beta)
        if bad_beta.any():
            # Frozen before any state update: x and diagnostics hold the
            # last finite iterate, exactly like the sequential break.
            out.freeze(active, np.flatnonzero(bad_beta), state, Xa, 8, itn)

        bpos = beta > 0
        np.divide(U, beta[None, :], out=U, where=bpos[None, :])
        state.anorm = np.sqrt(
            state.anorm**2
            + alfa**2
            + np.where(bpos, beta, 0.0) ** 2
            + dampsq
        )

        AtU = np.asfortranarray(op.rmatmat(U))
        AtU -= beta[None, :] * V
        alfa_new = _column_norms(AtU)
        bad_alfa = bpos & ~np.isfinite(alfa_new)
        if bad_alfa.any():
            # Sequential breaks after the anorm update but before the
            # rotation; state.anorm is already updated above.
            out.freeze(active, np.flatnonzero(bad_alfa), state, Xa, 8, itn)
        norm_mask = bpos & (alfa_new > 0)
        np.divide(AtU, alfa_new[None, :], out=AtU, where=norm_mask[None, :])
        if bpos.all():
            V = AtU
            alfa = alfa_new
        else:
            # beta == 0 columns keep their previous v and alfa.
            cols = np.flatnonzero(bpos)
            V[:, cols] = AtU[:, cols]
            alfa = np.where(bpos, alfa_new, alfa)

        pre_frozen = bad_beta | bad_alfa

        t1, t2 = state.rotation(alfa, beta, damp)
        wnorm_sq = np.einsum("ij,ij->j", W, W, dtype=np.float64)
        t1c = t1.astype(block_dtype, copy=False)
        t2c = t2.astype(block_dtype, copy=False)
        Xa += t1c[None, :] * W
        np.multiply(W, t2c[None, :], out=W)
        W += V
        state.diagnostics(alfa, wnorm_sq)

        if record_history:
            for local_j in np.flatnonzero(~pre_frozen):
                out.histories[active[local_j]].append(
                    float(state.r2norm[local_j])
                )

        istop_iter = _post_step_istop(state, itn, iter_lim, atol, btol, ctol)
        istop_iter[pre_frozen] = 8
        if on_iteration is not None:
            # One event per block iteration, before compaction, so the
            # firing count equals the max per-column itn and `active`
            # names the original columns that iterated this step.
            on_iteration(
                _block_event("block_lsqr", itn, state, istop_iter, active)
            )
        newly = (istop_iter != 0) & ~pre_frozen
        if newly.any():
            idx = np.flatnonzero(newly)
            out.freeze(active, idx, state, Xa, istop_iter[idx], itn)

        stopped = istop_iter != 0
        if stopped.any():
            keep = np.flatnonzero(~stopped)
            active = active[keep]
            if not active.size:
                break
            U = np.asfortranarray(U[:, keep])
            V = np.asfortranarray(V[:, keep])
            W = np.asfortranarray(W[:, keep])
            Xa = np.asfortranarray(Xa[:, keep])
            alfa = alfa[keep]
            state.take(keep)

    if active.size:
        # Only reachable with iter_lim == 0: report the initial state.
        out.freeze(active, np.arange(active.size), state, Xa, 0, itn)

    return out.result()


def block_lsqr(
    A: "MatrixLike",
    B: FloatArray,
    damp: float = 0.0,
    atol: float = 1e-8,
    btol: float = 1e-8,
    conlim: float = 1e8,
    iter_lim: Optional[int] = None,
    X0: Optional[FloatArray] = None,
    record_history: bool = False,
    on_iteration: Optional[IterationHook] = None,
    precondition: Optional["SketchPreconditioner"] = None,
) -> BlockLSQRResult:
    """Solve ``min_X ‖A X - B‖² + damp²‖X‖²`` for all columns at once.

    Complexity: O(iters·c·(nnz + m + n)) for ``c`` right-hand-side
    columns — the same per-column arithmetic as sequential LSQR, with
    the operator products amortized across the block via ``matmat``.

    Parameters match :func:`repro.linalg.lsqr.lsqr` with ``b`` widened
    to a block ``B`` of shape ``(m, k)`` (a 1-D ``b`` is treated as one
    column) and ``x0`` widened to ``X0`` of shape ``(n, k)``.  Each
    column follows the sequential iteration's arithmetic and stopping
    rules independently; the only difference is that the operator is
    applied once per iteration via ``matmat``/``rmatmat`` instead of
    ``2k`` separate mat-vecs.

    ``precondition`` (from
    :func:`repro.linalg.sketch.build_preconditioner`) runs the block
    iteration on the right-preconditioned system ``A R⁻¹`` — damping
    and warm starts are folded into an explicit augmented system (the
    internal damp would penalize ``‖R X‖``, not ``‖X‖``) and solutions
    are mapped back through ``R⁻¹``.  ``r1norm``/``r2norm``/``xnorm``
    are recomputed against the original system; ``anorm``/``acond``/
    ``arnorm`` and the histories describe the preconditioned system.

    ``on_iteration`` fires once per *block* iteration (not per column)
    with the still-active column indices; the firing count equals
    ``int(result.itn.max())``.

    Returns a :class:`BlockLSQRResult`; ``result.column(j)`` recovers a
    sequential-style :class:`~repro.linalg.lsqr.LSQRResult` for any
    column.
    """
    op = as_operator(A)
    m, n = op.shape
    B = as_value_dtype(B)
    if B.ndim == 1:
        B = B[:, None]
    if B.ndim != 2 or B.shape[0] != m:
        raise ValueError(
            f"B must have shape ({m}, k), got {np.shape(B)}"
        )
    if damp < 0:
        raise ValueError("damp must be non-negative")
    if iter_lim is None:
        iter_lim = 2 * n
    if iter_lim < 0:
        raise ValueError("iter_lim must be non-negative")

    if precondition is not None:
        if precondition.n != n:
            raise ValueError(
                f"preconditioner dimension {precondition.n} does not "
                f"match operator column count {n}"
            )
        if X0 is not None:
            X0 = as_value_dtype(X0)
            if X0.ndim == 1:
                X0 = X0[:, None]
            if X0.shape != (n, B.shape[1]):
                raise ValueError(
                    f"X0 must have shape ({n}, {B.shape[1]}), "
                    f"got {X0.shape}"
                )
        # Fold damping and warm starts into an explicit augmented
        # system — the internal damp would penalize ‖R X‖, not ‖X‖,
        # under a right preconditioner.
        system: LinearOperator = op
        if damp > 0:
            system = StackedOperator(
                op, IdentityOperator(n, scale=damp, dtype=op.dtype)
            )
        top = B if X0 is None else B - op.matmat(X0)
        if damp > 0:
            tail = (
                np.zeros((n, B.shape[1]), dtype=B.dtype)
                if X0 is None
                else -damp * X0
            )
            rhs = np.concatenate([top, tail], axis=0)
        else:
            rhs = top
        inner = _solve_block(
            precondition.wrap(system),
            as_value_dtype(rhs),
            0.0,
            atol,
            btol,
            conlim,
            iter_lim,
            record_history,
            on_iteration,
        )
        X = np.asarray(precondition.apply(inner.X)).astype(
            inner.X.dtype, copy=False
        )
        if X0 is not None:
            X = X + X0
        residual = B - op.matmat(X)
        r1norm = _column_norms(residual)
        xnorm = _column_norms(X)
        return BlockLSQRResult(
            X=X,
            istop=inner.istop,
            itn=inner.itn,
            r1norm=r1norm,
            r2norm=np.sqrt(r1norm**2 + (damp * xnorm) ** 2),
            anorm=inner.anorm,
            acond=inner.acond,
            arnorm=inner.arnorm,
            xnorm=xnorm,
            residual_history=inner.residual_history,
        )

    if X0 is not None:
        X0 = as_value_dtype(X0)
        if X0.ndim == 1:
            X0 = X0[:, None]
        if X0.shape != (n, B.shape[1]):
            raise ValueError(
                f"X0 must have shape ({n}, {B.shape[1]}), got {X0.shape}"
            )
        if damp > 0:
            # Same augmented-system trick as the sequential solver: the
            # correction D = X − X0 must penalize ‖X0 + D‖, so solve
            #   [A; damp·I] D ≈ [B − A·X0; −damp·X0]
            # with damp = 0 and shift back.  One stacked operator serves
            # every column because damp is shared.
            stacked = StackedOperator(
                op, IdentityOperator(n, scale=damp, dtype=op.dtype)
            )
            extended = np.concatenate(
                [B - op.matmat(X0), -damp * X0], axis=0
            )
            inner = _solve_block(
                stacked,
                as_value_dtype(extended),
                0.0,
                atol,
                btol,
                conlim,
                iter_lim,
                record_history,
                on_iteration,
            )
            X = inner.X + X0
            residual = B - op.matmat(X)
            r1norm = _column_norms(residual)
            xnorm = _column_norms(X)
            return BlockLSQRResult(
                X=X,
                istop=inner.istop,
                itn=inner.itn,
                r1norm=r1norm,
                r2norm=np.sqrt(r1norm**2 + (damp * xnorm) ** 2),
                anorm=inner.anorm,
                acond=inner.acond,
                arnorm=inner.arnorm,
                xnorm=xnorm,
                residual_history=inner.residual_history,
            )
        B = B - op.matmat(X0)

    result = _solve_block(
        op, as_value_dtype(B), damp, atol, btol, conlim, iter_lim,
        record_history, on_iteration,
    )
    if X0 is not None:
        result.X += X0
        result.xnorm = _column_norms(result.X)
    return result


class SharedBidiagonalization:
    """Golub–Kahan basis of ``(A, B)``, recorded once, re-solved per damp.

    The bidiagonalization ``A V_i = U_{i+1} B_i`` started from ``B``
    does not involve the damping parameter — LSQR folds ``damp`` into
    the scalar QR rotations only.  Recording the basis therefore costs
    one pass of ``2·iter_lim + 1`` block products, after which
    :meth:`solve` produces the full per-column result for *any* alpha
    with zero additional operator work: exactly what a grid sweep needs.

    Memory: ``depth`` stored ``(n, k)`` blocks.  For SRDA's ``k = c-1``
    and the paper's 15–20 iteration protocol this is a few dozen dense
    vectors per class — far cheaper than re-running the solver per
    alpha.

    Parameters
    ----------
    A:
        Dense array, :class:`~repro.linalg.sparse.CSRMatrix`, or
        :class:`~repro.linalg.operators.LinearOperator`.
    B:
        Right-hand-side block ``(m, k)`` (1-D accepted as one column).
    iter_lim:
        Bidiagonalization depth to record; :meth:`solve` can stop any
        column earlier but never iterate past this.
    """

    @_masked_errstate
    def __init__(
        self, A: MatrixLike, B: FloatArray, iter_lim: int
    ) -> None:
        op = as_operator(A)
        m, n = op.shape
        B = as_value_dtype(B)
        if B.ndim == 1:
            B = B[:, None]
        if B.ndim != 2 or B.shape[0] != m:
            raise ValueError(
                f"B must have shape ({m}, k), got {np.shape(B)}"
            )
        if iter_lim < 0:
            raise ValueError("iter_lim must be non-negative")
        self.operator = op
        self.shape = (m, n)
        k = B.shape[1]

        U = np.array(B, order="F", copy=True)
        beta0 = _column_norms(U)
        pos0 = beta0 > 0
        np.divide(U, beta0[None, :], out=U, where=pos0[None, :])
        V = (
            np.asfortranarray(op.rmatmat(U))
            if k
            else np.zeros((n, 0), order="F")
        )
        if not pos0.all():
            V[:, ~pos0] = 0.0
        alfa0 = _column_norms(V)
        alfa0[~pos0] = 0.0
        apos = alfa0 > 0
        np.divide(V, alfa0[None, :], out=V, where=apos[None, :])

        self.beta0 = beta0
        self.alfa0 = alfa0
        self._V0 = V.copy(order="F")
        self._betas: List[FloatArray] = []
        self._alfas: List[FloatArray] = []
        self._Vs: List[FloatArray] = []

        alfa = alfa0.copy()
        for _ in range(iter_lim):
            AV = op.matmat(V)
            U *= -alfa[None, :]
            U += AV
            beta = _column_norms(U)
            bpos = beta > 0
            np.divide(U, beta[None, :], out=U, where=bpos[None, :])
            AtU = np.asfortranarray(op.rmatmat(U))
            AtU -= beta[None, :] * V
            alfa_new = _column_norms(AtU)
            norm_mask = bpos & (alfa_new > 0)
            np.divide(
                AtU, alfa_new[None, :], out=AtU, where=norm_mask[None, :]
            )
            if bpos.all():
                V = AtU
                alfa = alfa_new
            else:
                # Copy before the partial update: the previous step's
                # stored block must not be mutated in place.
                V = V.copy(order="F")
                cols = np.flatnonzero(bpos)
                V[:, cols] = AtU[:, cols]
                alfa = np.where(bpos, alfa_new, alfa)
            self._betas.append(beta)
            self._alfas.append(alfa)
            self._Vs.append(V)
            if not np.any(np.isfinite(beta)):
                # Every column has diverged; deeper recording is waste.
                break

    @property
    def n_columns(self) -> int:
        return int(self.beta0.size)

    @property
    def depth(self) -> int:
        """Recorded bidiagonalization steps (max replay iterations)."""
        return len(self._betas)

    @_masked_errstate
    def solve(
        self,
        damp: float = 0.0,
        atol: float = 1e-8,
        btol: float = 1e-8,
        conlim: float = 1e8,
        iter_lim: Optional[int] = None,
        record_history: bool = False,
        on_iteration: Optional[IterationHook] = None,
    ) -> BlockLSQRResult:
        """Replay the recorded basis under a damping value.

        Produces the same result as ``block_lsqr(A, B, damp=damp,
        iter_lim=depth)`` — per-column istop codes, stagnation checks
        and all — without touching the operator.  Cost per call is
        ``O(depth · n · k)`` axpy work.
        """
        if damp < 0:
            raise ValueError("damp must be non-negative")
        eff_lim = self.depth if iter_lim is None else iter_lim
        if eff_lim < 0:
            raise ValueError("iter_lim must be non-negative")
        if eff_lim > self.depth:
            raise ValueError(
                f"iter_lim {eff_lim} exceeds recorded depth {self.depth}"
            )
        m, n = self.shape
        k = self.n_columns
        block_dtype = self._V0.dtype
        out = _Outputs(n, k, block_dtype)

        dampsq = damp * damp
        ctol = 1.0 / conlim if conlim > 0 else 0.0

        state = _ColumnState(self.alfa0, self.beta0, dampsq)
        active = np.arange(k)
        frozen0 = (self.alfa0 * self.beta0) == 0.0
        if frozen0.any():
            out.freeze(active, np.flatnonzero(frozen0), state, None, 0, 0)
            keep = np.flatnonzero(~frozen0)
            active = active[keep]
            state.take(keep)

        W = np.asfortranarray(self._V0[:, active]).copy(order="F")
        Xa = np.zeros((n, active.size), dtype=block_dtype, order="F")
        alfa_prev = self.alfa0[active].copy()

        itn = 0
        for step in range(eff_lim):
            if not active.size:
                break
            itn = step + 1
            beta = self._betas[step][active]
            alfa = self._alfas[step][active]

            bad_beta = ~np.isfinite(beta)
            if bad_beta.any():
                out.freeze(
                    active, np.flatnonzero(bad_beta), state, Xa, 8, itn
                )
            bpos = beta > 0
            state.anorm = np.sqrt(
                state.anorm**2
                + alfa_prev**2
                + np.where(bpos, beta, 0.0) ** 2
                + dampsq
            )
            bad_alfa = bpos & ~np.isfinite(alfa)
            if bad_alfa.any():
                out.freeze(
                    active, np.flatnonzero(bad_alfa), state, Xa, 8, itn
                )
            pre_frozen = bad_beta | bad_alfa

            Vstep = self._Vs[step]
            V = Vstep if active.size == k else Vstep[:, active]

            t1, t2 = state.rotation(alfa, beta, damp)
            wnorm_sq = np.einsum("ij,ij->j", W, W, dtype=np.float64)
            t1c = t1.astype(block_dtype, copy=False)
            t2c = t2.astype(block_dtype, copy=False)
            Xa += t1c[None, :] * W
            np.multiply(W, t2c[None, :], out=W)
            W += V
            state.diagnostics(alfa, wnorm_sq)

            if record_history:
                for local_j in np.flatnonzero(~pre_frozen):
                    out.histories[active[local_j]].append(
                        float(state.r2norm[local_j])
                    )

            istop_iter = _post_step_istop(
                state, itn, eff_lim, atol, btol, ctol
            )
            istop_iter[pre_frozen] = 8
            if on_iteration is not None:
                on_iteration(
                    _block_event(
                        "shared_bidiagonalization",
                        itn,
                        state,
                        istop_iter,
                        active,
                    )
                )
            newly = (istop_iter != 0) & ~pre_frozen
            if newly.any():
                idx = np.flatnonzero(newly)
                out.freeze(active, idx, state, Xa, istop_iter[idx], itn)

            alfa_prev = alfa
            stopped = istop_iter != 0
            if stopped.any():
                keep = np.flatnonzero(~stopped)
                active = active[keep]
                if not active.size:
                    break
                W = np.asfortranarray(W[:, keep])
                Xa = np.asfortranarray(Xa[:, keep])
                alfa_prev = alfa_prev[keep]
                state.take(keep)

        if active.size:
            # Only reachable with iter_lim == 0: report the initial state.
            out.freeze(active, np.arange(active.size), state, Xa, 0, itn)

        return out.result()
