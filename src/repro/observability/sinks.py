"""Trace sinks — where finished spans and metric snapshots go.

Three shipped sinks cover the three consumers:

- :class:`InMemorySink` — tests and the ``--profile`` summary table;
- :class:`JsonlSink` — one JSON object per line, the machine-readable
  trace format (schema in ``docs/OBSERVABILITY.md``, validated by
  :mod:`repro.observability.validate`);
- :class:`TextSink` — indented human-readable lines for quick looks.

:class:`MultiSink` fans out to several at once.  Sinks receive plain
dict *records* (already serialized spans), never live ``Span`` objects,
so a sink cannot accidentally mutate tracer state.
"""

from __future__ import annotations

import io
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union

Record = Dict[str, object]


class Sink:
    """Base sink: every method is a no-op (also the null sink)."""

    def emit_span(self, record: Record) -> None:  # noqa: B027 - optional
        """Receive one finished span record."""

    def emit_metrics(self, record: Record) -> None:  # noqa: B027
        """Receive one metrics-snapshot record."""

    def flush(self) -> None:  # noqa: B027
        """Make everything emitted so far durable."""

    def close(self) -> None:
        """Flush and release resources."""
        self.flush()


#: Shared do-nothing sink for disabled tracers.
NULL_SINK = Sink()


class InMemorySink(Sink):
    """Collects records in lists — the test and ``--profile`` sink.

    Attributes
    ----------
    spans, metrics:
        Emitted records, in emission order (children before parents,
        since a span is emitted when it closes).
    flush_count:
        Times :meth:`flush` was called — lets tests assert that an
        unwinding exception still flushed the sink.
    """

    def __init__(self) -> None:
        self.spans: List[Record] = []
        self.metrics: List[Record] = []
        self.flush_count = 0

    def emit_span(self, record: Record) -> None:
        self.spans.append(record)

    def emit_metrics(self, record: Record) -> None:
        self.metrics.append(record)

    def flush(self) -> None:
        self.flush_count += 1

    def find(self, name: str) -> List[Record]:
        """All span records with the given name, in emission order."""
        return [s for s in self.spans if s.get("name") == name]

    def clear(self) -> None:
        self.spans.clear()
        self.metrics.clear()
        self.flush_count = 0


class JsonlSink(Sink):
    """Appends one JSON object per line to a file (or a text stream).

    The file is opened lazily on first emit and written line-at-a-time,
    so a crash mid-run leaves a prefix of valid lines rather than a
    torn document.  Passing a stream instead of a path writes there
    and never closes it.
    """

    def __init__(self, target: Union[str, Path, TextIO]) -> None:
        self._path: Optional[Path]
        self._stream: Optional[TextIO]
        if isinstance(target, (str, Path)):
            self._path = Path(target)
            self._stream = None
            self._owns_stream = True
        else:
            self._path = None
            self._stream = target
            self._owns_stream = False

    def _ensure_stream(self) -> TextIO:
        if self._stream is None:
            assert self._path is not None
            self._stream = open(self._path, "a", encoding="utf-8")
        return self._stream

    def _write(self, record: Record) -> None:
        stream = self._ensure_stream()
        stream.write(json.dumps(record, default=_json_default))
        stream.write("\n")

    def emit_span(self, record: Record) -> None:
        self._write(record)

    def emit_metrics(self, record: Record) -> None:
        self._write(record)

    def flush(self) -> None:
        if self._stream is not None:
            try:
                self._stream.flush()
            except (OSError, ValueError):  # pragma: no cover - closed pipe
                pass

    def close(self) -> None:
        self.flush()
        if self._owns_stream and self._stream is not None:
            self._stream.close()
            self._stream = None


class TextSink(Sink):
    """Human-readable, depth-indented span lines.

    Example output::

        [  12.3ms] srda.fit solver=lsqr
        [   1.2ms]   srda.responses
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def emit_span(self, record: Record) -> None:
        duration = float(record.get("duration", 0.0))  # type: ignore[arg-type]
        depth = int(record.get("depth", 0))  # type: ignore[arg-type]
        attributes = record.get("attributes") or {}
        attr_text = ""
        if isinstance(attributes, dict) and attributes:
            attr_text = " " + " ".join(
                f"{key}={_compact(value)}"
                for key, value in attributes.items()
            )
        status = record.get("status")
        marker = " !" if status == "error" else ""
        self._stream.write(
            f"[{duration * 1e3:8.1f}ms] "
            + "  " * depth
            + f"{record.get('name')}{marker}{attr_text}\n"
        )

    def emit_metrics(self, record: Record) -> None:
        counters = record.get("counters") or {}
        if isinstance(counters, dict) and counters:
            body = " ".join(
                f"{key}={_compact(value)}"
                for key, value in sorted(counters.items())
            )
            self._stream.write(f"[ metrics ] {body}\n")

    def flush(self) -> None:
        try:
            self._stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed pipe
            pass


class MultiSink(Sink):
    """Fan one record stream out to several sinks."""

    def __init__(self, sinks: Sequence[Sink]) -> None:
        self.sinks = list(sinks)

    def emit_span(self, record: Record) -> None:
        for sink in self.sinks:
            sink.emit_span(record)

    def emit_metrics(self, record: Record) -> None:
        for sink in self.sinks:
            sink.emit_metrics(record)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def _compact(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."


def _json_default(value: object) -> object:
    """Serialize numpy scalars/arrays without importing numpy here."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def open_text_stream(path: Union[str, Path]) -> TextIO:
    """Open a UTF-8 text file for appending (helper for CLI wiring)."""
    return io.TextIOWrapper(open(path, "ab"), encoding="utf-8")
