"""Solver observability: tracing, metrics, per-iteration hooks.

Zero-dependency instrumentation substrate for the whole repo.  Three
layers:

- **Spans** (:class:`Tracer`, :func:`trace_span`) — nested timed
  intervals covering fit phases, solves, fallback decisions;
- **Metrics** (:class:`MetricsRegistry`) — counters / gauges /
  histograms (flam counts, cache hits, fallback totals);
- **Hooks** (:class:`IterationEvent`) — per-iteration solver callbacks
  from ``lsqr`` / ``block_lsqr``.

Two ways in:

1. *Per-estimator*: ``SRDA(trace=tracer)`` (or ``trace=True`` for a
   fresh in-memory tracer exposed as ``estimator.tracer_``).
2. *Global*: :func:`configure` installs a process-wide tracer that
   every instrumented path picks up via :func:`current_tracer`.

While an enabled tracer has a span open, library code lower in the
stack (``guarded_solve``, the dataset cache) joins that trace
automatically — no threading of tracer handles through signatures.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.observability.hooks import (
    IterationEvent,
    IterationHook,
    IterationRecorder,
)
from repro.observability.diff import (
    SpanDiff,
    TraceDiff,
    diff_traces,
    format_diff,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.profile import (
    SpanStats,
    format_profile,
    summarize_spans,
)
from repro.observability.sinks import (
    NULL_SINK,
    InMemorySink,
    JsonlSink,
    MultiSink,
    Record,
    Sink,
    TextSink,
)
from repro.observability.spans import (
    _ACTIVE_TRACER,
    DISABLED_TRACER,
    Span,
    SpanEvent,
    Tracer,
)
from repro.observability.validate import (
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    "Counter",
    "DISABLED_TRACER",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "IterationEvent",
    "IterationHook",
    "IterationRecorder",
    "JsonlSink",
    "MetricsRegistry",
    "MultiSink",
    "NULL_SINK",
    "Record",
    "Sink",
    "Span",
    "SpanDiff",
    "SpanEvent",
    "SpanStats",
    "TextSink",
    "TraceDiff",
    "Tracer",
    "configure",
    "current_tracer",
    "diff_traces",
    "format_diff",
    "format_profile",
    "get_tracer",
    "resolve_tracer",
    "summarize_spans",
    "trace_span",
    "validate_trace_file",
    "validate_trace_lines",
]

# Process-wide tracer installed by configure(); disabled until then.
_GLOBAL_TRACER: Tracer = DISABLED_TRACER


def configure(
    sink: Optional[Sink] = None,
    metrics: Optional[MetricsRegistry] = None,
    enabled: bool = True,
) -> Tracer:
    """Install (and return) the process-wide tracer.

    ``configure(enabled=False)`` restores the disabled default.  The
    previous global tracer is not flushed or closed — callers that
    swap sinks mid-process own that lifecycle.
    """
    global _GLOBAL_TRACER
    if not enabled:
        _GLOBAL_TRACER = DISABLED_TRACER
    else:
        _GLOBAL_TRACER = Tracer(sink=sink, metrics=metrics, enabled=True)
    return _GLOBAL_TRACER


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled unless :func:`configure` ran)."""
    return _GLOBAL_TRACER


def current_tracer() -> Tracer:
    """The tracer instrumented library code should record into.

    The innermost *enabled* tracer with an open span wins (so an
    estimator-local ``SRDA(trace=...)`` captures the ``guarded_solve``
    spans underneath it); otherwise the global tracer.
    """
    active = _ACTIVE_TRACER.get()
    if active is not None:
        return active
    return _GLOBAL_TRACER


def resolve_tracer(
    trace: Union[None, bool, Tracer, Sink] = None,
) -> Tracer:
    """Turn an estimator's ``trace=`` argument into a tracer.

    - ``None`` → the process-wide tracer (disabled unless configured);
    - ``False`` → explicitly disabled, even if a global is configured;
    - ``True`` → a fresh enabled tracer with an in-memory sink;
    - a :class:`Tracer` → itself;
    - a :class:`Sink` → a fresh enabled tracer writing to it.
    """
    if trace is None:
        return _GLOBAL_TRACER
    if trace is False:
        return DISABLED_TRACER
    if trace is True:
        return Tracer(sink=InMemorySink(), enabled=True)
    if isinstance(trace, Tracer):
        return trace
    if isinstance(trace, Sink):
        return Tracer(sink=trace, enabled=True)
    raise TypeError(
        "trace must be None, bool, a Tracer, or a Sink; got "
        f"{type(trace).__name__}"
    )


def trace_span(name: str, **attributes: Any) -> Any:
    """Open a span on the *current* tracer (module-level convenience).

    ``with trace_span("experiment.run", dataset=name): ...`` — a no-op
    context manager when no enabled tracer is current.
    """
    return current_tracer().span(name, **attributes)
