"""JSONL trace schema validator.

Usage (also wired into CI's observability smoke step)::

    python -m repro.observability trace.jsonl

Checks every line parses as JSON and conforms to the span/metrics
record schema documented in ``docs/OBSERVABILITY.md``: required keys,
types, parent/trace referential integrity (a ``parent_id`` must name a
span emitted in the same trace), and event shape.  Exit status 0 means
the whole file validates.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Set, Tuple, Union

_SPAN_REQUIRED: Dict[str, Union[type, Tuple[type, ...]]] = {
    "name": str,
    "trace_id": int,
    "span_id": int,
    "depth": int,
    "start": (int, float),
    "end": (int, float),
    "duration": (int, float),
    "status": str,
    "attributes": dict,
    "events": list,
}

_METRICS_REQUIRED: Dict[str, Union[type, Tuple[type, ...]]] = {
    "counters": dict,
    "gauges": dict,
    "histograms": dict,
}


def _check_span(record: Mapping[str, object], errors: List[str]) -> None:
    for key, expected in _SPAN_REQUIRED.items():
        if key not in record:
            errors.append(f"span missing key {key!r}")
        elif not isinstance(record[key], expected):
            errors.append(
                f"span key {key!r} has type "
                f"{type(record[key]).__name__}"
            )
    parent = record.get("parent_id")
    if parent is not None and not isinstance(parent, int):
        errors.append("span parent_id must be int or null")
    status = record.get("status")
    if status not in ("ok", "error"):
        errors.append(f"span status must be ok/error, got {status!r}")
    events = record.get("events")
    if isinstance(events, list):
        for event in events:
            if not isinstance(event, dict):
                errors.append("span event is not an object")
            elif not isinstance(event.get("name"), str) or not isinstance(
                event.get("time"), (int, float)
            ):
                errors.append("span event missing name/time")


def _check_metrics(
    record: Mapping[str, object], errors: List[str]
) -> None:
    for key, expected in _METRICS_REQUIRED.items():
        if key not in record:
            errors.append(f"metrics missing key {key!r}")
        elif not isinstance(record[key], expected):
            errors.append(
                f"metrics key {key!r} has type "
                f"{type(record[key]).__name__}"
            )


def validate_trace_lines(lines: List[str]) -> List[str]:
    """Validate JSONL lines; returns error strings (empty == valid)."""
    errors: List[str] = []
    seen_spans: Dict[int, Set[int]] = {}  # trace_id -> span ids
    deferred_parents: List[Tuple[int, int, int]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        kind = record.get("type")
        local: List[str] = []
        if kind == "span":
            _check_span(record, local)
            trace_id = record.get("trace_id")
            span_id = record.get("span_id")
            if isinstance(trace_id, int) and isinstance(span_id, int):
                seen_spans.setdefault(trace_id, set()).add(span_id)
                parent = record.get("parent_id")
                if isinstance(parent, int):
                    # Children are emitted before their parents (spans
                    # emit on close), so resolve references at the end.
                    deferred_parents.append((lineno, trace_id, parent))
        elif kind == "metrics":
            _check_metrics(record, local)
        else:
            local.append(f"unknown record type {kind!r}")
        errors.extend(f"line {lineno}: {msg}" for msg in local)
    for lineno, trace_id, parent in deferred_parents:
        if parent not in seen_spans.get(trace_id, set()):
            errors.append(
                f"line {lineno}: parent_id {parent} not found in "
                f"trace {trace_id}"
            )
    return errors


def validate_trace_file(path: Union[str, Path]) -> List[str]:
    """Validate one JSONL trace file; returns error strings."""
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    if not any(line.strip() for line in lines):
        return ["trace file is empty"]
    return validate_trace_lines(lines)


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print(
            "usage: python -m repro.observability TRACE.jsonl",
            file=sys.stderr,
        )
        return 2
    path = Path(argv[0])
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    errors = validate_trace_file(path)
    if errors:
        for message in errors[:50]:
            print(f"invalid: {message}", file=sys.stderr)
        if len(errors) > 50:
            print(
                f"... and {len(errors) - 50} more errors",
                file=sys.stderr,
            )
        return 1
    n_lines = sum(
        1
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    )
    print(f"ok: {path} ({n_lines} records)")
    return 0
