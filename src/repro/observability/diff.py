"""Compare two JSONL traces span-by-span.

Usage (the regression half of the observability toolchain)::

    python -m repro.observability diff before.jsonl after.jsonl

Both files are aggregated with
:func:`~repro.observability.profile.summarize_spans` and compared per
span name: call counts, total/mean wall time, and the p95 latency
estimate.  Counters from the traces' metrics records are diffed too —
so ``srda.flam`` regressions (more work) show up next to wall-time
regressions (slower work), which is exactly the question "did this
change make the solver do more, or just do it slower?".

The module is a pure consumer: it reads the records sinks wrote and
never imports the live tracer, so it works on traces from any run.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.observability.profile import SpanStats, summarize_spans

__all__ = ["SpanDiff", "TraceDiff", "diff_traces", "format_diff", "main"]


@dataclass
class SpanDiff:
    """One span name's before/after comparison."""

    name: str
    a: Optional[SpanStats]
    b: Optional[SpanStats]

    @property
    def status(self) -> str:
        """``"added"`` / ``"removed"`` / ``"common"``."""
        if self.a is None:
            return "added"
        if self.b is None:
            return "removed"
        return "common"

    @property
    def total_delta(self) -> float:
        """Change in total wall seconds (b - a); absent sides count 0."""
        before = self.a.total if self.a is not None else 0.0
        after = self.b.total if self.b is not None else 0.0
        return after - before

    @property
    def total_ratio(self) -> float:
        """``b.total / a.total``; inf for added spans, 0 for removed."""
        before = self.a.total if self.a is not None else 0.0
        after = self.b.total if self.b is not None else 0.0
        if before == 0.0:
            return float("inf") if after > 0.0 else 1.0
        return after / before


@dataclass
class TraceDiff:
    """Aggregated comparison of two traces."""

    spans: List[SpanDiff]
    counters_a: Dict[str, float]
    counters_b: Dict[str, float]

    def counter_names(self) -> List[str]:
        return sorted(set(self.counters_a) | set(self.counters_b))


def _read_records(path: Union[str, Path]) -> List[Mapping[str, object]]:
    records: List[Mapping[str, object]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # the validator reports these; the diff skips them
        if isinstance(record, dict):
            records.append(record)
    return records


def _final_counters(
    records: Iterable[Mapping[str, object]],
) -> Dict[str, float]:
    """Counters from the last metrics record (cumulative totals)."""
    counters: Dict[str, float] = {}
    for record in records:
        if record.get("type") != "metrics":
            continue
        raw = record.get("counters")
        if isinstance(raw, Mapping):
            counters = {
                str(name): float(value)
                for name, value in raw.items()
                if isinstance(value, (int, float))
            }
    return counters


def diff_traces(
    records_a: Iterable[Mapping[str, object]],
    records_b: Iterable[Mapping[str, object]],
) -> TraceDiff:
    """Compare two record streams; spans sorted by |total delta| desc."""
    records_a = list(records_a)
    records_b = list(records_b)
    stats_a = summarize_spans(records_a)
    stats_b = summarize_spans(records_b)
    spans = [
        SpanDiff(name, stats_a.get(name), stats_b.get(name))
        for name in sorted(set(stats_a) | set(stats_b))
    ]
    spans.sort(key=lambda d: abs(d.total_delta), reverse=True)
    return TraceDiff(
        spans=spans,
        counters_a=_final_counters(records_a),
        counters_b=_final_counters(records_b),
    )


def _ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 1e3:.2f}ms"


def format_diff(
    diff: TraceDiff, label_a: str = "a", label_b: str = "b"
) -> str:
    """Render the comparison as one table plus a counters footer."""
    lines = [
        f"{'span':32} {'calls':>11} {'total':>21} {'p95':>21} {'ratio':>7}"
    ]
    lines.append("-" * len(lines[0]))
    for entry in diff.spans:
        calls_a = entry.a.count if entry.a is not None else 0
        calls_b = entry.b.count if entry.b is not None else 0
        total_a = entry.a.total if entry.a is not None else None
        total_b = entry.b.total if entry.b is not None else None
        p95_a = entry.a.percentile(95) if entry.a is not None else None
        p95_b = entry.b.percentile(95) if entry.b is not None else None
        ratio = entry.total_ratio
        ratio_text = "new" if ratio == float("inf") else f"{ratio:6.2f}x"
        marker = {"added": " +", "removed": " -"}.get(entry.status, "")
        lines.append(
            f"{entry.name + marker:32} {calls_a:5d}>{calls_b:<5d} "
            f"{_ms(total_a):>10}>{_ms(total_b):<10} "
            f"{_ms(p95_a):>10}>{_ms(p95_b):<10} {ratio_text:>7}"
        )
    if not diff.spans:
        lines.append("(no spans in either trace)")
    names = diff.counter_names()
    if names:
        lines.append("")
        lines.append(f"counters ({label_a} > {label_b}):")
        for name in names:
            before = diff.counters_a.get(name, 0.0)
            after = diff.counters_b.get(name, 0.0)
            delta = after - before
            lines.append(
                f"  {name} = {before:.6g} > {after:.6g} ({delta:+.6g})"
            )
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(
            "usage: python -m repro.observability diff A.jsonl B.jsonl",
            file=sys.stderr,
        )
        return 2
    paths = [Path(arg) for arg in argv]
    for path in paths:
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
    diff = diff_traces(_read_records(paths[0]), _read_records(paths[1]))
    print(format_diff(diff, label_a=str(paths[0]), label_b=str(paths[1])))
    return 0
