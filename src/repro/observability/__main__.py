"""``python -m repro.observability`` — trace tooling.

Two forms::

    python -m repro.observability TRACE.jsonl          # validate
    python -m repro.observability diff A.jsonl B.jsonl # compare
"""

from __future__ import annotations

import sys

from repro.observability.diff import main as diff_main
from repro.observability.validate import main as validate_main


def main(argv: list) -> int:
    if argv and argv[0] == "diff":
        return diff_main(argv[1:])
    return validate_main(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
