"""``python -m repro.observability TRACE.jsonl`` — validate a trace."""

from __future__ import annotations

import sys

from repro.observability.validate import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
