"""Process-local metrics: counters, gauges, histograms.

Deliberately minimal and dependency-free.  A :class:`MetricsRegistry`
is a named bag of instruments that hot paths can update with one
attribute store; it never touches the filesystem itself — sinks
serialize a :meth:`MetricsRegistry.snapshot` when the caller flushes a
trace.  All instruments are cheap enough to update unconditionally
(one float add), so library code records into the current tracer's
registry without checking whether tracing is enabled.

Thread-safety: instrument *creation* is locked; instrument *updates*
are plain ``+=`` on a float.  Under CPython that is not a torn write,
and the consumers here (benchmark summaries, trace footers) tolerate
the last-write-wins races a free-threaded build could introduce —
these are diagnostics, not ledgers.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional

#: Geometric bucket growth for histogram percentiles: each bucket is
#: 20% wider than the last, so a reported percentile is within ±10% of
#: the true order statistic (and clamped to the observed min/max).
_BUCKET_GROWTH = 1.2

_LOG_GROWTH = math.log(_BUCKET_GROWTH)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter; negative amounts are rejected."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can move in both directions (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values, with percentile estimates.

    Alongside the running count/sum/min/max/last, every observation
    lands in a geometric bucket (:data:`_BUCKET_GROWTH` wide), so
    :meth:`percentile` answers p50/p95/p99 queries in O(buckets) with
    bounded relative error and O(1) memory per distinct magnitude —
    no sample retention, safe for million-observation span streams.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "minimum",
        "maximum",
        "last",
        "_buckets",
        "_nonpositive",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.last = 0.0
        self._buckets: Dict[int, int] = {}
        self._nonpositive = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.last = value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value > 0.0:
            index = int(math.floor(math.log(value) / _LOG_GROWTH))
            self._buckets[index] = self._buckets.get(index, 0) + 1
        else:
            self._nonpositive += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100]).

        Walks the geometric buckets to the target rank and reports the
        bucket's geometric midpoint, clamped to the observed
        ``[min, max]`` — so p0/p100 are exact and interior percentiles
        are within one bucket width (±10%) of the true order statistic.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        seen = self._nonpositive
        if seen >= rank:
            # Non-positive observations sort first; their best single
            # representative is the observed minimum.
            return self.minimum
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                midpoint = math.exp((index + 0.5) * _LOG_GROWTH)
                return min(self.maximum, max(self.minimum, midpoint))
        return self.maximum  # pragma: no cover - rank <= count always hits

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
            "last": self.last,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, created on first use.

    ``counter("srda.flam").add(n)`` is the whole API surface hot paths
    see; :meth:`snapshot` turns the registry into plain dicts for a
    sink or a JSON report.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name)
                )
        return instrument

    def get_counter(self, name: str) -> Optional[Counter]:
        """The counter if it exists, without creating it."""
        return self._counters.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every instrument, for serialization."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {
                    name: g.value for name, g in self._gauges.items()
                },
                "histograms": {
                    name: h.summary()
                    for name, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Drop every instrument (tests, between benchmark cases)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
