"""Aggregate span records into a human-readable profile table.

Consumes the plain span records sinks receive (not live spans), so it
works identically on an :class:`~repro.observability.sinks.InMemorySink`
capture and on a parsed JSONL trace file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.observability.metrics import Histogram


@dataclass
class SpanStats:
    """Aggregated timings for one span name."""

    name: str
    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = 0.0
    events: int = 0
    errors: int = 0
    #: Log-bucketed latency distribution backing the percentile columns.
    histogram: Histogram = field(
        default_factory=lambda: Histogram("duration")
    )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated latency percentile over this span's durations."""
        return self.histogram.percentile(q)

    def add(self, duration: float, n_events: int, is_error: bool) -> None:
        self.count += 1
        self.total += duration
        self.minimum = min(self.minimum, duration)
        self.maximum = max(self.maximum, duration)
        self.events += n_events
        self.histogram.observe(duration)
        if is_error:
            self.errors += 1


def summarize_spans(
    records: Iterable[Mapping[str, object]],
) -> Dict[str, SpanStats]:
    """Group span records by name; skips metrics and malformed lines."""
    stats: Dict[str, SpanStats] = {}
    for record in records:
        if record.get("type") not in (None, "span"):
            continue
        name = record.get("name")
        if not isinstance(name, str):
            continue
        duration = record.get("duration", 0.0)
        if not isinstance(duration, (int, float)):
            continue
        events = record.get("events")
        n_events = len(events) if isinstance(events, list) else 0
        entry = stats.get(name)
        if entry is None:
            entry = stats[name] = SpanStats(name)
        entry.add(
            float(duration), n_events, record.get("status") == "error"
        )
    return stats


def format_profile(
    records: Iterable[Mapping[str, object]],
    metrics: Optional[Mapping[str, object]] = None,
) -> str:
    """Render the ``--profile`` table: one line per span name.

    Sorted by total time descending, so the expensive phase reads
    first.  When a metrics snapshot (or a live
    :class:`~repro.observability.metrics.MetricsRegistry`) is provided,
    its counters are appended as a footer.
    """
    snapshot = getattr(metrics, "snapshot", None)
    if callable(snapshot):
        metrics = snapshot()
    stats = summarize_spans(records)
    lines: List[str] = [
        f"{'span':32} {'calls':>6} {'total':>10} {'mean':>10} "
        f"{'p50':>10} {'p95':>10} {'p99':>10} {'max':>10} {'events':>7}"
    ]
    lines.append("-" * len(lines[0]))
    for entry in sorted(
        stats.values(), key=lambda s: s.total, reverse=True
    ):
        marker = " !" if entry.errors else ""
        lines.append(
            f"{entry.name + marker:32} {entry.count:6d} "
            f"{entry.total * 1e3:9.2f}ms {entry.mean * 1e3:9.2f}ms "
            f"{entry.percentile(50) * 1e3:9.2f}ms "
            f"{entry.percentile(95) * 1e3:9.2f}ms "
            f"{entry.percentile(99) * 1e3:9.2f}ms "
            f"{entry.maximum * 1e3:9.2f}ms {entry.events:7d}"
        )
    if not stats:
        lines.append("(no spans recorded)")
    if metrics:
        counters = metrics.get("counters")
        if isinstance(counters, Mapping) and counters:
            lines.append("")
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]:.6g}")
    return "\n".join(lines)
