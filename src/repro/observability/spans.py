"""Nested timed spans and the :class:`Tracer` that produces them.

The model is deliberately small — a span is a named, timed interval
with attributes and point-in-time events, nested under a parent span.
A :class:`Tracer` hands out spans through the :meth:`Tracer.span`
context manager, keeps the current-span stack in a ``ContextVar`` (so
nesting is correct across threads and async contexts), and emits each
span to its sink when the span closes.

Two invariants the tests pin down:

- a span is closed **exactly once**, even when an exception unwinds
  through several nested ``with`` blocks (each context manager guards
  itself with a ``_closed`` flag);
- the sink is **flushed when a root span closes**, so a trace is
  durable after every top-level operation even if the process dies
  later — including when the root span closed because of an exception.

Disabled tracing costs one attribute check per ``span()`` call: the
tracer returns a shared no-op context manager whose span swallows
``set_attribute``/``add_event``.  Per-iteration solver instrumentation
never goes through spans at all — it uses the hook protocol in
:mod:`repro.observability.hooks`, which is ``None`` when tracing is
off.
"""

from __future__ import annotations

import contextvars
import itertools
import time
from types import TracebackType
from typing import Any, Dict, List, Optional, Type

from repro.observability.metrics import MetricsRegistry
from repro.observability.sinks import NULL_SINK, Record, Sink

#: The innermost enabled tracer, set while one of its spans is open.
#: Library code (``guarded_solve``, the dataset cache) reads this so an
#: estimator-local tracer is honoured without threading it through
#: every call signature.
_ACTIVE_TRACER: "contextvars.ContextVar[Optional[Tracer]]" = (
    contextvars.ContextVar("repro_active_tracer", default=None)
)


class SpanEvent:
    """A named point in time inside a span (e.g. one LSQR iteration)."""

    __slots__ = ("name", "time", "attributes")

    def __init__(
        self, name: str, timestamp: float, attributes: Dict[str, Any]
    ) -> None:
        self.name = name
        self.time = timestamp
        self.attributes = attributes

    def to_record(self) -> Record:
        return {
            "name": self.name,
            "time": self.time,
            "attributes": self.attributes,
        }


class Span:
    """One named, timed interval in a trace.

    Attributes
    ----------
    name, trace_id, span_id, parent_id:
        Identity: ``parent_id`` is ``None`` for root spans; every span
        in one nested tree shares a ``trace_id``.
    attributes:
        Key → JSON-serializable value, set at creation or via
        :meth:`set_attribute`.
    events:
        Ordered :class:`SpanEvent` list (per-iteration solver events,
        fallback decisions, cache hits ...).
    status:
        ``"ok"``, or ``"error"`` when an exception closed the span.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "depth",
        "start",
        "end",
        "status",
        "attributes",
        "events",
        "_t0",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = time.time()
        self.end: Optional[float] = None
        self.status = "ok"
        self.attributes = attributes
        self.events: List[SpanEvent] = []
        self._t0 = time.perf_counter()

    @property
    def duration(self) -> float:
        """Seconds from start to close (so-far duration while open)."""
        if self.end is None:
            return time.perf_counter() - self._t0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: Any) -> None:
        self.events.append(SpanEvent(name, time.time(), attributes))

    def to_record(self) -> Record:
        duration = (
            self.duration if self.end is not None else 0.0
        )
        return {
            "type": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "duration": duration,
            "status": self.status,
            "attributes": self.attributes,
            "events": [event.to_record() for event in self.events],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {state})"


class _NoOpSpan:
    """Swallows every span operation; shared by all disabled contexts."""

    __slots__ = ()

    name = ""
    status = "ok"

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass


NOOP_SPAN = _NoOpSpan()


class _NoOpSpanContext:
    """Context manager returned by a disabled tracer — costs nothing."""

    __slots__ = ()

    def __enter__(self) -> _NoOpSpan:
        return NOOP_SPAN

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NOOP_CONTEXT = _NoOpSpanContext()


class _SpanContext:
    """Live span context: times the span, maintains the tracer stack."""

    __slots__ = ("_tracer", "span", "_closed", "_span_token", "_tracer_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._closed = False
        self._span_token: Optional[contextvars.Token[Optional[Span]]] = None
        self._tracer_token: Optional[
            contextvars.Token[Optional[Tracer]]
        ] = None

    def __enter__(self) -> Span:
        self._span_token = self._tracer._current.set(self.span)
        self._tracer_token = _ACTIVE_TRACER.set(self._tracer)
        return self.span

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        if self._closed:  # close exactly once, whatever unwinds through
            return False
        self._closed = True
        span = self.span
        span.end = span.start + (time.perf_counter() - span._t0)
        if exc_type is not None:
            span.status = "error"
            span.attributes.setdefault("error_type", exc_type.__name__)
            if exc is not None:
                span.attributes.setdefault("error_message", str(exc)[:200])
        if self._span_token is not None:
            self._tracer._current.reset(self._span_token)
        if self._tracer_token is not None:
            _ACTIVE_TRACER.reset(self._tracer_token)
        self._tracer._emit(span)
        return False


class Tracer:
    """Produces nested spans, owns a sink and a metrics registry.

    Parameters
    ----------
    sink:
        Where closed spans (and metric snapshots) go; defaults to the
        shared null sink.
    metrics:
        The registry instrumented code records counters into; a fresh
        one per tracer unless shared explicitly.
    enabled:
        When False, :meth:`span` returns a no-op context and
        :meth:`iteration_hook` returns ``None`` — the zero-overhead
        configuration the benchmark assertion guards.
    """

    def __init__(
        self,
        sink: Optional[Sink] = None,
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ) -> None:
        self.sink = sink if sink is not None else NULL_SINK
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.enabled = bool(enabled)
        self._ids = itertools.count(1)
        self._current: "contextvars.ContextVar[Optional[Span]]" = (
            contextvars.ContextVar("repro_current_span", default=None)
        )

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Any:
        """Open a nested span: ``with tracer.span("srda.fit") as span:``.

        Returns a context manager yielding the :class:`Span` (or the
        shared no-op span when disabled).  The span closes exactly once
        when the block exits and is emitted to the sink; root spans
        flush the sink on close.
        """
        if not self.enabled:
            return _NOOP_CONTEXT
        parent = self._current.get()
        span_id = next(self._ids)
        if parent is None:
            trace_id = span_id
            parent_id = None
            depth = 0
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            depth = parent.depth + 1
        return _SpanContext(
            self,
            Span(name, trace_id, span_id, parent_id, depth, attributes),
        )

    def current_span(self) -> Optional[Span]:
        """The innermost open span of this tracer, or ``None``."""
        return self._current.get()

    def event(self, name: str, **attributes: Any) -> None:
        """Attach an event to the current span (no-op when disabled)."""
        if not self.enabled:
            return
        span = self._current.get()
        if span is not None:
            span.add_event(name, **attributes)

    def iteration_hook(self, span: Optional[Span] = None) -> Optional[Any]:
        """A solver ``on_iteration`` callback bound to ``span``.

        Returns ``None`` when tracing is disabled (or no span is open),
        so solvers skip per-iteration work entirely.  The callback
        appends one ``"<solver>.iteration"`` event per
        :class:`~repro.observability.hooks.IterationEvent`.
        """
        if not self.enabled:
            return None
        target = span if span is not None else self._current.get()
        if target is None or isinstance(target, _NoOpSpan):
            return None

        def record(event: Any) -> None:
            target.add_event(
                f"{event.solver}.iteration", **event.to_attributes()
            )

        return record

    # ------------------------------------------------------------------
    def _emit(self, span: Span) -> None:
        self.sink.emit_span(span.to_record())
        if span.parent_id is None:
            # Root closed: make the trace durable now.
            self.sink.flush()

    def flush(self, emit_metrics: bool = True) -> None:
        """Emit a metrics snapshot (when enabled) and flush the sink."""
        if self.enabled and emit_metrics:
            snapshot = self.metrics.snapshot()
            self.sink.emit_metrics(
                {"type": "metrics", "time": time.time(), **snapshot}
            )
        self.sink.flush()

    def close(self) -> None:
        """Flush (with a final metrics snapshot) and close the sink."""
        self.flush()
        self.sink.close()


#: Shared always-disabled tracer (``trace=False`` resolves to this).
DISABLED_TRACER = Tracer(enabled=False)
