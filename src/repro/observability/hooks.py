"""Per-iteration solver hook protocol.

Solvers (:func:`repro.linalg.lsqr.lsqr`,
:func:`repro.linalg.block_lsqr.block_lsqr`, and
``SharedBidiagonalization.solve``) accept an optional ``on_iteration``
callback.  When provided, the solver invokes it with one
:class:`IterationEvent` per counted iteration — the hook firing count
always equals the iteration count the solver reports (``result.itn``
for :func:`lsqr`, ``max(result.itn)`` block iterations for the block
solver).  When ``None`` (the default), no per-iteration work happens
at all.

Hooks must be cheap and must not raise: an exception from a hook
propagates out of the solver, by design — observability callbacks that
swallow solver state errors silently are worse than a loud failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


@dataclass
class IterationEvent:
    """Snapshot of solver state after one iteration.

    Attributes
    ----------
    solver:
        ``"lsqr"``, ``"block_lsqr"``, or ``"shared_bidiagonalization"``.
    itn:
        1-based iteration number, equal to the solver's own counter.
    r2norm:
        Damped residual norm ``sqrt(||b - Ax||^2 + damp^2 ||x||^2)``.
        For block solvers this is the maximum over still-active columns.
    arnorm:
        Normal-equation residual norm ``||A' r||`` (max over active
        columns for block solvers).
    istop:
        The solver's stop flag *as of this iteration* — 0 while still
        running, non-zero on the iteration that triggered a stop.
    active:
        For block solvers: indices (into the original RHS block) of the
        columns still iterating when this event fired.  ``None`` for
        single-RHS LSQR.
    """

    solver: str
    itn: int
    r2norm: float
    arnorm: float
    istop: int = 0
    active: Optional[Sequence[int]] = None

    def to_attributes(self) -> Dict[str, Any]:
        """Flatten into JSON-friendly span-event attributes."""
        attributes: Dict[str, Any] = {
            "solver": self.solver,
            "itn": self.itn,
            "r2norm": float(self.r2norm),
            "arnorm": float(self.arnorm),
            "istop": int(self.istop),
        }
        if self.active is not None:
            attributes["active"] = [int(j) for j in self.active]
        return attributes


#: Signature solvers accept: ``on_iteration: Optional[IterationHook]``.
IterationHook = Callable[[IterationEvent], None]


@dataclass
class IterationRecorder:
    """Collects every event — the simplest useful hook, used in tests.

    >>> recorder = IterationRecorder()
    >>> result = lsqr(A, b, on_iteration=recorder)   # doctest: +SKIP
    >>> len(recorder.events) == result.itn           # doctest: +SKIP
    True
    """

    events: List[IterationEvent] = field(default_factory=list)

    def __call__(self, event: IterationEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def last(self) -> Optional[IterationEvent]:
        return self.events[-1] if self.events else None
