"""Sharded execution: row-partitioned operators on pluggable backends.

The paper's solver touches data only through operator products, and
those products decompose along rows — so this package splits the data
operator into contiguous row shards
(:class:`~repro.parallel.sharded.ShardedOperator`) and fans the
per-shard kernels out on an execution
:class:`~repro.parallel.backends.Backend`: serial (the default, a pure
refactoring), threads (numpy kernels release the GIL), or processes
(shard data broadcast once through ``multiprocessing.shared_memory``).

Entry points most callers want:

- ``SRDA(n_jobs=4)`` / ``srda_alpha_path(..., n_jobs=4)`` — parallel
  products inside one fit;
- ``run_experiment(..., n_jobs=4)`` — parallel grid cells, bitwise
  identical to the serial grid;
- :func:`~repro.parallel.backends.resolve_backend` +
  :class:`ShardedOperator` for direct operator-level control.

See ``docs/PARALLEL.md`` for backend selection, the shared-memory
lifecycle, and the determinism guarantees.
"""

from repro.parallel.backends import (
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    effective_n_jobs,
    resolve_backend,
)
from repro.parallel.sharded import (
    ShardedOperator,
    csr_row_slice,
    default_shard_count,
    nnz_shard_bounds,
    shard_bounds,
)
from repro.parallel.shm import SharedArena, SharedArrayRef, attach_array

__all__ = [
    "Backend",
    "ProcessBackend",
    "SerialBackend",
    "SharedArena",
    "SharedArrayRef",
    "ShardedOperator",
    "ThreadBackend",
    "attach_array",
    "csr_row_slice",
    "default_shard_count",
    "effective_n_jobs",
    "nnz_shard_bounds",
    "resolve_backend",
    "shard_bounds",
]
