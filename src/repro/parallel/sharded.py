"""Row-partitioned operators: LSQR-shaped sharding with exact fan-in.

SRDA's whole cost is products against the data operator, and those
products decompose along rows: for ``X`` split into contiguous row
blocks ``X_s``,

- forward:  ``X v   = concat_s (X_s v)``        (disjoint writes)
- adjoint:  ``X.T u = sum_s   (X_s.T u_s)``     (a reduction)

:class:`ShardedOperator` realizes that decomposition behind the
standard :class:`~repro.linalg.operators.LinearOperator` contract, so
``block_lsqr``, ``verify_operator`` and FLAM counting all work
unchanged, and fans the per-shard kernels out on any
:class:`~repro.parallel.backends.Backend`.

Determinism contract
--------------------
Results depend on the *shard layout* (a pure function of the data: row
count, plus — for CSR — the nnz profile via
:func:`nnz_shard_bounds`) and never on the backend or worker count:

- CSR ``matvec``/``matmat`` are **bitwise identical** to the unsharded
  kernels — the handwritten CSR kernels reduce each row in storage
  order, and row segments never straddle a shard boundary.
- CSR ``rmatvec`` is also **bitwise identical**: shards compute only
  the *elementwise* stage (``data * u[row_ids]`` over their contiguous
  slice of storage order) into one products buffer, and the coordinator
  applies the single canonical reduction
  (:meth:`~repro.linalg.sparse.CSRMatrix.reduce_adjoint_products`).
- Dense kernels, and every ``rmatmat``, are deterministic and
  reproducible for a given layout (identical across backends and worker
  counts) but only within a few ulp of the unsharded product: adjoint
  fan-in folds per-shard partials in fixed shard order, and dense
  forward products go through BLAS, whose internal reduction order can
  depend on the block's row count.

Process transport
-----------------
On a backend without closure support (the process backend), shard
payloads are broadcast into shared memory **once** at construction;
each product ships only small picklable task dicts, with the operand
and result travelling through two reusable shared-memory mailboxes.
Workers rebuild shard objects lazily and cache them (including their
transpose caches) for the life of the pool.

Per-shard wall times are recorded into the current tracer's metrics
(histogram ``parallel.shard_seconds``, counter
``parallel.shard_products``), so shard balance shows up in the same
trace as the fit spans.
"""

from __future__ import annotations

import atexit
import gc
import time
from typing import (
    Any,
    Dict,
    List,
    Literal,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro._typing import FloatArray, FloatDType, IntArray
from repro.exceptions import TransportError
from repro.linalg import kernels
from repro.linalg.operators import LinearOperator, as_operator
from repro.linalg.sparse import CSRMatrix
from repro.observability import current_tracer
from repro.parallel.backends import Backend, SerialBackend, resolve_backend
from repro.parallel.shm import attach_array

__all__ = [
    "ShardedOperator",
    "csr_row_slice",
    "default_shard_count",
    "nnz_shard_bounds",
    "shard_bounds",
    "shard_kernel_result",
]

#: Rows per shard below which splitting stops paying for itself.
_MIN_SHARD_ROWS = 512

#: Default cap on shard count (matches the largest pool the benchmarks
#: exercise; more shards than cores only adds fan-in overhead).
_MAX_DEFAULT_SHARDS = 8


def default_shard_count(m: int) -> int:
    """Shard count used when the caller does not pick one.

    Complexity: O(1) — integer arithmetic on ``m``.

    A pure function of ``m`` — *not* of the backend or worker count — so
    that the default layout (and therefore the exact floating-point
    result of every product) is identical on every backend.
    """
    if m < _MIN_SHARD_ROWS:
        return 1
    return max(2, min(_MAX_DEFAULT_SHARDS, m // _MIN_SHARD_ROWS))


def shard_bounds(m: int, n_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, nearly equal ``[start, stop)`` row ranges.

    Complexity: O(k) for ``k`` shards — the edge list itself.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, max(1, m))
    edges = [(m * i) // n_shards for i in range(n_shards + 1)]
    return [(edges[i], edges[i + 1]) for i in range(n_shards)]


def nnz_shard_bounds(
    indptr: IntArray, n_shards: int
) -> List[Tuple[int, int]]:
    """Contiguous row ranges balanced by *stored-entry* count.

    Complexity: O(k·log m) for ``k`` shards — one binary search into
    ``indptr`` per cut.

    A CSR shard's kernel cost is proportional to its non-zeros, not its
    rows; on skewed data (a few heavy rows, a long sparse tail) the
    row-count splits of :func:`shard_bounds` leave one worker doing most
    of the arithmetic while the rest idle.  This picks the row cut for
    shard ``i`` as the ``indptr`` position nearest ``total·i/n_shards``,
    so every shard carries within one row's worth of nnz of the ideal
    share — while staying a pure function of the data (never of the
    backend or worker count), preserving the determinism contract.

    Each shard keeps at least one row; with fewer rows than shards, or
    an all-zero matrix, this degrades to :func:`shard_bounds`.
    """
    m = int(len(indptr)) - 1
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n_shards = min(n_shards, max(1, m))
    total = int(indptr[-1]) if m >= 0 else 0
    if n_shards == 1 or total == 0:
        return shard_bounds(m, n_shards)
    cuts: List[int] = [0]
    for i in range(1, n_shards):
        target = (total * i) // n_shards
        # First row boundary at or past the nnz target, then snap back
        # when the previous boundary is nearer in nnz space.
        cut = int(np.searchsorted(indptr, target, side="left"))
        cut = min(cut, m)
        if cut > 0 and (target - int(indptr[cut - 1])) < (
            int(indptr[cut]) - target
        ):
            cut -= 1
        # Keep shards non-empty and strictly increasing.
        cut = max(cut, cuts[-1] + 1)
        cut = min(cut, m - (n_shards - i))
        cuts.append(cut)
    cuts.append(m)
    return [(cuts[i], cuts[i + 1]) for i in range(n_shards)]


def csr_row_slice(matrix: CSRMatrix, start: int, stop: int) -> CSRMatrix:
    """The contiguous row block ``matrix[start:stop]`` as a CSRMatrix.

    Complexity: O(m) worst case — the localized ``indptr`` copy; the
    ``data``/``indices`` views are O(1).

    ``data``/``indices`` are views into the parent's storage (zero
    copy); only the localized ``indptr`` is materialized.
    """
    if not 0 <= start <= stop <= matrix.shape[0]:
        raise ValueError(
            f"invalid row range [{start}, {stop}) for {matrix.shape[0]} rows"
        )
    lo = int(matrix.indptr[start])
    hi = int(matrix.indptr[stop])
    return CSRMatrix(
        matrix.data[lo:hi],
        matrix.indices[lo:hi],
        matrix.indptr[start : stop + 1] - lo,
        (stop - start, matrix.shape[1]),
    )


def _ordered_fold(partials: FloatArray) -> FloatArray:
    """Sum ``partials`` over axis 0 as a left fold in shard order.

    A plain left fold — not ``np.sum``, whose pairwise reduction would
    tie the association (and thus the low bits) to internal blocking
    heuristics instead of the shard layout.
    """
    acc = np.array(partials[0])
    for i in range(1, partials.shape[0]):
        acc += partials[i]
    return acc


def shard_kernel_result(
    mode: str,
    shard: Any,
    kernel: str,
    operand: FloatArray,
) -> FloatArray:
    """One shard's share of a product, as a returned array.

    Complexity: O(nnz) per shard-local kernel call (``nnz`` = the
    shard's stored entries; ``O(nnz·c)`` for ``c``-column blocks).

    The single arithmetic body behind every transport: in-process
    backends write the returned block into a coordinator-owned buffer
    (:func:`_apply_shard_kernel`), and distributed workers ship it back
    over a socket.  Forward kernels expect the full operand; adjoint
    kernels expect the caller's pre-sliced ``operand[r0:r1]`` block.
    Both transports evaluating these exact expressions is what makes
    the distributed backend bitwise-identical to the local ones.
    """
    if mode == "dense":
        if kernel in ("matvec", "matmat"):
            return shard @ operand
        return shard.T @ operand
    if mode == "csr":
        # CSR shards go through the kernel dispatcher, so thread
        # workers run the GIL-free compiled backend when selected.  The
        # adjoint emits only the elementwise stage so the coordinator
        # can apply the one canonical reduction.
        if kernel == "matvec":
            return kernels.csr_matvec(shard, operand)
        if kernel == "rmatvec":
            return kernels.csr_adjoint_products(shard, operand)
        if kernel == "matmat":
            return kernels.csr_matmat(shard, operand)
        return kernels.csr_rmatmat(shard, operand)
    if kernel == "matvec":
        return shard.matvec(operand)
    if kernel == "rmatvec":
        return shard.rmatvec(operand)
    if kernel == "matmat":
        return shard.matmat(operand)
    return shard.rmatmat(operand)


def _apply_shard_kernel(
    mode: str,
    shard: Any,
    kernel: str,
    operand: FloatArray,
    out: FloatArray,
    rows: Tuple[int, int],
    nnz_range: Tuple[int, int],
    slot: int,
) -> None:
    """Run one shard's share of a product, writing into ``out``.

    The write-into-buffer form of :func:`shard_kernel_result` used by
    in-process backends (including process workers writing into
    shared-memory views).  Forward kernels write their disjoint row
    block; adjoint kernels write either their slice of the CSR products
    buffer (``rmatvec``) or their partial into slot ``slot`` for the
    coordinator's ordered fold.
    """
    r0, r1 = rows
    if kernel in ("matvec", "matmat"):
        out[r0:r1] = shard_kernel_result(mode, shard, kernel, operand)
    elif mode == "csr" and kernel == "rmatvec":
        p0, p1 = nnz_range
        out[p0:p1] = shard_kernel_result(mode, shard, kernel, operand[r0:r1])
    else:
        out[slot] = shard_kernel_result(mode, shard, kernel, operand[r0:r1])


# ----------------------------------------------------------------------
# Process-worker side
# ----------------------------------------------------------------------

#: Shards this worker has rebuilt from shared memory, keyed by bundle
#: key; cached so transpose/segment caches survive across products.
_SHARD_CACHE: Dict[str, Any] = {}


def _clear_shard_cache() -> None:
    """Drop rebuilt shards so their views release the shm buffers.

    Registered *after* :mod:`repro.parallel.shm`'s attachment cleanup
    (atexit is LIFO), so by the time the worker unmaps its attached
    blocks no cached ndarray still pins a buffer.  The explicit
    collection matters: a CSR shard and its lazily built transpose
    back-link each other (``A.T.T is A``), a cycle refcounting alone
    never frees.
    """
    _SHARD_CACHE.clear()
    gc.collect()


atexit.register(_clear_shard_cache)


def _materialize_shard(bundle: Dict[str, Any]) -> Any:
    key = bundle["key"]
    shard = _SHARD_CACHE.get(key)
    if shard is None:
        refs = bundle["refs"]
        if bundle["kind"] == "csr":
            shard = CSRMatrix(
                attach_array(refs["data"]),
                attach_array(refs["indices"]),
                attach_array(refs["indptr"]),
                bundle["shape"],
            )
        else:
            shard = attach_array(refs["block"])
        _SHARD_CACHE[key] = shard
    return shard


def _process_shard_task(task: Dict[str, Any]) -> float:
    """Worker entry point: one shard kernel on shared-memory views."""
    t0 = time.perf_counter()
    shard = _materialize_shard(task["bundle"])
    _apply_shard_kernel(
        task["bundle"]["kind"],
        shard,
        task["kernel"],
        attach_array(task["operand"]),
        attach_array(task["out"]),
        task["rows"],
        task["nnz"],
        task["slot"],
    )
    return time.perf_counter() - t0


class ShardedOperator(LinearOperator):
    """Row-partitioned view of a CSR/dense matrix (or operator stack).

    Complexity: O(nnz) per ``matvec``/``rmatvec`` summed across shards
    (``O(nnz·c)`` for ``c``-column blocks), plus O(m + k) coordinator
    work per product for the gather and ordered fold.

    Parameters
    ----------
    X:
        What to shard.  Accepts a :class:`CSRMatrix` / scipy sparse
        matrix / :class:`~repro.linalg.operators.CSROperator` (CSR
        mode), a dense ndarray / ``DenseOperator`` (dense mode), or a
        sequence of :class:`LinearOperator` row blocks (ops mode — the
        hook fault-injection tests use to plant a
        :class:`~repro.linalg.operators.FaultyOperator` inside one
        shard; serial/thread backends only).
    n_shards:
        Number of contiguous row shards.  Default:
        :func:`default_shard_count` of the row count — deliberately
        independent of the backend so results never depend on *where*
        the product ran.  Clamped to the row count.
    backend:
        A :class:`~repro.parallel.backends.Backend` instance (caller
        keeps ownership), a backend name, or ``None``; names and
        ``None`` go through
        :func:`~repro.parallel.backends.resolve_backend` sized by
        ``n_jobs``, and the resulting backend is owned (and closed) by
        this operator.
    n_jobs:
        Worker count used only when ``backend`` is not already an
        instance.

    With one shard every product delegates straight to the unsharded
    kernel — the degenerate layout is a true passthrough.
    """

    def __init__(
        self,
        X: Union[
            CSRMatrix, FloatArray, LinearOperator, Sequence[LinearOperator], Any
        ],
        n_shards: Optional[int] = None,
        backend: Union[None, str, Backend] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._owns_backend = not isinstance(backend, Backend)
        self.backend = resolve_backend(backend, n_jobs)
        self._closed = False
        self._scratch: Dict[Tuple[str, Tuple[int, ...], str, str], FloatArray] = {}

        self.matrix: Optional[CSRMatrix] = None
        self.array: Optional[FloatArray] = None
        self._ops: Optional[List[LinearOperator]] = None

        if isinstance(X, (list, tuple)):
            self._mode = "ops"
            self._init_ops(list(X), n_shards)
        else:
            base = as_operator(X)
            inner_matrix = getattr(base, "matrix", None)
            inner_array = getattr(base, "array", None)
            if isinstance(inner_matrix, CSRMatrix):
                self._mode = "csr"
                self.matrix = inner_matrix
            elif inner_array is not None:
                self._mode = "dense"
                self.array = np.asarray(inner_array)
            else:
                raise TypeError(
                    "ShardedOperator needs a CSR/dense matrix (or a "
                    "sequence of row-block operators); got "
                    f"{type(X).__name__} — wrap structural operators "
                    "around the sharded data operator instead"
                )
            m = base.shape[0]
            self.shape = (m, base.shape[1])
            count = default_shard_count(m) if n_shards is None else int(n_shards)
            if self._mode == "csr":
                # Balance shards by stored entries, not rows — kernel
                # cost is O(nnz), and the cut is still a pure function
                # of the data, so the determinism contract holds.
                assert self.matrix is not None
                self._bounds = nnz_shard_bounds(self.matrix.indptr, count)
            else:
                self._bounds = shard_bounds(m, count)
            self._build_local_shards()

        self.n_shards = len(self._bounds)
        self._single = self.n_shards == 1
        self._nnz_bounds = self._compute_nnz_bounds()
        self._direct: Optional[LinearOperator] = None
        if self._single:
            if self._mode == "ops":
                assert self._ops is not None
                self._direct = self._ops[0]
            elif self._mode == "csr":
                self._direct = as_operator(self.matrix)
            else:
                self._direct = as_operator(self.array)

        #: Set when a remote cluster failed and products fell back to a
        #: local backend; surfaced into ``fit_report_`` by the solvers.
        self.degraded_from: Optional[str] = None
        self.degradation_reason: Optional[str] = None

        self._uses_remote = bool(getattr(self.backend, "remote", False))
        self._uses_shm = (
            not self.backend.supports_closures and not self._uses_remote
        )
        self._bundles: List[Dict[str, Any]] = []
        self._remote_keys: List[str] = []
        if not self._single:
            if self._uses_shm:
                self._broadcast_shards()
            elif self._uses_remote:
                try:
                    self._ship_remote_shards()
                except TransportError as exc:
                    if (
                        getattr(self.backend, "on_unhealthy", "degrade")
                        != "degrade"
                    ):
                        self.close()
                        raise
                    self._degrade(exc)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _init_ops(
        self, ops: List[LinearOperator], n_shards: Optional[int]
    ) -> None:
        if not ops:
            raise ValueError("ops mode needs at least one row-block operator")
        if not all(isinstance(op, LinearOperator) for op in ops):
            raise TypeError("ops mode expects LinearOperator row blocks")
        n_cols = ops[0].shape[1]
        if any(op.shape[1] != n_cols for op in ops):
            raise ValueError("row-block operators must share column count")
        if n_shards is not None and int(n_shards) != len(ops):
            raise ValueError(
                f"n_shards={n_shards} conflicts with {len(ops)} row blocks"
            )
        if not self.backend.supports_closures:
            raise ValueError(
                "operator-sequence sharding cannot cross a process "
                "boundary; use a serial or thread backend"
            )
        self._ops = ops
        bounds = []
        row = 0
        for op in ops:
            bounds.append((row, row + op.shape[0]))
            row += op.shape[0]
        self._bounds = bounds
        self.shape = (row, n_cols)
        self._local_shards: List[Any] = list(ops)

    def _build_local_shards(self) -> None:
        if self._mode == "csr":
            assert self.matrix is not None
            self._local_shards = [
                csr_row_slice(self.matrix, r0, r1) for r0, r1 in self._bounds
            ]
        else:
            assert self.array is not None
            self._local_shards = [
                self.array[r0:r1] for r0, r1 in self._bounds
            ]

    def _compute_nnz_bounds(self) -> List[Tuple[int, int]]:
        if self._mode != "csr":
            return [(0, 0)] * self.n_shards
        assert self.matrix is not None
        indptr: IntArray = self.matrix.indptr
        return [
            (int(indptr[r0]), int(indptr[r1])) for r0, r1 in self._bounds
        ]

    def _broadcast_shards(self) -> None:
        """One-time shared-memory broadcast of every shard's payload."""
        arena = getattr(self.backend, "arena", None)
        if arena is None:
            raise ValueError(
                f"backend {self.backend.name!r} does not support closures "
                "and has no shared-memory arena"
            )
        for i, shard in enumerate(self._local_shards):
            if self._mode == "csr":
                refs = arena.share(
                    {
                        "data": shard.data,
                        "indices": shard.indices,
                        "indptr": shard.indptr,
                    }
                )
                shape: Tuple[int, ...] = shard.shape
            else:
                refs = arena.share({"block": shard})
                shape = shard.shape
            # The data block's shm name is globally unique — it doubles
            # as the worker-side cache key for the rebuilt shard.
            key = refs["data" if self._mode == "csr" else "block"].name
            self._bundles.append(
                {"kind": self._mode, "refs": refs, "shape": shape, "key": key}
            )
        self._role_in = f"{self._bundles[0]['key']}:in"
        self._role_out = f"{self._bundles[0]['key']}:out"

    def _ship_remote_shards(self) -> None:
        """One-time checksummed shipment of every shard to the cluster.

        Mirrors :meth:`_broadcast_shards` for remote backends: shard
        payloads cross the wire exactly once; per-product traffic is
        limited to operand and result vectors.
        """
        payloads: List[Dict[str, Any]] = []
        for shard in self._local_shards:
            if self._mode == "csr":
                payloads.append(
                    {
                        "kind": "csr",
                        "shape": shard.shape,
                        "arrays": {
                            "data": shard.data,
                            "indices": shard.indices,
                            "indptr": shard.indptr,
                        },
                    }
                )
            else:
                payloads.append(
                    {
                        "kind": "dense",
                        "shape": shard.shape,
                        "arrays": {"block": np.ascontiguousarray(shard)},
                    }
                )
        self._remote_keys = self.backend.ship_shards(payloads)

    def _degrade(self, exc: BaseException) -> None:
        """Fall back to the serial backend after cluster failure.

        The local shards built at construction make this a pure
        transport switch: the shard layout — and therefore every bit
        of every subsequent product — is unchanged.
        """
        reason = f"{type(exc).__name__}: {exc}"
        self.degraded_from = self.backend.name
        self.degradation_reason = reason
        tracer = current_tracer()
        if tracer.enabled:
            tracer.metrics.counter("parallel.degradations").add(1.0)
            tracer.event(
                "parallel.backend_degraded",
                from_backend=self.backend.name,
                reason=reason[:200],
            )
        if self._owns_backend:
            self.backend.close()
        self.backend = SerialBackend()
        self._owns_backend = True
        self._uses_remote = False
        self._uses_shm = False

    # ------------------------------------------------------------------
    # Operator contract
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> FloatDType:
        if self._mode == "csr":
            assert self.matrix is not None
            return self.matrix.dtype
        if self._mode == "dense":
            assert self.array is not None
            return self.array.dtype
        assert self._ops is not None
        return np.result_type(*[op.dtype for op in self._ops])

    @property
    def shard_layout(self) -> List[Tuple[int, int]]:
        """The contiguous ``[start, stop)`` row range of each shard."""
        return list(self._bounds)

    def _record(self, timings: List[float]) -> None:
        tracer = current_tracer()
        if not tracer.enabled:
            return
        histogram = tracer.metrics.histogram("parallel.shard_seconds")
        for elapsed in timings:
            histogram.observe(elapsed)
        tracer.metrics.counter("parallel.shard_products").add(
            float(len(timings))
        )

    def _run(
        self,
        kernel: str,
        operand: FloatArray,
        out_shape: Tuple[int, ...],
        out_dtype: FloatDType,
        order: Literal["C", "F"] = "C",
    ) -> FloatArray:
        """Fan a kernel out over every shard; return the fan-in buffer."""
        if self._uses_remote:
            try:
                return self._run_remote(
                    kernel, operand, out_shape, out_dtype, order
                )
            except TransportError as exc:
                if (
                    getattr(self.backend, "on_unhealthy", "degrade")
                    != "degrade"
                ):
                    raise
                # Fall through to the local path: same shard layout,
                # same kernels — the product below is bit-for-bit what
                # the cluster would have returned.
                self._degrade(exc)
        if self._uses_shm:
            arena = getattr(self.backend, "arena")
            in_view, in_ref = arena.ndarray(
                self._role_in, operand.shape, operand.dtype
            )
            in_view[...] = operand
            out_view, out_ref = arena.ndarray(
                self._role_out, out_shape, out_dtype
            )
            tasks = [
                {
                    "bundle": self._bundles[i],
                    "kernel": kernel,
                    "operand": in_ref,
                    "out": out_ref,
                    "rows": self._bounds[i],
                    "nnz": self._nnz_bounds[i],
                    "slot": i,
                }
                for i in range(self.n_shards)
            ]
            timings = self.backend.map(_process_shard_task, tasks)
            # Copy out before the mailbox is reused by the next product.
            result = np.array(out_view, order=order)
        else:
            out = self._fan_in_buffer(kernel, out_shape, out_dtype, order)

            def run_shard(index: int) -> float:
                t0 = time.perf_counter()
                _apply_shard_kernel(
                    self._mode,
                    self._local_shards[index],
                    kernel,
                    operand,
                    out,
                    self._bounds[index],
                    self._nnz_bounds[index],
                    index,
                )
                return time.perf_counter() - t0

            timings = self.backend.map(run_shard, list(range(self.n_shards)))
            result = out
        self._record(timings)
        return result

    def _run_remote(
        self,
        kernel: str,
        operand: FloatArray,
        out_shape: Tuple[int, ...],
        out_dtype: FloatDType,
        order: Literal["C", "F"],
    ) -> FloatArray:
        """Stream one product through the remote cluster.

        Forward kernels ship the full operand (every shard multiplies
        against all columns); adjoint kernels ship only each shard's
        ``operand[r0:r1]`` block.  Assembly mirrors
        :func:`_apply_shard_kernel`'s writes exactly, so the returned
        buffer is bitwise what the local paths produce.
        """
        forward = kernel in ("matvec", "matmat")
        tasks = []
        for i in range(self.n_shards):
            r0, r1 = self._bounds[i]
            tasks.append(
                {
                    "key": self._remote_keys[i],
                    "kernel": kernel,
                    "operand": operand if forward else operand[r0:r1],
                }
            )
        arrays = self.backend.run_tasks(tasks)
        out = np.empty(out_shape, dtype=out_dtype, order=order)
        for i, array in enumerate(arrays):
            if forward:
                r0, r1 = self._bounds[i]
                out[r0:r1] = array
            elif self._mode == "csr" and kernel == "rmatvec":
                p0, p1 = self._nnz_bounds[i]
                out[p0:p1] = array
            else:
                out[i] = array
        tracer = current_tracer()
        if tracer.enabled:
            tracer.metrics.counter("parallel.shard_products").add(
                float(self.n_shards)
            )
        return out

    def _fan_in_buffer(
        self,
        kernel: str,
        out_shape: Tuple[int, ...],
        out_dtype: FloatDType,
        order: Literal["C", "F"],
    ) -> FloatArray:
        """Fan-in buffer for ``_run``; adjoint buffers are reused.

        Forward products (``matvec``/``matmat``) are returned to callers
        and must stay fresh.  Adjoint intermediates — the CSR products
        buffer and the per-shard partials — are fully consumed by the
        canonical reduction / ordered fold (both of which allocate their
        own output) before the next product starts, so the hot LSQR
        adjoint path can recycle them instead of re-allocating an
        ``nnz``-sized (or ``n_shards×n×k``) buffer every iteration.
        Concurrent products on one operator were never supported.
        """
        if kernel in ("matvec", "matmat"):
            return np.empty(out_shape, dtype=out_dtype, order=order)
        key = (kernel, out_shape, np.dtype(out_dtype).str, order)
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.empty(out_shape, dtype=out_dtype, order=order)
            self._scratch[key] = buf
        return buf

    def _matvec(self, v: FloatArray) -> FloatArray:
        if self._direct is not None:
            return self._direct.matvec(v)
        out_dtype = np.result_type(self.dtype, v.dtype)
        return self._run("matvec", v, (self.shape[0],), out_dtype)

    def _rmatvec(self, u: FloatArray) -> FloatArray:
        if self._direct is not None:
            return self._direct.rmatvec(u)
        out_dtype = np.result_type(self.dtype, u.dtype)
        if self._mode == "csr":
            assert self.matrix is not None
            products = self._run(
                "rmatvec", u, (self.matrix.nnz,), out_dtype
            )
            return kernels.csr_reduce_adjoint(self.matrix, products)
        partials = self._run(
            "rmatvec", u, (self.n_shards, self.shape[1]), out_dtype
        )
        return _ordered_fold(partials)

    def _matmat(self, B: FloatArray) -> FloatArray:
        if self._direct is not None:
            return self._direct.matmat(B)
        out_dtype = np.result_type(self.dtype, B.dtype)
        return self._run(
            "matmat", B, (self.shape[0], B.shape[1]), out_dtype, order="F"
        )

    def _rmatmat(self, U: FloatArray) -> FloatArray:
        if self._direct is not None:
            return self._direct.rmatmat(U)
        out_dtype = np.result_type(self.dtype, U.dtype)
        partials = self._run(
            "rmatmat",
            U,
            (self.n_shards, self.shape[1], U.shape[1]),
            out_dtype,
        )
        return _ordered_fold(partials)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the backend if this operator owns it.  Idempotent.

        Shared-memory broadcast blocks live in the backend's arena and
        are unlinked when the backend closes — a caller-supplied
        backend therefore keeps shard payloads mapped (by design: it
        may be serving several operators) until the caller closes it.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ShardedOperator":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedOperator(shape={self.shape}, mode={self._mode!r}, "
            f"n_shards={self.n_shards}, backend={self.backend.name!r})"
        )
