"""Execution backends for the sharded solver layer.

One protocol, three implementations:

- :class:`SerialBackend` — runs tasks inline in submission order.  The
  default everywhere; a :class:`~repro.parallel.sharded.ShardedOperator`
  on the serial backend is a pure refactoring of the unsharded product.
- :class:`ThreadBackend` — a persistent ``ThreadPoolExecutor``.  The CSR
  kernels spend their time inside numpy ufuncs (``bincount``,
  ``reduceat``, fancy gather, elementwise multiply), all of which drop
  the GIL on large arrays, so row shards genuinely overlap.  Tasks run
  inside a *copy* of the caller's ``contextvars`` context, so ambient
  tracers (and therefore spans opened in a worker) nest under the span
  that was open at the fan-out point.
- :class:`ProcessBackend` — a persistent ``ProcessPoolExecutor`` plus a
  :class:`~repro.parallel.shm.SharedArena`.  Shard payloads are shipped
  into shared memory once; per-call traffic is small picklable task
  tuples, with operands and results travelling through reusable
  shared-memory mailboxes.  Task callables must be module-level
  (picklable) functions — closures are rejected by pickling, which is
  why :func:`Backend.map` users check :attr:`Backend.supports_closures`
  first.

Determinism: a backend never changes *what* is computed, only *where*.
``map`` always returns results in submission order, and the sharded
kernels are written so their output depends only on the shard layout —
the same ``n_shards`` gives bitwise-identical results on every backend
at any worker count.

Failure semantics: ``map`` propagates the first raised exception (in
submission order) after letting already-submitted tasks finish; pools
are never left wedged, so an :class:`InjectedFaultError` in one shard
surfaces to the solver exactly as it would serially.
"""

from __future__ import annotations

import contextvars
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Type, Union

from repro.exceptions import WorkerCrashError
from repro.parallel.shm import SharedArena

__all__ = [
    "Backend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "effective_n_jobs",
    "resolve_backend",
]


def effective_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` parameter to a positive worker count.

    ``None`` means 1 (no parallelism); ``-1`` means every available
    core; positive integers pass through.  Zero and other negatives are
    rejected — there is no sklearn-style ``-2`` arithmetic here.
    """
    if n_jobs is None:
        return 1
    count = int(n_jobs)
    if count == -1:
        return max(1, os.cpu_count() or 1)
    if count < 1:
        raise ValueError(f"n_jobs must be a positive integer or -1, got {n_jobs}")
    return count


class Backend:
    """The execution-backend protocol.

    Subclasses provide :meth:`map`; everything else has working
    defaults.  Backends are reusable across many products and must be
    :meth:`close`\\ d when owned (context-manager support is provided).
    """

    #: Display name ("serial" / "thread" / "process").
    name: str = "backend"

    #: Worker count this backend fans out to.
    n_workers: int = 1

    #: False when task callables must be picklable module-level
    #: functions (the process backend); closures are fine otherwise.
    supports_closures: bool = True

    #: True when shard payloads must be *shipped* to workers (no shared
    #: address space at all — the distributed backend).  The sharded
    #: layer checks this to pick the remote transport path.
    remote: bool = False

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item; results in submission order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pools and shared resources.  Idempotent."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(
        self, exc_type: Optional[Type[BaseException]], exc: object, tb: object
    ) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class SerialBackend(Backend):
    """Inline execution — the zero-behaviour-change default."""

    name = "serial"
    n_workers = 1

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return [fn(item) for item in items]


class ThreadBackend(Backend):
    """A persistent thread pool; tasks inherit the caller's context."""

    name = "thread"

    def __init__(self, n_workers: Optional[int] = None) -> None:
        self.n_workers = effective_n_jobs(-1 if n_workers is None else n_workers)
        self._executor: Optional[ThreadPoolExecutor] = None

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.n_workers,
                thread_name_prefix="repro-shard",
            )
        return self._executor

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        tasks = list(items)
        if len(tasks) <= 1:
            return [fn(item) for item in tasks]
        # Each task runs in its own copy of the caller's context: a
        # single Context cannot be entered concurrently, and without
        # copies worker threads would start from an *empty* context —
        # losing the ambient tracer and breaking span nesting.
        ctx = contextvars.copy_context()
        copies = [ctx.run(contextvars.copy_context) for _ in tasks]
        pool = self._pool()
        futures = [
            pool.submit(copy.run, fn, item)
            for copy, item in zip(copies, tasks)
        ]
        # Collect in submission order: the first failing future's
        # exception propagates after every task has been submitted, so
        # the pool drains instead of deadlocking.
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


class ProcessBackend(Backend):
    """A persistent process pool with shared-memory data transport.

    Parameters
    ----------
    n_workers:
        Pool size (default: every available core).
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"spawn"``:
        fork duplicates arbitrary parent state (and is deprecated in
        multithreaded processes from Python 3.12), while spawn costs a
        short one-time worker startup that the persistent pool
        amortizes over the whole solve.

    The :attr:`arena` owns every shared-memory block this backend
    ships; :meth:`close` shuts the pool down and unlinks them all.
    """

    name = "process"
    supports_closures = False

    def __init__(
        self, n_workers: Optional[int] = None, start_method: str = "spawn"
    ) -> None:
        self.n_workers = effective_n_jobs(-1 if n_workers is None else n_workers)
        self._start_method = start_method
        self._executor: Optional[Executor] = None
        self.arena = SharedArena()

    def _pool(self) -> Executor:
        if self._executor is None:
            import multiprocessing

            self._executor = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context(self._start_method),
            )
        return self._executor

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        tasks = list(items)
        if not tasks:
            return []
        try:
            return list(self._pool().map(fn, tasks))
        except BrokenProcessPool as exc:
            # A worker died mid-map (OOM-kill, segfault, SIGKILL).  The
            # pool is unusable and — critically — the dead worker can
            # never detach its shared-memory mappings, so unlink every
            # segment *now* (close() tears down the arena) instead of
            # leaking them until interpreter exit.
            self.close()
            raise WorkerCrashError(
                f"process-pool worker died mid-map: {exc}; shared-memory "
                "segments unlinked, backend closed"
            ) from exc

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.arena.close()


#: Accepted string spellings for :func:`resolve_backend`.
_BACKEND_NAMES = ("serial", "thread", "process", "distributed")


def resolve_backend(
    backend: Union[None, str, Backend],
    n_jobs: Optional[int] = None,
) -> Backend:
    """Turn user-facing ``backend``/``n_jobs`` parameters into a Backend.

    - a :class:`Backend` instance passes through unchanged (the caller
      keeps ownership and is responsible for closing it);
    - ``None`` picks :class:`SerialBackend` for one job and
      :class:`ThreadBackend` otherwise;
    - ``"serial"``/``"thread"``/``"process"``/``"distributed"`` select
      explicitly, sized by ``n_jobs``.
    """
    if isinstance(backend, Backend):
        return backend
    jobs = effective_n_jobs(n_jobs)
    if backend is None:
        return SerialBackend() if jobs <= 1 else ThreadBackend(jobs)
    if backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadBackend(jobs)
    if backend == "process":
        return ProcessBackend(jobs)
    if backend == "distributed":
        # Imported lazily: the distributed stack (sockets, subprocess
        # supervision) stays out of the import graph until requested.
        from repro.distributed.backend import DistributedBackend

        return DistributedBackend(jobs)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {_BACKEND_NAMES} "
        "or a Backend instance"
    )
