"""Shared-memory transport for the process backend.

The process backend's contract (see :mod:`repro.parallel.backends`) is
that shard *data* crosses the process boundary exactly once, and that
per-product traffic is limited to small picklable descriptors: operands
and results travel through named ``multiprocessing.shared_memory``
blocks that workers attach to lazily and keep mapped for the life of
the pool.

Two roles, two lifetimes:

- **Broadcast blocks** (:meth:`SharedArena.share`) hold immutable shard
  payloads (CSR ``data``/``indices``/``indptr`` or a dense row block).
  Created once at :class:`~repro.parallel.sharded.ShardedOperator`
  construction, unlinked when the arena closes.
- **Scratch blocks** (:meth:`SharedArena.ndarray`) are reusable
  mailboxes for operands and results.  They grow monotonically (a block
  is recreated only when a product needs more bytes than the current
  capacity), so a solver alternating ``matvec``/``rmatvec`` allocates
  at most twice and then reuses the same two mappings for every
  iteration.

The coordinator — the process that created the arena — owns cleanup:
:meth:`SharedArena.close` unlinks every block.  Workers only ever
attach (:func:`attach_array`) and unmap at exit; spawn workers share
the coordinator's ``resource_tracker``, so the attach-side
re-registration is a set no-op and needs no bpo-39959 workaround.
"""

from __future__ import annotations

import atexit
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, NamedTuple, Tuple

import numpy as np

__all__ = ["SharedArrayRef", "SharedArena", "attach_array"]


class SharedArrayRef(NamedTuple):
    """Picklable handle to an ndarray living in a shared-memory block."""

    name: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for extent in self.shape:
            count *= int(extent)
        return count * np.dtype(self.dtype).itemsize


def _block_view(
    shm: shared_memory.SharedMemory, dtype: str, shape: Tuple[int, ...]
) -> np.ndarray:
    """An ndarray view over the head of a (possibly larger) block."""
    count = 1
    for extent in shape:
        count *= int(extent)
    flat = np.frombuffer(shm.buf, dtype=np.dtype(dtype), count=count)
    return flat.reshape(shape)


def _dispose(shm: shared_memory.SharedMemory) -> None:
    """Unmap (best-effort) and unlink one owned block.

    ``close()`` raises ``BufferError`` while any live ndarray still
    views the buffer; the unlink must happen regardless (POSIX removes
    the name immediately and frees the pages when the last mapping
    dies), so the two steps are guarded independently.
    """
    try:
        shm.close()
    except (BufferError, OSError):
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        pass


def _release_blocks(
    broadcast: List[shared_memory.SharedMemory],
    scratch: Dict[str, shared_memory.SharedMemory],
) -> None:
    """Unlink every block in the given containers (in place).

    Module-level (and fed the bare containers, never the arena) so a
    ``weakref.finalize`` can use it without keeping the arena alive.
    """
    for shm in list(broadcast) + list(scratch.values()):
        _dispose(shm)
    broadcast.clear()
    scratch.clear()


class SharedArena:
    """Coordinator-side owner of a set of shared-memory blocks.

    Cleanup is guaranteed on three independent paths: explicit
    :meth:`close` (the normal case, and what the process backend runs
    *eagerly* when a worker crashes mid-map), garbage collection of an
    arena that was never closed (a backend dropped after a crashed
    fit), and interpreter exit — the latter two via one
    ``weakref.finalize``, which unlike the previous bound-method
    ``atexit`` hook holds no strong reference to the arena, so an
    abandoned arena's segments are unlinked at GC time instead of
    leaking until exit.
    """

    def __init__(self) -> None:
        self._broadcast: List[shared_memory.SharedMemory] = []
        self._scratch: Dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _release_blocks, self._broadcast, self._scratch
        )

    def share(self, arrays: Dict[str, np.ndarray]) -> Dict[str, SharedArrayRef]:
        """Copy each array into its own block; returns attach handles.

        This is the one-time broadcast: after it returns, workers can
        reconstruct every array zero-copy from the returned refs.
        """
        refs: Dict[str, SharedArrayRef] = {}
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, array.nbytes)
            )
            self._broadcast.append(shm)
            ref = SharedArrayRef(shm.name, array.dtype.str, array.shape)
            if array.nbytes:
                _block_view(shm, ref.dtype, ref.shape)[...] = array
            refs[key] = ref
        return refs

    def ndarray(
        self, role: str, shape: Tuple[int, ...], dtype: np.dtype
    ) -> Tuple[np.ndarray, SharedArrayRef]:
        """A scratch array for ``role`` (``"in"``/``"out"``), grown on demand.

        Returns the coordinator's writable view plus the picklable ref
        workers attach with.  Capacity is monotone: the backing block is
        only recreated (old one unlinked) when the request outgrows it.
        """
        if self._closed:
            raise ValueError("arena is closed")
        ref_dtype = np.dtype(dtype).str
        need = SharedArrayRef("", ref_dtype, tuple(shape)).nbytes
        shm = self._scratch.get(role)
        if shm is None or shm.size < need:
            if shm is not None:
                _dispose(shm)
            shm = shared_memory.SharedMemory(create=True, size=max(1, need))
            self._scratch[role] = shm
        ref = SharedArrayRef(shm.name, ref_dtype, tuple(int(s) for s in shape))
        return _block_view(shm, ref.dtype, ref.shape), ref

    def close(self) -> None:
        """Unlink every block.  Idempotent; also runs via finalizer."""
        self._closed = True
        # Invoking the finalizer runs _release_blocks exactly once and
        # marks it dead, so GC/exit won't run it again.
        self._finalizer()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Blocks this process has attached, kept mapped for the pool's life.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def _close_attachments() -> None:
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except (OSError, BufferError):
            pass
    _ATTACHED.clear()


atexit.register(_close_attachments)


def _attach_block(name: str) -> shared_memory.SharedMemory:
    # Attaching registers the name with the resource tracker a second
    # time — harmless here, because spawn workers inherit the
    # *coordinator's* tracker process and its registry is a set (the
    # bpo-39959 spurious-unlink hazard only bites unrelated processes
    # with trackers of their own, which this transport never creates).
    shm = _ATTACHED.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
    return shm


def attach_array(ref: SharedArrayRef) -> np.ndarray:
    """Worker-side view of a shared array (attach cached per block)."""
    return _block_view(_attach_block(ref.name), ref.dtype, ref.shape)
