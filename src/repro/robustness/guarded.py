"""The guarded SPD solve: Cholesky → jittered retries → LSQR rescue.

The normal-equations path of SRDA (and of every baseline sharing its
substrate) ultimately solves ``(G + αI) x = b`` for a Gram-type matrix
``G``.  With a well-chosen ``α`` that system is SPD and one Cholesky
factorization serves all right-hand sides — but rank-deficient data,
``α = 0``, or heavy feature correlation make ``G + αI`` numerically
singular, and the raw factorization raises
:class:`~repro.linalg.cholesky.NotPositiveDefiniteError` mid-sweep.

:func:`guarded_solve` replaces that hard failure with a bounded
fallback chain, each step recorded so the caller's
:class:`~repro.robustness.report.FitReport` can name exactly what
happened:

1. **Cholesky** on ``G + αI`` — the fast path, taken verbatim when the
   matrix is comfortably SPD.
2. **Jittered retries** — escalating ridge boosts ``α·10^k``
   (``k = 1..max_jitter_retries``; an ``eps``-scaled base when
   ``α = 0``) until a factorization succeeds.  The added jitter is the
   documented degradation: the solution is the ridge solution at the
   recorded ``effective_alpha``, which converges to the minimum-norm
   least-squares solution as the jitter shrinks.
3. **LSQR rescue** — matrix-free iteration on the (possibly singular)
   system, which converges to the minimum-norm solution without ever
   factoring anything.  Termination codes are surfaced, never swallowed.

If even the rescue produces non-finite values, :class:`SolverFailure`
carries the full attempt log — a structured diagnosis instead of a bare
linear-algebra traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

import numpy as np

from repro._typing import FloatArray

from repro.exceptions import ReproError
from repro.linalg.cholesky import (
    NotPositiveDefiniteError,
    cholesky,
    solve_factored,
)
from repro.linalg.block_lsqr import block_lsqr
from repro.observability import current_tracer
from repro.robustness.report import FitReport

#: Default number of escalating-jitter Cholesky retries.
DEFAULT_JITTER_RETRIES = 6


class SolverFailure(ReproError, RuntimeError):
    """Every step of the guarded fallback chain failed.

    Attributes
    ----------
    attempts:
        The ordered log of what was tried and how each step failed.
    """

    def __init__(self, message: str, attempts: List[str]) -> None:
        super().__init__(
            message + "; attempts: " + " -> ".join(attempts)
        )
        self.attempts = list(attempts)


@dataclass
class GuardedSolveResult:
    """Outcome of one :func:`guarded_solve` call.

    Attributes
    ----------
    x:
        Solution, same trailing shape as the right-hand side.
    solver:
        ``"cholesky"``, ``"cholesky+jitter"``, or ``"lsqr-rescue"``.
    effective_alpha:
        The diagonal shift actually applied (base ``alpha`` + jitter).
    condition_estimate:
        Estimated 2-norm condition number of the factored system
        (``inf`` when no factorization succeeded).
    fallbacks:
        Ordered log of failed attempts preceding the successful one.
    lsqr_istop, lsqr_iterations, lsqr_residuals:
        Per-column LSQR diagnostics when the rescue ran, else ``None``.
    """

    x: FloatArray
    solver: str
    effective_alpha: float
    condition_estimate: float
    fallbacks: List[str] = field(default_factory=list)
    lsqr_istop: Optional[List[int]] = None
    lsqr_iterations: Optional[List[int]] = None
    lsqr_residuals: Optional[List[float]] = None

    def merge_into(self, report: FitReport) -> None:
        """Copy this solve's diagnostics onto a fit-level report."""
        report.solver = self.solver
        report.effective_alpha = self.effective_alpha
        report.condition_estimate = self.condition_estimate
        for step in self.fallbacks:
            report.record_fallback(step)
        if self.lsqr_istop is not None:
            report.lsqr_istop = self.lsqr_istop
            report.lsqr_iterations = self.lsqr_iterations
            report.lsqr_residuals = self.lsqr_residuals


def estimate_condition(
    system: FloatArray, L: Optional[FloatArray] = None, iterations: int = 8
) -> float:
    """Cheap 2-norm condition estimate of an SPD system.

    Power iteration (deterministic start) estimates the largest
    eigenvalue; when a Cholesky factor ``L`` is available, inverse
    iteration through the factor estimates the smallest.  Without a
    factor the estimate is ``inf`` — the honest answer for a matrix
    that refused to factor.
    """
    n = system.shape[0]
    if n == 0:
        return 1.0
    v = np.ones(n) / np.sqrt(n)
    lam_max = 0.0
    for _ in range(iterations):
        w = system @ v
        lam_max = float(np.linalg.norm(w))
        if lam_max == 0.0 or not np.isfinite(lam_max):
            break
        v = w / lam_max
    if L is None:
        return float("inf")
    u = np.ones(n) / np.sqrt(n)
    inv_norm = 0.0
    for _ in range(iterations):
        w = solve_factored(L, u)
        inv_norm = float(np.linalg.norm(w))
        if inv_norm == 0.0 or not np.isfinite(inv_norm):
            return float("inf")
        u = w / inv_norm
    return lam_max * inv_norm


def _jitter_schedule(
    alpha: float, diag_scale: float, max_retries: int
) -> List[float]:
    """Escalating diagonal boosts ``base·10^k`` for ``k = 1..retries``."""
    eps = np.finfo(np.float64).eps
    base = alpha if alpha > 0 else eps * max(diag_scale, 1.0)
    return [base * 10.0**k for k in range(1, max_retries + 1)]


def guarded_solve(
    gram: FloatArray,
    rhs: FloatArray,
    alpha: float = 0.0,
    max_jitter_retries: int = DEFAULT_JITTER_RETRIES,
    rescue_iter_lim: Optional[int] = None,
    report: Optional[FitReport] = None,
) -> GuardedSolveResult:
    """Solve ``(gram + alpha·I) x = rhs`` with the guarded fallback chain.

    Parameters
    ----------
    gram:
        Symmetric positive *semi*-definite matrix (Gram or kernel);
        ``alpha`` is added to its diagonal here, so pass the raw matrix.
    rhs:
        Right-hand side, ``(n,)`` or ``(n, k)``.
    alpha:
        Base Tikhonov shift.  ``alpha = 0`` is allowed — singularity is
        exactly what the chain is for.
    max_jitter_retries:
        Bound on escalating-jitter Cholesky retries before the LSQR
        rescue.
    rescue_iter_lim:
        Iteration cap for the LSQR rescue (default ``min(2n, 500)``,
        at least 50).
    report:
        When given, the solve's diagnostics are merged into this
        :class:`FitReport` before returning.

    Raises
    ------
    SolverFailure
        When every step — including the rescue — fails to produce a
        finite solution.
    """
    gram = np.asarray(gram, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    n = gram.shape[0]
    # Observability rides the ambient tracer (a no-op unless the caller
    # or the process configured one): the chain's decisions — which
    # rung succeeded, every rung that failed — become span attributes,
    # span events, and counters.
    tracer = current_tracer()
    with tracer.span(
        "guarded_solve", alpha=float(alpha), n=int(n)
    ) as span:
        result = _solve_chain(
            gram,
            rhs,
            alpha,
            max_jitter_retries,
            rescue_iter_lim,
            tracer,
            span,
        )
    if report is not None:
        result.merge_into(report)
    return result


def _solve_chain(
    gram: FloatArray,
    rhs: FloatArray,
    alpha: float,
    max_jitter_retries: int,
    rescue_iter_lim: Optional[int],
    tracer: Any,
    span: Any,
) -> GuardedSolveResult:
    """The fallback chain itself; ``span`` collects its decisions."""
    n = gram.shape[0]
    attempts: List[str] = []
    diag = np.diagonal(gram)
    diag_scale = float(np.mean(np.abs(diag))) if n else 1.0

    def _finish(result: GuardedSolveResult) -> GuardedSolveResult:
        span.set_attribute("solver", result.solver)
        span.set_attribute("effective_alpha", result.effective_alpha)
        span.set_attribute("fallback_steps", len(result.fallbacks))
        if tracer.enabled:
            tracer.metrics.counter(f"guarded_solve.{result.solver}").add()
        return result

    def _fallback(step: str) -> None:
        attempts.append(step)
        tracer.event("guarded_solve.fallback", step=step)

    def _try_cholesky(shift: float, label: str):
        system = gram.copy()
        if shift:
            system[np.diag_indices_from(system)] += shift
        try:
            L = cholesky(system)
        except NotPositiveDefiniteError as exc:
            _fallback(f"{label} failed ({exc})")
            return None
        x = solve_factored(L, rhs)
        if not np.all(np.isfinite(x)):
            _fallback(f"{label} produced non-finite solution")
            return None
        return system, L, x

    # Step 1: plain Cholesky at the base alpha.
    outcome = _try_cholesky(alpha, "cholesky")
    if outcome is not None:
        system, L, x = outcome
        return _finish(
            GuardedSolveResult(
                x=x,
                solver="cholesky",
                effective_alpha=alpha,
                condition_estimate=estimate_condition(system, L),
                fallbacks=attempts,
            )
        )

    # Step 2: escalating-jitter retries.
    for k, jitter in enumerate(
        _jitter_schedule(alpha, diag_scale, max_jitter_retries), start=1
    ):
        effective = alpha + jitter
        outcome = _try_cholesky(
            effective, f"jitter retry k={k} (effective_alpha={effective:.3g})"
        )
        if outcome is not None:
            system, L, x = outcome
            return _finish(
                GuardedSolveResult(
                    x=x,
                    solver="cholesky+jitter",
                    effective_alpha=effective,
                    condition_estimate=estimate_condition(system, L),
                    fallbacks=attempts,
                )
            )

    # Step 3: LSQR rescue — minimum-norm solve of the (singular) system.
    if rescue_iter_lim is None:
        rescue_iter_lim = max(50, min(2 * n, 500))
    system = gram.copy()
    if alpha:
        system[np.diag_indices_from(system)] += alpha
    columns = rhs.reshape(n, -1)
    # All rescue columns ride one blocked Golub–Kahan iteration: the
    # (dense) system streams through memory once per iteration instead
    # of once per column, and per-column istop codes are preserved.
    blocked = block_lsqr(
        system,
        columns,
        atol=1e-12,
        btol=1e-12,
        iter_lim=rescue_iter_lim,
        on_iteration=tracer.iteration_hook(span),
    )
    x = np.asarray(blocked.X, dtype=columns.dtype)
    istops: List[int] = [int(v) for v in blocked.istop]
    iterations: List[int] = [int(v) for v in blocked.itn]
    residuals: List[float] = [float(v) for v in blocked.r2norm]
    if not np.all(np.isfinite(x)) or 8 in istops:
        # istop=8 means LSQR aborted on non-finite quantities; its x is
        # only the last finite iterate, not a rescue.
        _fallback(
            "lsqr rescue produced non-finite solution"
            if not np.all(np.isfinite(x))
            else "lsqr rescue hit non-finite products (istop=8)"
        )
        if tracer.enabled:
            tracer.metrics.counter("guarded_solve.failure").add()
        raise SolverFailure(
            "guarded_solve exhausted its fallback chain", attempts
        )
    return _finish(
        GuardedSolveResult(
            x=x[:, 0] if rhs.ndim == 1 else x,
            solver="lsqr-rescue",
            effective_alpha=alpha,
            condition_estimate=estimate_condition(system),
            fallbacks=attempts,
            lsqr_istop=istops,
            lsqr_iterations=iterations,
            lsqr_residuals=residuals,
        )
    )
