"""Fit diagnostics — the :class:`FitReport` attached to every estimator.

The regularization literature around LDA treats ill-conditioning as the
expected case, not the exception.  Accordingly, every fit in this
package either succeeds with a documented degradation path or fails
with a structured diagnosis — and the record of which of those happened
lives here.  After ``fit``, estimators expose ``fit_report_``:

- which solver actually ran, and every fallback step taken to get there;
- a condition estimate of the system that was ultimately factored;
- the effective regularization (base ``α`` plus any rescue jitter);
- LSQR termination codes, iteration counts, and final residuals per
  response column;
- per-response and per-input warnings (singleton classes, zero-variance
  features, sanitized non-finite entries, ...).

Degradations that change the numerical result (a triggered fallback, a
non-converged LSQR run) also emit a :class:`RobustnessWarning` so long
sweeps surface them without the caller polling reports.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional


class RobustnessWarning(UserWarning):
    """Emitted when a fit degrades gracefully instead of failing."""


@dataclass
class FitReport:
    """Structured diagnostics recorded during one ``fit`` call.

    Attributes
    ----------
    solver:
        The solver that produced the final coefficients
        (``"cholesky"``, ``"cholesky+jitter"``, ``"lsqr"``, or
        ``"lsqr-rescue"``).
    requested_solver:
        The solver the caller asked for (constructor argument, after
        ``"auto"`` resolution).
    fallbacks:
        Ordered log of fallback steps taken, e.g.
        ``["cholesky failed (leading minor 3 ...)",
        "jitter retry k=1 (alpha=1e-12) failed", ...]``.  Empty when the
        primary solver succeeded first try.
    condition_estimate:
        Estimated 2-norm condition number of the system that was
        factored (``inf`` when no factorization succeeded).
    effective_alpha:
        The regularization actually applied: the base ``α`` plus any
        escalated jitter added by the fallback chain.
    lsqr_istop:
        Per-response LSQR termination codes (see
        :data:`repro.linalg.lsqr.ISTOP_REASONS`); ``None`` off the LSQR
        path.
    lsqr_iterations:
        Per-response LSQR iteration counts.
    lsqr_residuals:
        Per-response final ``r2norm`` values.
    warnings:
        Human-readable degradation notes accumulated during fit.
    converged:
        False when any response column terminated on a failure code
        (divergence, stagnation) or the fallback chain was exhausted.
    backend:
        Execution backend the operator products ran on (``None`` on
        the direct single-core path).  A degraded distributed fit
        records the ladder, e.g. ``"distributed->serial"``.
    incremental:
        ``None`` for a cold ``fit``.  A ``partial_fit`` records how the
        batch was absorbed: batch count, new/total row counts, the
        cumulative class count and any labels first seen this batch,
        and whether the solve warm-started from the previous
        coefficients.
    """

    solver: Optional[str] = None
    requested_solver: Optional[str] = None
    fallbacks: List[str] = field(default_factory=list)
    condition_estimate: Optional[float] = None
    effective_alpha: Optional[float] = None
    lsqr_istop: Optional[List[int]] = None
    lsqr_iterations: Optional[List[int]] = None
    lsqr_residuals: Optional[List[float]] = None
    warnings: List[str] = field(default_factory=list)
    converged: bool = True
    backend: Optional[str] = None
    incremental: Optional[dict] = None

    @property
    def degraded(self) -> bool:
        """True when the fit deviated from the primary, clean path."""
        return bool(self.fallbacks or self.warnings or not self.converged)

    def record_fallback(self, step: str) -> None:
        """Append one fallback step to the ordered log."""
        self.fallbacks.append(step)

    def add_warning(self, message: str, emit: bool = True) -> None:
        """Record a degradation note, optionally emitting it as a warning."""
        self.warnings.append(message)
        if emit:
            warnings.warn(message, RobustnessWarning, stacklevel=3)

    def summary(self) -> str:
        """One-line digest suitable for logs and CLI output."""
        parts = [f"solver={self.solver}"]
        if self.requested_solver and self.requested_solver != self.solver:
            parts.append(f"requested={self.requested_solver}")
        if self.effective_alpha is not None:
            parts.append(f"effective_alpha={self.effective_alpha:.3g}")
        if self.condition_estimate is not None:
            parts.append(f"cond~{self.condition_estimate:.3g}")
        if self.fallbacks:
            parts.append(f"fallbacks={len(self.fallbacks)}")
        if self.lsqr_istop is not None:
            parts.append(f"lsqr_istop={self.lsqr_istop}")
        if self.backend is not None:
            parts.append(f"backend={self.backend}")
        if self.incremental is not None:
            parts.append(
                f"incremental=batch{self.incremental.get('batches')}"
                f"/{self.incremental.get('rows_total')}rows"
            )
        if self.warnings:
            parts.append(f"warnings={len(self.warnings)}")
        parts.append(f"converged={self.converged}")
        return "FitReport(" + ", ".join(parts) + ")"

    def __str__(self) -> str:
        return self.summary()
