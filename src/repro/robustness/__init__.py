"""Guarded solves and fit diagnostics.

Every estimator in this package routes its SPD solves through
:func:`guarded_solve` — a Cholesky → jittered-Cholesky → LSQR-rescue
fallback chain — and records what happened on a :class:`FitReport`
exposed as ``fit_report_`` after ``fit``.  Degradations emit
:class:`RobustnessWarning` so long experiment sweeps surface them.

See ``docs/ROBUSTNESS.md`` for the full degradation policies.
"""

from repro.robustness.guarded import (
    DEFAULT_JITTER_RETRIES,
    GuardedSolveResult,
    SolverFailure,
    estimate_condition,
    guarded_solve,
)
from repro.robustness.report import FitReport, RobustnessWarning

__all__ = [
    "DEFAULT_JITTER_RETRIES",
    "FitReport",
    "GuardedSolveResult",
    "RobustnessWarning",
    "SolverFailure",
    "estimate_condition",
    "guarded_solve",
]
