"""Table I — the operation-count and memory model.

Costs are measured in *flam* (one floating-point addition plus one
multiplication, Stewart's unit, ref [8]) with ``m`` samples, ``n``
features, ``t = min(m, n)``, ``c`` classes, ``k`` LSQR iterations and
``s`` average non-zeros per sample.  Dominant terms, from Section II-B
and III-C:

========================  =======================================  ==================
algorithm                 time (flam)                              memory (floats)
========================  =======================================  ==================
LDA (SVD route)           (3/2)·m·n·t + (9/2)·t³                   m·n + m·t + n·t
SRDA, normal equations    (1/2)·m·n·t + (1/6)·t³ + c·m·n           m·n + t² + c·n
SRDA, LSQR (dense)        k·c·(2·m·n + 3m + 5n)                    m·n + 2n + c·n
SRDA, LSQR (sparse)       k·c·(2·m·s + 3m + 5n)                    m·s + (2+c)·n
========================  =======================================  ==================

Consistency checks built into the model (and asserted by tests):

- at ``m = n`` with ``c ≪ t`` the normal-equations speedup peaks at
  ``((3/2) + (9/2)) / ((1/2) + (1/6)) = 9``, the paper's "maximum
  speedup is 9" claim;
- LDA is cubic in ``t``; SRDA-LSQR is linear in both ``m`` and ``n``.
"""

from __future__ import annotations

from typing import Dict, Optional


def _validate(m: int, n: int, c: int) -> None:
    if m < 1 or n < 1:
        raise ValueError("m and n must be positive")
    if c < 2:
        raise ValueError("c must be at least 2")


def lda_flam(m: int, n: int, c: int) -> float:
    """LDA training cost: SVD of the centered data + the small H problem.

    Dominant terms ``(3/2)·m·n·t + (9/2)·t³`` plus the lower-order
    ``H``-problem and recovery terms ``c·t² + c³ + m·n·c``.
    """
    _validate(m, n, c)
    t = min(m, n)
    return 1.5 * m * n * t + 4.5 * t**3 + c * t**2 + c**3 + m * n * c


def srda_normal_flam(m: int, n: int, c: int) -> float:
    """SRDA by normal equations (Eqn 20/21).

    Gram matrix ``(1/2)·m·n·t`` (the dual path swaps which Gram matrix,
    both cost the same with ``t = min``), Cholesky ``t³/6``, right-hand
    sides and solves ``c·m·n + c·t²``, responses ``m·c²``.
    """
    _validate(m, n, c)
    t = min(m, n)
    return 0.5 * m * n * t + t**3 / 6.0 + c * m * n + c * t**2 + m * c**2


def srda_lsqr_flam(
    m: int, n: int, c: int, k: int = 20, s: Optional[float] = None
) -> float:
    """SRDA by LSQR: ``(c-1)·k·(2·m·s + 3m + 5n)`` plus responses.

    ``s`` defaults to ``n`` (dense data).  Linear in every variable —
    the paper's headline.
    """
    _validate(m, n, c)
    if k < 1:
        raise ValueError("k must be positive")
    s_eff = float(n if s is None else s)
    per_iteration = 2.0 * m * s_eff + 3.0 * m + 5.0 * n
    return (c - 1) * k * per_iteration + m * c**2


def lda_memory(m: int, n: int, c: int) -> float:
    """LDA storage in floats: data + centered copy's factors U, V.

    ``m·n + m·t + n·t`` — both singular factor matrices are dense even
    for sparse input, which is the memory wall of Table X.
    """
    _validate(m, n, c)
    t = min(m, n)
    return float(m * n + m * t + n * t)


def rlda_memory(m: int, n: int, c: int) -> float:
    """RLDA storage *as the paper ran it* (Friedman, ref [21]).

    The RLDA baseline of Section IV-B adds ``αI`` to the diagonal of the
    explicit within-class scatter — an ``n × n`` dense matrix — plus the
    data and the eigenvector factor.  On 20Newsgroups (n = 26214) the
    scatter alone is 5.5 GB, which is why RLDA is absent from Tables
    IX/X and Figure 4 entirely.  (Our own :class:`repro.baselines.RLDA`
    is implemented via SVD reduction and is far thriftier; this function
    models the baseline the paper measured, which is what reproducing
    the dash pattern requires.)
    """
    _validate(m, n, c)
    t = min(m, n)
    return float(m * n + n * n + n * t)


def idrqr_memory(m: int, n: int, c: int) -> float:
    """IDR/QR storage: the centered dense data plus the n×c factors.

    IDR/QR avoids the big SVD but "still needs to store the centered
    data matrix which can not be fit into memory when both m and n are
    large" (Section IV-C) — it outlives LDA/RLDA on Table X but dies at
    the 40% training ratio.
    """
    _validate(m, n, c)
    return float(m * n + 2 * n * c)


def srda_normal_memory(m: int, n: int, c: int) -> float:
    """SRDA normal-equations storage: data + Gram matrix + solutions."""
    _validate(m, n, c)
    t = min(m, n)
    return float(m * n + t * t + c * n)


def srda_lsqr_memory(
    m: int, n: int, c: int, s: Optional[float] = None
) -> float:
    """SRDA LSQR storage: the data (sparse: ``m·s``) + a few vectors."""
    _validate(m, n, c)
    s_eff = float(n if s is None else s)
    return m * s_eff + (2 + c) * n + 2.0 * m


def max_normal_speedup() -> float:
    """The paper's claim: speedup of SRDA-NE over LDA peaks at 9 (m=n)."""
    return (1.5 + 4.5) / (0.5 + 1.0 / 6.0)


def normal_speedup(m: int, n: int, c: int) -> float:
    """Predicted LDA / SRDA-NE flam ratio for a concrete problem size."""
    return lda_flam(m, n, c) / srda_normal_flam(m, n, c)


def table1(
    m: int, n: int, c: int, k: int = 20, s: Optional[float] = None
) -> Dict[str, Dict[str, float]]:
    """Evaluate every Table-I row for a concrete problem size."""
    rows: Dict[str, Dict[str, float]] = {
        "LDA": {
            "flam": lda_flam(m, n, c),
            "memory": lda_memory(m, n, c),
        },
        "SRDA (normal equations)": {
            "flam": srda_normal_flam(m, n, c),
            "memory": srda_normal_memory(m, n, c),
        },
        "SRDA (LSQR, dense)": {
            "flam": srda_lsqr_flam(m, n, c, k=k),
            "memory": srda_lsqr_memory(m, n, c),
        },
    }
    if s is not None:
        rows["SRDA (LSQR, sparse)"] = {
            "flam": srda_lsqr_flam(m, n, c, k=k, s=s),
            "memory": srda_lsqr_memory(m, n, c, s=s),
        }
    return rows


#: Bytes per stored float64, for converting the memory model to bytes.
BYTES_PER_FLOAT = 8


def estimate_fit_bytes(
    algorithm: str,
    m: int,
    n: int,
    c: int,
    s: Optional[float] = None,
) -> float:
    """Rough peak working-set of ``fit`` in bytes, per the Table-I model.

    Used by the experiment runner's memory-budget guard to reproduce the
    paper's "cannot be applied as the training set grows" cells (Table
    IX/X dashes).  ``algorithm`` is matched on well-known names; unknown
    names get the optimistic sparse-SRDA estimate.
    """
    name = "".join(ch for ch in algorithm.upper() if ch.isalnum())
    if name in ("LDA", "PCALDA"):
        return lda_memory(m, n, c) * BYTES_PER_FLOAT
    if name == "RLDA":
        return rlda_memory(m, n, c) * BYTES_PER_FLOAT
    if name == "IDRQR":
        return idrqr_memory(m, n, c) * BYTES_PER_FLOAT
    if "SRDA" in name and "LSQR" not in name and s is None:
        # dense SRDA defaults to the normal-equations path
        return srda_normal_memory(m, n, c) * BYTES_PER_FLOAT
    # sparse data (s given) or an explicit LSQR variant: the linear path
    return srda_lsqr_memory(m, n, c, s=s) * BYTES_PER_FLOAT
