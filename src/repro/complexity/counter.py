"""Empirical validation of the cost model.

:class:`FlamCountingOperator` wraps any linear operator and charges the
Table-I unit price for each product (``nnz`` flam per mat-vec — one
multiply-add per stored entry), so a real LSQR run can be compared
against the model's ``k·(2·m·s + 3m + 5n)`` prediction.

:func:`loglog_slope` fits the scaling exponent of measured times — the
benchmark that demonstrates the linear-time claim reports slopes ≈ 1 for
SRDA-LSQR against both ``m`` and ``n``, and ≥ 2 for LDA against
``t = min(m, n)``.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np

from repro.linalg.operators import LinearOperator
from repro.linalg.sparse import CSRMatrix
from repro.observability.metrics import MetricsRegistry


class FlamCountingOperator(LinearOperator):
    """Wraps an operator, accumulating flam charged at nnz per product.

    Attributes
    ----------
    flam:
        Total multiply-add pairs charged so far.

    When a ``metrics`` registry is supplied, every charge also
    increments the ``metric`` counter there, so flam lands in the same
    trace as the wall-time spans (the observability contract: time and
    flam in one record stream).
    """

    def __init__(
        self,
        base: LinearOperator,
        nnz: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        metric: str = "flam",
    ) -> None:
        super().__init__()
        self.base = base
        self.shape = base.shape
        if nnz is None:
            matrix = getattr(base, "matrix", None)
            if isinstance(matrix, CSRMatrix):
                nnz = matrix.nnz
            else:
                nnz = self.shape[0] * self.shape[1]
        self.nnz = int(nnz)
        self.flam = 0
        self._flam_lock = threading.Lock()
        self._counter = (
            metrics.counter(metric) if metrics is not None else None
        )

    def _charge(self, amount: int) -> None:
        # flam += is a read-modify-write on an unbounded int — unlike
        # the float metrics, concurrent charges (thread-backend shards,
        # user threading) can drop increments without the lock.
        with self._flam_lock:
            self.flam += amount
        if self._counter is not None:
            self._counter.add(float(amount))

    @property
    def dtype(self) -> np.dtype:
        return self.base.dtype

    def _matvec(self, v: np.ndarray) -> np.ndarray:
        self._charge(self.nnz)
        return self.base.matvec(v)

    def _rmatvec(self, u: np.ndarray) -> np.ndarray:
        self._charge(self.nnz)
        return self.base.rmatvec(u)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        # A block product touches every stored entry once per column:
        # the flam bill is identical to k mat-vecs, only the wall time
        # differs.  That equality is what makes flam-per-second a fair
        # metric for the blocked-vs-sequential benchmark.
        self._charge(self.nnz * B.shape[1])
        return self.base.matmat(B)

    def _rmatmat(self, U: np.ndarray) -> np.ndarray:
        self._charge(self.nnz * U.shape[1])
        return self.base.rmatmat(U)

    def reset(self) -> None:
        """Zero the accumulated flam (and the product counters)."""
        self.flam = 0
        self.reset_counts()


def loglog_slope(sizes: Sequence[float], times: Sequence[float]) -> float:
    """Least-squares slope of log(time) against log(size).

    A slope of p means time ~ size^p over the measured range.  Requires
    strictly positive inputs and at least two points.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times = np.asarray(times, dtype=np.float64)
    if sizes.shape != times.shape or sizes.size < 2:
        raise ValueError("need at least two matching (size, time) pairs")
    if np.any(sizes <= 0) or np.any(times <= 0):
        raise ValueError("sizes and times must be strictly positive")
    log_s = np.log(sizes)
    log_t = np.log(times)
    slope, _ = np.polyfit(log_s, log_t, 1)
    return float(slope)


def predicted_lsqr_flam(
    m: int, n: int, iterations: int, nnz: int = None
) -> float:
    """Model prediction for one LSQR solve, for counter cross-checks."""
    if nnz is None:
        nnz = m * n
    return iterations * (2.0 * nnz + 3.0 * m + 5.0 * n)
