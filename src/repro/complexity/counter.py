"""Empirical validation of the cost model.

:class:`FlamCountingOperator` wraps any linear operator and charges the
Table-I unit price for each product (``nnz`` flam per mat-vec — one
multiply-add per stored entry), so a real LSQR run can be compared
against the model's ``k·(2·m·s + 3m + 5n)`` prediction.

:func:`loglog_slope` fits the scaling exponent of measured times — the
benchmark that demonstrates the linear-time claim reports slopes ≈ 1 for
SRDA-LSQR against both ``m`` and ``n``, and ≥ 2 for LDA against
``t = min(m, n)``.

:func:`measure_seconds` and :func:`measure_scaling` are the scaling-probe
primitives behind :mod:`repro.analysis.complexity.harness`: best-of-
repeats autoranged wall time at one size, and the same swept over a
geometric size ladder with the fitted log–log slope attached.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.operators import LinearOperator
from repro.linalg.sparse import CSRMatrix
from repro.observability.metrics import MetricsRegistry


class FlamCountingOperator(LinearOperator):
    """Wraps an operator, accumulating flam charged at nnz per product.

    Attributes
    ----------
    flam:
        Total multiply-add pairs charged so far.

    When a ``metrics`` registry is supplied, every charge also
    increments the ``metric`` counter there, so flam lands in the same
    trace as the wall-time spans (the observability contract: time and
    flam in one record stream).
    """

    def __init__(
        self,
        base: LinearOperator,
        nnz: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        metric: str = "flam",
    ) -> None:
        super().__init__()
        self.base = base
        self.shape = base.shape
        if nnz is None:
            matrix = getattr(base, "matrix", None)
            if isinstance(matrix, CSRMatrix):
                nnz = matrix.nnz
            else:
                nnz = self.shape[0] * self.shape[1]
        self.nnz = int(nnz)
        self.flam = 0
        self._flam_lock = threading.Lock()
        self._counter = (
            metrics.counter(metric) if metrics is not None else None
        )

    def _charge(self, amount: int) -> None:
        # flam += is a read-modify-write on an unbounded int — unlike
        # the float metrics, concurrent charges (thread-backend shards,
        # user threading) can drop increments without the lock.
        with self._flam_lock:
            self.flam += amount
        if self._counter is not None:
            self._counter.add(float(amount))

    @property
    def dtype(self) -> np.dtype:
        return self.base.dtype

    def _matvec(self, v: np.ndarray) -> np.ndarray:
        self._charge(self.nnz)
        return self.base.matvec(v)

    def _rmatvec(self, u: np.ndarray) -> np.ndarray:
        self._charge(self.nnz)
        return self.base.rmatvec(u)

    def _matmat(self, B: np.ndarray) -> np.ndarray:
        # A block product touches every stored entry once per column:
        # the flam bill is identical to k mat-vecs, only the wall time
        # differs.  That equality is what makes flam-per-second a fair
        # metric for the blocked-vs-sequential benchmark.
        self._charge(self.nnz * B.shape[1])
        return self.base.matmat(B)

    def _rmatmat(self, U: np.ndarray) -> np.ndarray:
        self._charge(self.nnz * U.shape[1])
        return self.base.rmatmat(U)

    def reset(self) -> None:
        """Zero the accumulated flam (and the product counters)."""
        self.flam = 0
        self.reset_counts()


def loglog_slope(sizes: Sequence[float], times: Sequence[float]) -> float:
    """Least-squares slope of log(time) against log(size).

    A slope of p means time ~ size^p over the measured range.  Requires
    strictly positive inputs and at least two points.
    """
    size_arr = np.asarray(sizes, dtype=np.float64)
    time_arr = np.asarray(times, dtype=np.float64)
    if size_arr.shape != time_arr.shape or size_arr.size < 2:
        raise ValueError("need at least two matching (size, time) pairs")
    if np.any(size_arr <= 0) or np.any(time_arr <= 0):
        raise ValueError("sizes and times must be strictly positive")
    log_s = np.log(size_arr)
    log_t = np.log(time_arr)
    slope, _ = np.polyfit(log_s, log_t, 1)
    return float(slope)


def predicted_lsqr_flam(
    m: int, n: int, iterations: int, nnz: Optional[int] = None
) -> float:
    """Model prediction for one LSQR solve, for counter cross-checks."""
    if nnz is None:
        nnz = m * n
    return iterations * (2.0 * nnz + 3.0 * m + 5.0 * n)


def measure_seconds(
    fn: Callable[[], object],
    repeats: int = 3,
    min_time: float = 0.02,
    max_number: int = 4096,
) -> float:
    """Best-of-``repeats`` wall seconds for one call of ``fn``.

    Timeit-style autoranging: the inner call count doubles until one
    batch takes at least ``min_time``, so per-call overhead (~µs) does
    not swamp fast kernels; taking the *minimum* over repeats rejects
    scheduler noise, which only ever adds time.  The floor of 1 ns
    keeps downstream log–log fits defined even for degenerate clocks.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    number = 1
    for _ in range(repeats):
        while True:
            start = perf_counter()
            for _ in range(number):
                fn()
            elapsed = perf_counter() - start
            if elapsed >= min_time or number >= max_number:
                break
            number *= 2
        best = min(best, elapsed / number)
    return max(best, 1e-9)


@dataclass(frozen=True)
class ScalingMeasurement:
    """Per-size costs of one kernel plus the fitted scaling exponent."""

    sizes: Tuple[int, ...]
    costs: Tuple[float, ...]

    @property
    def slope(self) -> float:
        """Fitted log–log slope: cost ~ size^slope over the sweep."""
        return loglog_slope(self.sizes, self.costs)


def measure_scaling(
    make: Callable[[int], Callable[[], object]],
    sizes: Sequence[int],
    repeats: int = 3,
    min_time: float = 0.02,
) -> ScalingMeasurement:
    """Time ``make(size)()`` at each size of a geometric ladder.

    ``make`` does the (untimed) problem setup and returns the thunk to
    measure, so construction cost — often a different complexity class
    than the kernel, e.g. the O(nnz log nnz) transpose build versus the
    O(nnz) product — never pollutes the fitted slope.
    """
    resolved = [int(s) for s in sizes]
    if len(resolved) < 2:
        raise ValueError("need at least two sizes to fit a slope")
    costs = tuple(
        measure_seconds(make(size), repeats=repeats, min_time=min_time)
        for size in resolved
    )
    return ScalingMeasurement(sizes=tuple(resolved), costs=costs)
