"""The paper's cost model (Table I) and its empirical validation.

- :mod:`repro.complexity.flam` — closed-form flam and memory counts for
  LDA and both SRDA solvers, plus the speedup analysis (maximum 9× for
  the normal-equations path at ``m = n``).
- :mod:`repro.complexity.counter` — instrumented operators that count
  actual work, and log–log slope estimation for the linear-time claim.
"""

from repro.complexity.counter import FlamCountingOperator, loglog_slope
from repro.complexity.flam import (
    lda_flam,
    lda_memory,
    max_normal_speedup,
    srda_lsqr_flam,
    srda_lsqr_memory,
    srda_normal_flam,
    srda_normal_memory,
    table1,
)

__all__ = [
    "FlamCountingOperator",
    "lda_flam",
    "lda_memory",
    "loglog_slope",
    "max_normal_speedup",
    "srda_lsqr_flam",
    "srda_lsqr_memory",
    "srda_normal_flam",
    "srda_normal_memory",
    "table1",
]
