"""Unit tests for the Table-I cost model."""

import numpy as np
import pytest

from repro.complexity.flam import (
    estimate_fit_bytes,
    lda_flam,
    lda_memory,
    max_normal_speedup,
    normal_speedup,
    srda_lsqr_flam,
    srda_lsqr_memory,
    srda_normal_flam,
    srda_normal_memory,
    table1,
)


class TestPaperClaims:
    def test_max_speedup_is_nine(self):
        assert max_normal_speedup() == pytest.approx(9.0)

    def test_speedup_approaches_nine_at_m_equals_n(self):
        # c ≪ t: dominant terms give 6 t³ vs (2/3) t³
        assert normal_speedup(20000, 20000, 10) == pytest.approx(9.0, rel=0.01)

    def test_srda_normal_always_faster_than_lda(self):
        for m, n, c in [(100, 50, 5), (1000, 3000, 20), (5000, 5000, 68),
                        (50, 10000, 2)]:
            assert srda_normal_flam(m, n, c) < lda_flam(m, n, c)

    def test_lda_cubic_in_t(self):
        # doubling t = min(m, n) on a square problem multiplies the cost
        # by ~8 once the cubic term dominates
        small = lda_flam(4000, 4000, 2)
        large = lda_flam(8000, 8000, 2)
        assert large / small == pytest.approx(8.0, rel=0.05)

    def test_srda_lsqr_linear_in_m_and_n(self):
        base = srda_lsqr_flam(1000, 500, 10, k=20)
        assert srda_lsqr_flam(2000, 500, 10, k=20) / base == pytest.approx(
            2.0, rel=0.05
        )
        base_n = srda_lsqr_flam(1000, 500, 10, k=20)
        double_n = srda_lsqr_flam(1000, 1000, 10, k=20)
        assert double_n / base_n == pytest.approx(2.0, rel=0.05)

    def test_sparse_lsqr_depends_on_s_not_n(self):
        dense = srda_lsqr_flam(10000, 26214, 20, k=15)
        sparse = srda_lsqr_flam(10000, 26214, 20, k=15, s=100)
        assert sparse < dense / 50

    def test_lsqr_scales_linearly_in_iterations(self):
        # responses term is additive, so compare increments
        k10 = srda_lsqr_flam(1000, 500, 5, k=10)
        k20 = srda_lsqr_flam(1000, 500, 5, k=20)
        k30 = srda_lsqr_flam(1000, 500, 5, k=30)
        assert (k30 - k20) == pytest.approx(k20 - k10)


class TestMemoryModel:
    def test_lda_memory_dominated_by_factors(self):
        # for the 20NG shape the factors push LDA past 2 GB while sparse
        # SRDA stays tiny — Table X's story
        m, n, c, s = 9000, 26214, 20, 100
        assert lda_memory(m, n, c) * 8 > 2 * 1024**3
        assert srda_lsqr_memory(m, n, c, s=s) * 8 < 100 * 1024**2

    def test_memory_ordering(self):
        m, n, c = 2000, 1024, 68
        assert srda_lsqr_memory(m, n, c) <= srda_normal_memory(m, n, c)
        assert srda_normal_memory(m, n, c) <= lda_memory(m, n, c)

    def test_estimate_fit_bytes_name_dispatch(self):
        from repro.complexity.flam import idrqr_memory, rlda_memory

        m, n, c = 500, 300, 10
        assert estimate_fit_bytes("LDA", m, n, c) == lda_memory(m, n, c) * 8
        assert estimate_fit_bytes("RLDA", m, n, c) == rlda_memory(m, n, c) * 8
        assert estimate_fit_bytes("SRDA", m, n, c) == (
            srda_normal_memory(m, n, c) * 8
        )
        assert estimate_fit_bytes("IDR/QR", m, n, c) == (
            idrqr_memory(m, n, c) * 8
        )
        # sparse data (s given) implies SRDA runs its LSQR path
        assert estimate_fit_bytes("SRDA", m, n, c, s=7.0) == (
            srda_lsqr_memory(m, n, c, s=7.0) * 8
        )

    def test_news_dash_pattern(self):
        """The model must reproduce Table IX/X's memory-wall pattern on
        the real 20NG shape against the paper's ~1.2 GB workspace."""
        from repro.complexity.flam import idrqr_memory, rlda_memory

        n, c, budget = 26214, 20, 1.21e9
        sizes = {0.05: 947, 0.10: 1894, 0.20: 3788, 0.30: 5682, 0.40: 7576}
        # RLDA: dead at every ratio (the n×n scatter alone exceeds 2 GB)
        assert rlda_memory(sizes[0.05], n, c) * 8 > 2 * 1024**3
        # LDA: alive at 5/10%, dead at 20%
        assert lda_memory(sizes[0.10], n, c) * 8 < budget
        assert lda_memory(sizes[0.20], n, c) * 8 > budget
        # IDR/QR: alive at 30%, dead at 40%
        assert idrqr_memory(sizes[0.30], n, c) * 8 < budget
        assert idrqr_memory(sizes[0.40], n, c) * 8 > budget
        # SRDA (sparse LSQR): two orders of magnitude below budget at 50%
        assert srda_lsqr_memory(9470, n, c, s=90) * 8 < budget / 50

    def test_unknown_algorithm_gets_sparse_estimate(self):
        assert estimate_fit_bytes("Mystery", 100, 50, 4, s=5) == (
            srda_lsqr_memory(100, 50, 4, s=5) * 8
        )


class TestValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            lda_flam(0, 10, 3)
        with pytest.raises(ValueError):
            srda_normal_flam(10, 10, 1)
        with pytest.raises(ValueError):
            srda_lsqr_flam(10, 10, 3, k=0)

    def test_table1_rows(self):
        rows = table1(1000, 500, 10, k=15, s=40)
        assert set(rows) == {
            "LDA",
            "SRDA (normal equations)",
            "SRDA (LSQR, dense)",
            "SRDA (LSQR, sparse)",
        }
        for row in rows.values():
            assert row["flam"] > 0 and row["memory"] > 0

    def test_table1_without_sparsity(self):
        rows = table1(100, 50, 5)
        assert "SRDA (LSQR, sparse)" not in rows
