"""Unit tests for empirical cost counting and scaling estimation."""

import numpy as np
import pytest

from repro.complexity.counter import (
    FlamCountingOperator,
    loglog_slope,
    predicted_lsqr_flam,
)
from repro.linalg.lsqr import lsqr
from repro.linalg.operators import as_operator
from repro.linalg.sparse import CSRMatrix


class TestFlamCounting:
    def test_dense_charge_per_product(self, rng):
        A = rng.standard_normal((8, 5))
        op = FlamCountingOperator(as_operator(A))
        op.matvec(np.ones(5))
        assert op.flam == 40
        op.rmatvec(np.ones(8))
        assert op.flam == 80

    def test_sparse_charge_is_nnz(self, rng):
        dense = rng.standard_normal((10, 6))
        dense[dense < 0.8] = 0
        csr = CSRMatrix.from_dense(dense)
        op = FlamCountingOperator(as_operator(csr))
        op.matvec(np.ones(6))
        assert op.flam == csr.nnz

    def test_reset(self, rng):
        op = FlamCountingOperator(as_operator(rng.standard_normal((4, 3))))
        op.matvec(np.ones(3))
        op.reset()
        assert op.flam == 0 and op.n_matvec == 0

    def test_lsqr_cost_matches_model(self, rng):
        """The data-touching cost of a real LSQR run must match the 2·nnz
        per-iteration term of the model exactly."""
        A = rng.standard_normal((60, 25))
        op = FlamCountingOperator(as_operator(A))
        result = lsqr(op, rng.standard_normal(60), iter_lim=12, atol=0, btol=0)
        nnz = 60 * 25
        # setup does one rmatvec; each iteration one matvec + one rmatvec
        expected = (2 * result.itn + 1) * nnz
        assert op.flam == expected
        # and the model's dominant term agrees to within the setup product
        model = predicted_lsqr_flam(60, 25, result.itn)
        data_term = 2 * result.itn * nnz
        assert abs(model - data_term) == result.itn * (3 * 60 + 5 * 25)


class TestLogLogSlope:
    def test_linear_data(self):
        sizes = np.array([100, 200, 400, 800])
        assert loglog_slope(sizes, 3.0 * sizes) == pytest.approx(1.0)

    def test_cubic_data(self):
        sizes = np.array([10.0, 20, 40, 80])
        assert loglog_slope(sizes, sizes**3) == pytest.approx(3.0)

    def test_noisy_quadratic(self, rng):
        sizes = np.array([50.0, 100, 200, 400, 800])
        times = sizes**2 * np.exp(0.02 * rng.standard_normal(5))
        assert loglog_slope(sizes, times) == pytest.approx(2.0, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([1.0], [1.0])
        with pytest.raises(ValueError):
            loglog_slope([1.0, 2.0], [0.0, 1.0])
        with pytest.raises(ValueError):
            loglog_slope([1.0, 2.0], [1.0])
