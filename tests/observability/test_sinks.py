"""Sink behaviour and the JSONL schema validator."""

import io
import json

import numpy as np

from repro.observability import (
    InMemorySink,
    JsonlSink,
    MultiSink,
    TextSink,
    Tracer,
    validate_trace_file,
    validate_trace_lines,
)


def trace_something(sink):
    """Emit a small nested trace (plus metrics) into ``sink``."""
    tracer = Tracer(sink=sink)
    with tracer.span("outer", alpha=1.0):
        with tracer.span("inner") as inner:
            inner.add_event("tick", itn=1)
    tracer.metrics.counter("ticks").add(2)
    tracer.close()
    return tracer


class TestInMemorySink:
    def test_find_and_clear(self):
        sink = InMemorySink()
        trace_something(sink)
        assert [r["name"] for r in sink.spans] == ["inner", "outer"]
        assert len(sink.find("inner")) == 1
        assert sink.find("missing") == []
        assert len(sink.metrics) == 1
        assert sink.flush_count >= 1
        sink.clear()
        assert sink.spans == [] and sink.metrics == []
        assert sink.flush_count == 0


class TestJsonlSink:
    def test_file_round_trip_validates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace_something(JsonlSink(path))
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["type"] for r in records] == ["span", "span", "metrics"]
        assert records[1]["name"] == "outer"
        assert validate_trace_file(path) == []

    def test_numpy_values_serialized(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sink=sink)
        with tracer.span(
            "numpy",
            count=np.int64(3),
            scale=np.float32(0.5),
            shape=np.array([2, 3]),
        ):
            pass
        sink.close()
        record = json.loads(path.read_text())
        assert record["attributes"] == {
            "count": 3,
            "scale": 0.5,
            "shape": [2, 3],
        }

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            sink = JsonlSink(path)
            tracer = Tracer(sink=sink)
            with tracer.span("run"):
                pass
            sink.close()
        assert len(path.read_text().splitlines()) == 2
        assert validate_trace_file(path) == []

    def test_stream_target_not_closed(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        tracer = Tracer(sink=sink)
        with tracer.span("streamed"):
            pass
        sink.close()
        assert not stream.closed  # caller owns the stream
        assert json.loads(stream.getvalue())["name"] == "streamed"


class TestTextSink:
    def test_indented_human_lines(self):
        stream = io.StringIO()
        trace_something(TextSink(stream))
        lines = stream.getvalue().splitlines()
        assert "inner" in lines[0] and "outer" in lines[1]
        # depth-1 span indented further than its root
        assert lines[0].index("inner") > lines[1].index("outer")
        assert "alpha=1" in lines[1]
        metrics_lines = [
            line for line in lines[2:] if line.startswith("[ metrics ]")
        ]
        assert metrics_lines and "ticks=2" in metrics_lines[0]

    def test_error_marker(self):
        stream = io.StringIO()
        sink = TextSink(stream)
        sink.emit_span(
            {"name": "bad", "duration": 0.1, "depth": 0, "status": "error"}
        )
        assert "bad !" in stream.getvalue()


class TestMultiSink:
    def test_fans_out(self):
        first, second = InMemorySink(), InMemorySink()
        trace_something(MultiSink([first, second]))
        for sink in (first, second):
            assert [r["name"] for r in sink.spans] == ["inner", "outer"]
            assert len(sink.metrics) == 1
            assert sink.flush_count >= 1


class TestValidator:
    def test_flags_broken_lines(self):
        good = {
            "type": "span",
            "name": "ok",
            "trace_id": 1,
            "span_id": 1,
            "parent_id": None,
            "depth": 0,
            "start": 0.0,
            "end": 1.0,
            "duration": 1.0,
            "status": "ok",
            "attributes": {},
            "events": [],
        }
        assert validate_trace_lines([json.dumps(good)]) == []

        missing = dict(good)
        del missing["duration"]
        assert any(
            "duration" in e for e in validate_trace_lines([json.dumps(missing)])
        )

        bad_status = dict(good, status="maybe")
        assert any(
            "status" in e
            for e in validate_trace_lines([json.dumps(bad_status)])
        )

        orphan = dict(good, span_id=2, parent_id=99)
        errors = validate_trace_lines([json.dumps(orphan)])
        assert any("parent_id 99" in e for e in errors)

        assert any(
            "invalid JSON" in e for e in validate_trace_lines(["{not json"])
        )
        assert any(
            "unknown record type" in e
            for e in validate_trace_lines(['{"type": "mystery"}'])
        )

    def test_children_before_parents_is_legal(self):
        child = {
            "type": "span",
            "name": "child",
            "trace_id": 1,
            "span_id": 2,
            "parent_id": 1,
            "depth": 1,
            "start": 0.0,
            "end": 1.0,
            "duration": 1.0,
            "status": "ok",
            "attributes": {},
            "events": [],
        }
        parent = dict(child, name="parent", span_id=1, parent_id=None, depth=0)
        lines = [json.dumps(child), json.dumps(parent)]
        assert validate_trace_lines(lines) == []

    def test_empty_file_is_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert validate_trace_file(path) == ["trace file is empty"]
