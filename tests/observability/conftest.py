"""Fixtures for the observability tests."""

import pytest

from repro import observability


@pytest.fixture(autouse=True)
def _reset_global_tracer():
    """Restore the disabled default tracer after every test.

    Tests that call ``configure()`` install a process-wide tracer;
    leaking it would make unrelated tests record spans.
    """
    yield
    observability.configure(enabled=False)
