"""End-to-end instrumentation: estimators, solvers, cache, experiments."""

import json

import numpy as np
import pytest

from repro import SRDA, KernelSRDA, srda_alpha_path
from repro.datasets.base import Dataset
from repro.datasets.cache import cached
from repro.eval.experiment import (
    CellResult,
    _checkpoint_signature,
    _load_checkpoint,
    _write_checkpoint,
    run_experiment,
)
from repro.observability import (
    InMemorySink,
    JsonlSink,
    configure,
    get_tracer,
    validate_trace_file,
    validate_trace_lines,
)
from repro.robustness import guarded_solve

SRDA_PHASES = ("srda.validate", "srda.responses", "srda.solve", "srda.embed")


def span_names(sink):
    return [record["name"] for record in sink.spans]


class TestSRDATracing:
    def test_untraced_fit_records_nothing(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0).fit(X, y)
        assert model.tracer_ is None

    def test_traced_fit_emits_nested_phases(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0, trace=True).fit(X, y)
        sink = model.tracer_.sink
        names = span_names(sink)
        for phase in SRDA_PHASES:
            assert phase in names
        fit_record = sink.find("srda.fit")[0]
        assert names[-1] == "srda.fit"  # root closes (and emits) last
        assert fit_record["parent_id"] is None
        assert fit_record["attributes"]["alpha"] == 1.0
        assert fit_record["attributes"]["solver_used"] == model.solver_used_
        assert fit_record["attributes"]["shape"] == [60, 10]
        for phase in ("srda.validate", "srda.responses", "srda.embed"):
            assert sink.find(phase)[0]["parent_id"] == fit_record["span_id"]
        solve = sink.find("srda.solve")[0]
        assert solve["parent_id"] == fit_record["span_id"]
        assert solve["attributes"]["solver"] == model.solver_used_

    def test_normal_path_nests_guarded_solve(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0, solver="normal", trace=True).fit(X, y)
        sink = model.tracer_.sink
        guarded = sink.find("guarded_solve")
        assert guarded, "guarded_solve should join the estimator trace"
        solve = sink.find("srda.solve")[0]
        assert guarded[0]["parent_id"] == solve["span_id"]
        assert guarded[0]["attributes"]["solver"] == "cholesky"

    def test_block_lsqr_event_count_matches_iterations(
        self, small_classification
    ):
        X, y = small_classification
        model = SRDA(
            alpha=1.0, solver="lsqr", max_iter=12, tol=1e-8, trace=True
        ).fit(X, y)
        events = model.tracer_.sink.find("srda.solve")[0]["events"]
        iteration_events = [
            e for e in events if e["name"] == "block_lsqr.iteration"
        ]
        assert len(iteration_events) == max(model.lsqr_iterations_)

    def test_sequential_lsqr_event_count_matches_iterations(
        self, small_classification
    ):
        X, y = small_classification
        model = SRDA(
            alpha=1.0, solver="lsqr", block=False, max_iter=12, tol=1e-8,
            trace=True,
        ).fit(X, y)
        events = model.tracer_.sink.find("srda.solve")[0]["events"]
        iteration_events = [
            e for e in events if e["name"] == "lsqr.iteration"
        ]
        assert len(iteration_events) == sum(model.lsqr_iterations_)

    def test_lsqr_path_counts_flam(self, small_classification):
        X, y = small_classification
        model = SRDA(alpha=1.0, solver="lsqr", trace=True).fit(X, y)
        counter = model.tracer_.metrics.get_counter("srda.flam")
        assert counter is not None and counter.value > 0

    def test_tracing_does_not_change_the_fit(self, small_classification):
        X, y = small_classification
        for solver in ("normal", "lsqr"):
            plain = SRDA(alpha=1.0, solver=solver).fit(X, y)
            traced = SRDA(alpha=1.0, solver=solver, trace=True).fit(X, y)
            np.testing.assert_allclose(
                plain.components_, traced.components_
            )

    def test_sparse_traced_fit(self, sparse_classification):
        X_sparse, _, y = sparse_classification
        model = SRDA(alpha=1.0, trace=True).fit(X_sparse, y)
        sink = model.tracer_.sink
        assert "srda.fit" in span_names(sink)
        assert sink.find("srda.solve")[0]["attributes"]["solver"] == "lsqr"

    def test_jsonl_trace_validates(self, small_classification, tmp_path):
        X, y = small_classification
        path = tmp_path / "fit.jsonl"
        model = SRDA(alpha=1.0, solver="lsqr", trace=JsonlSink(path))
        model.fit(X, y)
        model.tracer_.close()  # final metrics snapshot + file close
        assert validate_trace_file(path) == []
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert any(r["type"] == "metrics" for r in records)
        solve = next(r for r in records if r["name"] == "srda.solve")
        assert any(
            e["name"].endswith(".iteration") for e in solve["events"]
        )

    def test_validate_operators_runs_contract_check(
        self, small_classification
    ):
        X, y = small_classification
        for solver in ("normal", "lsqr"):
            model = SRDA(
                alpha=1.0, solver=solver, validate_operators=True,
                trace=True,
            ).fit(X, y)
            checks = model.tracer_.sink.find("srda.contract_check")
            assert checks, f"no contract-check span on the {solver} path"
            attributes = checks[0]["attributes"]
            assert attributes["ok"] is True
            assert attributes["checks"] > 0


class TestKernelSRDATracing:
    def test_traced_fit_phases(self, small_classification):
        X, y = small_classification
        model = KernelSRDA(alpha=1.0, kernel="rbf", trace=True).fit(X, y)
        sink = model.tracer_.sink
        names = span_names(sink)
        for phase in (
            "kernel_srda.validate",
            "kernel_srda.responses",
            "kernel_srda.gram",
            "kernel_srda.solve",
            "kernel_srda.embed",
        ):
            assert phase in names
        root = sink.find("kernel_srda.fit")[0]
        assert root["parent_id"] is None
        assert root["attributes"]["kernel"] == "rbf"
        assert sink.find("kernel_srda.gram")[0]["attributes"][
            "gram_rows"
        ] == X.shape[0]

    def test_untraced_kernel_fit(self, small_classification):
        X, y = small_classification
        model = KernelSRDA(alpha=1.0).fit(X, y)
        assert model.tracer_ is None


class TestAlphaPathTracing:
    def test_one_bidiagonalization_many_replays(self, small_classification):
        X, y = small_classification
        sink = InMemorySink()
        alphas = [0.1, 1.0, 10.0]
        models = srda_alpha_path(X, y, alphas, max_iter=10, trace=sink)
        assert len(models) == len(alphas)
        assert len(sink.find("srda.alpha_path")) == 1
        assert len(sink.find("srda.bidiagonalize")) == 1
        replays = sink.find("srda.replay")
        assert [r["attributes"]["alpha"] for r in replays] == alphas
        root = sink.find("srda.alpha_path")[0]
        assert root["attributes"]["n_alphas"] == len(alphas)
        for replay in replays:
            assert replay["parent_id"] == root["span_id"]
            assert any(
                e["name"] == "shared_bidiagonalization.iteration"
                for e in replay["events"]
            )


class TestGuardedSolveTracing:
    def test_clean_solve_records_solver_and_counter(self, rng):
        sink = InMemorySink()
        configure(sink=sink)
        A = rng.standard_normal((12, 8))
        gram = A.T @ A + np.eye(8)
        result = guarded_solve(gram, rng.standard_normal(8), alpha=0.1)
        assert result.solver == "cholesky"
        record = sink.find("guarded_solve")[0]
        assert record["attributes"]["solver"] == "cholesky"
        assert record["attributes"]["fallback_steps"] == 0
        counters = get_tracer().metrics.snapshot()["counters"]
        assert counters["guarded_solve.cholesky"] == 1.0

    def test_fallback_decisions_become_events(self, rng):
        sink = InMemorySink()
        configure(sink=sink)
        gram = np.zeros((5, 5))  # singular: forces the jitter chain
        result = guarded_solve(gram, rng.standard_normal(5), alpha=0.0)
        assert result.fallbacks
        record = sink.find("guarded_solve")[0]
        fallback_events = [
            e for e in record["events"]
            if e["name"] == "guarded_solve.fallback"
        ]
        assert len(fallback_events) == len(result.fallbacks)
        assert record["attributes"]["fallback_steps"] == len(
            result.fallbacks
        )
        counters = get_tracer().metrics.snapshot()["counters"]
        assert counters[f"guarded_solve.{result.solver}"] == 1.0

    def test_untraced_guarded_solve_stays_silent(self, rng):
        A = rng.standard_normal((10, 6))
        result = guarded_solve(A.T @ A, rng.standard_normal(6), alpha=0.5)
        assert result.solver == "cholesky"  # no tracer configured — no-op


class TestDatasetCacheCounters:
    def test_hit_miss_corrupt_counters(self, rng, tmp_path):
        configure(sink=InMemorySink())
        X = rng.standard_normal((12, 4))
        y = np.arange(12) % 3
        builds = []

        def builder():
            builds.append(1)
            return Dataset(name="toy", X=X, y=y, metadata={})

        path = tmp_path / "toy.npz"
        cached(builder, path)  # miss: builds and saves
        cached(builder, path)  # hit
        path.write_bytes(b"garbage")  # corrupt: regenerate
        cached(builder, path)
        assert len(builds) == 2
        counters = get_tracer().metrics.snapshot()["counters"]
        assert counters["dataset_cache.misses"] == 2.0
        assert counters["dataset_cache.hits"] == 1.0
        assert counters["dataset_cache.corrupt"] == 1.0


class _Majority:
    """Trivial estimator: predicts the most common training label."""

    def fit(self, X, y):
        self._label = int(np.bincount(np.asarray(y)).argmax())
        return self

    def predict(self, X):
        return np.full(X.shape[0], self._label)


class _Boom:
    def fit(self, X, y):
        raise ValueError("injected fit failure")

    def predict(self, X):  # pragma: no cover - fit always raises
        return np.zeros(X.shape[0])


@pytest.fixture
def toy_dataset(rng):
    n_per_class, n_classes = 10, 3
    X = rng.standard_normal((n_per_class * n_classes, 4))
    y = np.repeat(np.arange(n_classes), n_per_class)
    return Dataset(name="toy", X=X, y=y, metadata={})


class TestExperimentTracing:
    def test_failure_type_recorded_and_traced(self, toy_dataset):
        sink = InMemorySink()
        configure(sink=sink)
        result = run_experiment(
            toy_dataset,
            {"Majority": _Majority, "Boom": _Boom},
            train_sizes=[3],
            n_splits=1,
            continue_on_error=True,
        )
        boom = result.cell("Boom", "3")
        assert boom.failed
        assert boom.failure_type == "ValueError"
        assert "injected fit failure" in boom.failure
        good = result.cell("Majority", "3")
        assert not good.failed and good.failure_type is None

        assert len(sink.find("experiment.run")) == 1
        assert len(sink.find("experiment.split")) == 1
        fits = sink.find("experiment.fit")
        assert {r["attributes"]["algorithm"] for r in fits} == {
            "Majority",
            "Boom",
        }
        failures = [
            e
            for record in sink.spans
            for e in record["events"]
            if e["name"] == "experiment.failure"
        ]
        assert len(failures) == 1
        assert failures[0]["attributes"]["algorithm"] == "Boom"
        assert failures[0]["attributes"]["failure_type"] == "ValueError"

        lines = [json.dumps(record) for record in sink.spans]
        assert validate_trace_lines(lines) == []

    def test_memory_budget_failure_type(self, toy_dataset):
        result = run_experiment(
            toy_dataset,
            {"Majority": _Majority},
            train_sizes=[3],
            n_splits=1,
            memory_budget_bytes=1.0,  # nothing fits in one byte
        )
        cell = result.cell("Majority", "3")
        assert cell.failed
        assert cell.failure_type == "MemoryBudgetExceeded"

    def test_checkpoint_round_trips_failure_type(self, tmp_path):
        path = tmp_path / "sweep.json"
        signature = _checkpoint_signature("toy", ["A"], ["3"], 2, 0)
        cells = {("A", "3"): CellResult()}
        cells[("A", "3")].record_failure("ValueError: boom", "ValueError")
        _write_checkpoint(path, signature, {"3": 1}, cells)

        restored = {("A", "3"): CellResult()}
        completed = _load_checkpoint(path, signature, restored)
        assert completed == {"3": 1}
        assert restored[("A", "3")].failure == "ValueError: boom"
        assert restored[("A", "3")].failure_type == "ValueError"

    def test_legacy_checkpoint_without_failure_type(self, tmp_path):
        path = tmp_path / "sweep.json"
        signature = _checkpoint_signature("toy", ["A"], ["3"], 2, 0)
        state = {
            "version": 1,
            "signature": signature,
            "completed_splits": {"3": 1},
            "cells": {
                "3": {
                    "A": {
                        "errors": [],
                        "fit_seconds": [],
                        "failure": "something broke",
                        "retries": 0,
                    }
                }
            },
        }
        path.write_text(json.dumps(state))
        restored = {("A", "3"): CellResult()}
        _load_checkpoint(path, signature, restored)
        assert restored[("A", "3")].failure == "something broke"
        assert restored[("A", "3")].failure_type is None
