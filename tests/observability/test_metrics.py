"""MetricsRegistry instruments: counters, gauges, histograms."""

import pytest

from repro.observability import MetricsRegistry


class TestCounter:
    def test_add_defaults_to_one(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_negative_amount_rejected(self):
        counter = MetricsRegistry().counter("hits")
        with pytest.raises(ValueError, match="only go up"):
            counter.add(-1)
        assert counter.value == 0.0

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("y")


class TestGauge:
    def test_set_moves_both_directions(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.set(5.0)
        assert gauge.value == 5.0
        gauge.set(-2)
        assert gauge.value == -2.0


class TestHistogram:
    def test_observe_and_summary(self):
        histogram = MetricsRegistry().histogram("timings")
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3.0
        assert summary["sum"] == 15.0
        assert summary["min"] == 2.0
        assert summary["max"] == 8.0
        assert summary["mean"] == 5.0
        assert summary["last"] == 5.0

    def test_empty_summary_uses_zeros(self):
        summary = MetricsRegistry().histogram("empty").summary()
        assert summary["count"] == 0.0
        assert summary["min"] == 0.0
        assert summary["max"] == 0.0
        assert summary["mean"] == 0.0


class TestRegistry:
    def test_get_counter_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.get_counter("absent") is None
        registry.counter("present").add()
        assert registry.get_counter("present").value == 1.0

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2.0}
        assert snapshot["gauges"] == {"g": 7.0}
        assert snapshot["histograms"]["h"]["count"] == 1.0
        # A snapshot is a copy: later updates do not mutate it.
        registry.counter("c").add()
        assert snapshot["counters"] == {"c": 2.0}

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").add()
        registry.reset()
        assert registry.get_counter("c") is None
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
