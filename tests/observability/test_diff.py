"""Tests for histogram percentiles and the trace-diff tool."""

import json

import pytest

from repro.observability import (
    Histogram,
    SpanStats,
    diff_traces,
    format_diff,
    format_profile,
)
from repro.observability.diff import main as diff_main


def span(name, duration, status="ok"):
    return {"type": "span", "name": name, "duration": duration, "status": status}


class TestHistogramPercentiles:
    def test_percentile_within_bucket_error(self):
        h = Histogram("latency")
        values = [0.001 * (i + 1) for i in range(1000)]
        for v in values:
            h.observe(v)
        # Log-bucketing with growth 1.2 bounds the relative error of any
        # percentile estimate by ~10%.
        for q, exact in [(50, 0.5005), (95, 0.9505), (99, 0.9905)]:
            assert h.percentile(q) == pytest.approx(exact, rel=0.1)

    def test_percentile_clamped_to_observed_range(self):
        h = Histogram("latency")
        h.observe(3.0)
        assert h.percentile(50) == 3.0
        assert h.percentile(99) == 3.0

    def test_nonpositive_values_return_minimum(self):
        h = Histogram("latency")
        h.observe(0.0)
        h.observe(-1.0)
        h.observe(5.0)
        assert h.percentile(50) == -1.0

    def test_empty_histogram(self):
        assert Histogram("latency").percentile(95) == 0.0

    @pytest.mark.parametrize("bad", [-1, 101])
    def test_invalid_quantile_rejected(self, bad):
        with pytest.raises(ValueError, match="percentile"):
            Histogram("latency").percentile(bad)

    def test_summary_includes_percentiles(self):
        h = Histogram("latency")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        summary = h.summary()
        assert {"p50", "p95", "p99"} <= set(summary)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_profile_table_has_percentile_columns(self):
        records = [span("solve", 0.01 * (i + 1)) for i in range(20)]
        table = format_profile(records)
        assert "p50" in table and "p95" in table and "p99" in table


class TestDiffTraces:
    def test_statuses(self):
        a = [span("kept", 1.0), span("gone", 2.0)]
        b = [span("kept", 1.5), span("new", 0.5)]
        diff = diff_traces(a, b)
        by_name = {entry.name: entry for entry in diff.spans}
        assert by_name["kept"].status == "common"
        assert by_name["gone"].status == "removed"
        assert by_name["new"].status == "added"

    def test_sorted_by_absolute_delta(self):
        a = [span("small", 1.0), span("big", 1.0)]
        b = [span("small", 1.1), span("big", 9.0)]
        diff = diff_traces(a, b)
        assert diff.spans[0].name == "big"

    def test_total_ratio(self):
        diff = diff_traces([span("s", 2.0)], [span("s", 4.0)])
        assert diff.spans[0].total_ratio == pytest.approx(2.0)
        added = diff_traces([], [span("s", 1.0)])
        assert added.spans[0].total_ratio == float("inf")

    def test_counters_from_last_metrics_record(self):
        a = [
            {"type": "metrics", "counters": {"flam": 10.0}},
            {"type": "metrics", "counters": {"flam": 25.0}},
        ]
        b = [{"type": "metrics", "counters": {"flam": 30.0}}]
        diff = diff_traces(a, b)
        assert diff.counters_a == {"flam": 25.0}
        assert diff.counters_b == {"flam": 30.0}
        assert diff.counter_names() == ["flam"]

    def test_format_mentions_spans_and_counters(self):
        diff = diff_traces(
            [span("solve", 1.0), {"type": "metrics", "counters": {"c": 1}}],
            [span("solve", 2.0), {"type": "metrics", "counters": {"c": 3}}],
        )
        text = format_diff(diff, "before", "after")
        assert "solve" in text
        assert "c = 1 > 3 (+2)" in text

    def test_empty_traces(self):
        text = format_diff(diff_traces([], []))
        assert "no spans" in text


class TestDiffCli:
    def write_trace(self, path, records):
        path.write_text(
            "\n".join(json.dumps(record) for record in records) + "\n"
        )

    def test_happy_path(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        self.write_trace(a, [span("solve", 1.0)])
        self.write_trace(b, [span("solve", 3.0)])
        assert diff_main([str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "solve" in out

    def test_usage_error(self, capsys):
        assert diff_main(["only-one.jsonl"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        self.write_trace(a, [span("solve", 1.0)])
        assert diff_main([str(a), str(tmp_path / "nope.jsonl")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_skips_malformed_lines(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text('{"type": "span", "name": "s", "duration": 1.0}\n{oops\n')
        self.write_trace(b, [span("s", 2.0)])
        assert diff_main([str(a), str(b)]) == 0


class TestSpanStatsPercentile:
    def test_spanstats_percentile_tracks_histogram(self):
        stats = SpanStats("s")
        for v in (0.1, 0.2, 0.4):
            stats.add(v, 0, False)
        assert stats.percentile(50) == pytest.approx(0.2, rel=0.15)
