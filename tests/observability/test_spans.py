"""Span/tracer semantics: nesting, close-once, flush-on-root, dispatch."""

import json

import pytest

from repro import observability
from repro.observability import (
    DISABLED_TRACER,
    InMemorySink,
    Sink,
    Tracer,
    configure,
    current_tracer,
    get_tracer,
    resolve_tracer,
    trace_span,
    validate_trace_lines,
)


def make_tracer():
    sink = InMemorySink()
    return Tracer(sink=sink), sink


class TestSpanRecords:
    def test_root_span_record_schema(self):
        tracer, sink = make_tracer()
        with tracer.span("root", alpha=1.5) as span:
            span.set_attribute("extra", "value")
            span.add_event("tick", itn=1)
        assert len(sink.spans) == 1
        record = sink.spans[0]
        assert record["type"] == "span"
        assert record["name"] == "root"
        assert record["parent_id"] is None
        assert record["depth"] == 0
        assert record["trace_id"] == record["span_id"]
        assert record["status"] == "ok"
        assert record["attributes"] == {"alpha": 1.5, "extra": "value"}
        assert record["events"] == [record["events"][0]]
        assert record["events"][0]["name"] == "tick"
        assert record["events"][0]["attributes"] == {"itn": 1}
        assert record["duration"] >= 0.0
        assert record["end"] >= record["start"]

    def test_record_passes_schema_validator(self):
        tracer, sink = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        lines = [json.dumps(record) for record in sink.spans]
        assert validate_trace_lines(lines) == []

    def test_nesting_parent_ids_and_depth(self):
        tracer, sink = make_tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                with tracer.span("c") as c:
                    pass
        # Children emit before parents (spans emit on close).
        assert [r["name"] for r in sink.spans] == ["c", "b", "a"]
        rc, rb, ra = sink.spans
        assert ra["parent_id"] is None
        assert rb["parent_id"] == a.span_id
        assert rc["parent_id"] == b.span_id
        assert (ra["depth"], rb["depth"], rc["depth"]) == (0, 1, 2)
        assert ra["trace_id"] == rb["trace_id"] == rc["trace_id"]
        assert c.trace_id == a.trace_id

    def test_siblings_share_trace_and_parent(self):
        tracer, sink = make_tracer()
        with tracer.span("root") as root:
            with tracer.span("left"):
                pass
            with tracer.span("right"):
                pass
        left, right = sink.find("left")[0], sink.find("right")[0]
        assert left["parent_id"] == right["parent_id"] == root.span_id
        assert left["trace_id"] == right["trace_id"] == root.trace_id
        assert left["span_id"] != right["span_id"]

    def test_separate_roots_get_separate_traces(self):
        tracer, sink = make_tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = sink.spans
        assert first["trace_id"] != second["trace_id"]
        assert first["parent_id"] is None and second["parent_id"] is None


class TestCloseSemantics:
    def test_exception_closes_every_span_exactly_once(self):
        tracer, sink = make_tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert [r["name"] for r in sink.spans] == ["inner", "outer"]
        for record in sink.spans:
            assert record["status"] == "error"
            assert record["attributes"]["error_type"] == "RuntimeError"
            assert record["attributes"]["error_message"] == "boom"
        # Root closed (via the exception) => the sink was flushed.
        assert sink.flush_count >= 1

    def test_manual_double_exit_emits_once(self):
        tracer, sink = make_tracer()
        context = tracer.span("once")
        context.__enter__()
        context.__exit__(None, None, None)
        context.__exit__(None, None, None)
        assert len(sink.find("once")) == 1

    def test_error_message_truncated(self):
        tracer, sink = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("long"):
                raise ValueError("x" * 500)
        message = sink.spans[0]["attributes"]["error_message"]
        assert len(message) == 200

    def test_root_close_flushes_sink(self):
        tracer, sink = make_tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            assert sink.flush_count == 0  # child close does not flush
        assert sink.flush_count == 1

    def test_stack_restored_after_exception(self):
        tracer, sink = make_tracer()
        with pytest.raises(KeyError):
            with tracer.span("failing"):
                raise KeyError("k")
        assert tracer.current_span() is None
        with tracer.span("after"):
            pass
        assert sink.find("after")[0]["parent_id"] is None


class TestDisabledTracer:
    def test_span_is_noop(self):
        with DISABLED_TRACER.span("nothing") as span:
            span.set_attribute("k", "v")
            span.add_event("e")
        assert DISABLED_TRACER.current_span() is None

    def test_iteration_hook_is_none(self):
        assert DISABLED_TRACER.iteration_hook() is None

    def test_event_is_noop(self):
        DISABLED_TRACER.event("nothing", k=1)  # must not raise

    def test_enabled_tracer_without_open_span_has_no_hook(self):
        tracer, _ = make_tracer()
        assert tracer.iteration_hook() is None


class TestCurrentSpanAndEvents:
    def test_current_span_tracks_innermost(self):
        tracer, _ = make_tracer()
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_event_attaches_to_current_span(self):
        tracer, sink = make_tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("marker", step="a")
        inner = sink.find("inner")[0]
        outer = sink.find("outer")[0]
        assert [e["name"] for e in inner["events"]] == ["marker"]
        assert outer["events"] == []

    def test_iteration_hook_binds_explicit_span(self):
        tracer, sink = make_tracer()

        class FakeEvent:
            solver = "lsqr"

            def to_attributes(self):
                return {"solver": "lsqr", "itn": 1}

        with tracer.span("outer") as outer:
            hook = tracer.iteration_hook(outer)
            with tracer.span("inner"):
                hook(FakeEvent())
        outer_record = sink.find("outer")[0]
        assert [e["name"] for e in outer_record["events"]] == [
            "lsqr.iteration"
        ]
        assert sink.find("inner")[0]["events"] == []


class TestGlobalConfigureAndResolve:
    def test_global_tracer_disabled_by_default(self):
        configure(enabled=False)
        assert not get_tracer().enabled
        with trace_span("nothing"):
            pass  # no-op, nothing recorded anywhere

    def test_configure_installs_and_trace_span_records(self):
        sink = InMemorySink()
        configure(sink=sink)
        with trace_span("global.root", key="v"):
            pass
        assert sink.find("global.root")[0]["attributes"] == {"key": "v"}

    def test_configure_disabled_restores_default(self):
        configure(sink=InMemorySink())
        assert get_tracer().enabled
        configure(enabled=False)
        assert get_tracer() is DISABLED_TRACER

    def test_local_tracer_with_open_span_wins(self):
        global_sink = InMemorySink()
        configure(sink=global_sink)
        local, local_sink = make_tracer()
        assert current_tracer() is get_tracer()
        with local.span("local.root"):
            assert current_tracer() is local
            with trace_span("nested.via.current"):
                pass
        assert current_tracer() is get_tracer()
        assert local_sink.find("nested.via.current")
        assert not global_sink.find("nested.via.current")

    def test_resolve_tracer_dispatch(self):
        assert resolve_tracer(None) is observability.get_tracer()
        assert resolve_tracer(False) is DISABLED_TRACER

        fresh = resolve_tracer(True)
        assert fresh.enabled
        assert isinstance(fresh.sink, InMemorySink)
        assert resolve_tracer(True) is not fresh  # a new tracer each time

        tracer, _ = make_tracer()
        assert resolve_tracer(tracer) is tracer

        sink = InMemorySink()
        wrapped = resolve_tracer(sink)
        assert wrapped.enabled and wrapped.sink is sink
        assert isinstance(wrapped, Tracer)

        with pytest.raises(TypeError, match="trace must be"):
            resolve_tracer(123)

    def test_resolve_tracer_none_honours_configure(self):
        sink = InMemorySink()
        installed = configure(sink=sink)
        assert resolve_tracer(None) is installed

    def test_null_sink_accepts_everything(self):
        tracer = Tracer(sink=Sink())
        with tracer.span("into.the.void"):
            pass
        tracer.close()


class TestFlushAndClose:
    def test_flush_emits_metrics_snapshot(self):
        tracer, sink = make_tracer()
        tracer.metrics.counter("things").add(3)
        tracer.flush()
        assert len(sink.metrics) == 1
        record = sink.metrics[0]
        assert record["type"] == "metrics"
        assert record["counters"] == {"things": 3.0}
        assert "time" in record
        assert validate_trace_lines([json.dumps(record)]) == []

    def test_flush_without_metrics(self):
        tracer, sink = make_tracer()
        tracer.flush(emit_metrics=False)
        assert sink.metrics == []
        assert sink.flush_count == 1

    def test_disabled_flush_emits_nothing(self):
        sink = InMemorySink()
        tracer = Tracer(sink=sink, enabled=False)
        tracer.flush()
        assert sink.metrics == []
