"""Per-iteration solver hooks: firing counts match reported iterations."""

import numpy as np
import pytest

from repro.linalg.block_lsqr import SharedBidiagonalization, block_lsqr
from repro.linalg.lsqr import lsqr
from repro.linalg.operators import as_operator
from repro.observability import (
    InMemorySink,
    IterationEvent,
    IterationRecorder,
    Tracer,
)


@pytest.fixture
def problem(rng):
    A = rng.standard_normal((40, 15))
    B = rng.standard_normal((40, 3))
    return as_operator(A), B


class TestIterationEvent:
    def test_to_attributes_is_json_friendly(self):
        event = IterationEvent(
            solver="block_lsqr",
            itn=4,
            r2norm=np.float64(1.5),
            arnorm=np.float64(0.25),
            istop=np.int64(7),
            active=np.array([0, 2]),
        )
        attributes = event.to_attributes()
        assert attributes == {
            "solver": "block_lsqr",
            "itn": 4,
            "r2norm": 1.5,
            "arnorm": 0.25,
            "istop": 7,
            "active": [0, 2],
        }
        assert isinstance(attributes["istop"], int)
        assert all(isinstance(j, int) for j in attributes["active"])

    def test_single_rhs_event_omits_active(self):
        event = IterationEvent(solver="lsqr", itn=1, r2norm=1.0, arnorm=0.1)
        assert "active" not in event.to_attributes()


class TestLsqrHook:
    def test_count_equals_reported_iterations(self, problem):
        op, B = problem
        recorder = IterationRecorder()
        result = lsqr(op, B[:, 0], damp=0.5, on_iteration=recorder)
        assert result.itn > 0
        assert len(recorder) == result.itn
        assert [e.itn for e in recorder.events] == list(
            range(1, result.itn + 1)
        )
        assert all(e.solver == "lsqr" for e in recorder.events)
        # The final event carries the stop decision.
        assert recorder.last.istop == result.istop
        assert all(e.istop == 0 for e in recorder.events[:-1])

    def test_count_when_capped_by_iter_lim(self, problem):
        op, B = problem
        recorder = IterationRecorder()
        result = lsqr(
            op, B[:, 0], damp=0.5, atol=0.0, btol=0.0, iter_lim=4,
            on_iteration=recorder,
        )
        assert result.itn == 4
        assert len(recorder) == 4

    def test_none_hook_changes_nothing(self, problem):
        op, B = problem
        recorder = IterationRecorder()
        with_hook = lsqr(op, B[:, 0], damp=0.5, on_iteration=recorder)
        without = lsqr(op, B[:, 0], damp=0.5, on_iteration=None)
        np.testing.assert_allclose(with_hook.x, without.x)
        assert with_hook.itn == without.itn

    def test_hook_exception_propagates(self, problem):
        op, B = problem

        def hook(event):
            raise RuntimeError("observer failed")

        with pytest.raises(RuntimeError, match="observer failed"):
            lsqr(op, B[:, 0], damp=0.5, on_iteration=hook)


class TestBlockLsqrHook:
    def test_count_equals_max_column_iterations(self, problem):
        op, B = problem
        recorder = IterationRecorder()
        result = block_lsqr(op, B, damp=0.5, on_iteration=recorder)
        assert len(recorder) == int(np.max(result.itn))
        assert all(e.solver == "block_lsqr" for e in recorder.events)
        # `active` names original RHS columns and only ever shrinks.
        for event in recorder.events:
            assert event.active is not None
            assert set(event.active) <= set(range(B.shape[1]))
        sizes = [len(e.active) for e in recorder.events]
        assert sizes == sorted(sizes, reverse=True)

    def test_finite_norms_even_on_final_iteration(self, problem):
        op, B = problem
        recorder = IterationRecorder()
        block_lsqr(
            op, B, damp=0.5, atol=0.0, btol=0.0, iter_lim=6,
            on_iteration=recorder,
        )
        for event in recorder.events:
            assert np.isfinite(event.r2norm)
            assert np.isfinite(event.arnorm)


class TestSharedBidiagonalizationHook:
    def test_replay_fires_per_block_iteration(self, problem):
        op, B = problem
        basis = SharedBidiagonalization(op, B, iter_lim=8)
        recorder = IterationRecorder()
        result = basis.solve(damp=0.7, on_iteration=recorder)
        assert len(recorder) == int(np.max(result.itn))
        assert all(
            e.solver == "shared_bidiagonalization" for e in recorder.events
        )


class TestTracerHookIntegration:
    def test_span_collects_one_event_per_iteration(self, problem):
        op, B = problem
        sink = InMemorySink()
        tracer = Tracer(sink=sink)
        with tracer.span("solve") as span:
            result = lsqr(
                op, B[:, 0], damp=0.5,
                on_iteration=tracer.iteration_hook(span),
            )
        events = sink.find("solve")[0]["events"]
        assert len(events) == result.itn
        assert all(e["name"] == "lsqr.iteration" for e in events)
        assert events[-1]["attributes"]["itn"] == result.itn
