"""Unit tests for ShardedOperator: layout, parity, faults, lifecycle."""

import numpy as np
import pytest

from repro.analysis.contracts import verify_operator
from repro.linalg.block_lsqr import block_lsqr
from repro.linalg.operators import (
    DenseOperator,
    FaultyOperator,
    InjectedFaultError,
    as_operator,
)
from repro.linalg import kernels
from repro.linalg.sparse import CSRMatrix
from repro.parallel import (
    ShardedOperator,
    ThreadBackend,
    csr_row_slice,
    default_shard_count,
    nnz_shard_bounds,
    shard_bounds,
)

pytestmark = pytest.mark.parallel


def random_csr(rng, m=60, n=17, density=0.3):
    dense = rng.standard_normal((m, n))
    dense[rng.random((m, n)) > density] = 0.0
    return CSRMatrix.from_dense(dense), dense


class TestLayout:
    def test_bounds_tile_the_rows(self):
        bounds = shard_bounds(100, 7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert stop == start

    def test_bounds_clamped_to_rows(self):
        assert len(shard_bounds(3, 8)) == 3

    def test_bounds_reject_nonpositive(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_bounds(10, 0)

    def test_default_count_is_pure_in_m(self):
        assert default_shard_count(10) == 1
        assert default_shard_count(512) >= 2
        assert default_shard_count(10**7) <= 8
        # Same m, same layout — regardless of how often it is asked.
        assert default_shard_count(4096) == default_shard_count(4096)

    def test_csr_row_slice_matches_dense_slice(self, rng):
        matrix, dense = random_csr(rng)
        block = csr_row_slice(matrix, 13, 41)
        np.testing.assert_array_equal(block.to_dense(), dense[13:41])

    def test_csr_row_slice_rejects_bad_range(self, rng):
        matrix, _ = random_csr(rng)
        with pytest.raises(ValueError, match="row range"):
            csr_row_slice(matrix, 10, 5)


class TestCSRParity:
    """CSR products must be bitwise identical to the unsharded kernels."""

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 8])
    def test_bitwise_products(self, rng, n_shards):
        matrix, _ = random_csr(rng)
        v = rng.standard_normal(matrix.shape[1])
        u = rng.standard_normal(matrix.shape[0])
        B = rng.standard_normal((matrix.shape[1], 4))
        U = rng.standard_normal((matrix.shape[0], 4))
        direct = as_operator(matrix)
        with ShardedOperator(matrix, n_shards=n_shards) as op:
            assert np.array_equal(op.matvec(v), direct.matvec(v))
            assert np.array_equal(op.rmatvec(u), direct.rmatvec(u))
            assert np.array_equal(op.matmat(B), direct.matmat(B))
            # rmatmat folds per-shard partials: deterministic, but a
            # different association than the unsharded product.
            np.testing.assert_allclose(
                op.rmatmat(U), direct.rmatmat(U), rtol=1e-12, atol=1e-14
            )

    def test_thread_backend_bitwise_equals_serial(self, rng):
        matrix, _ = random_csr(rng)
        U = rng.standard_normal((matrix.shape[0], 3))
        u = rng.standard_normal(matrix.shape[0])
        with ShardedOperator(matrix, n_shards=4, backend="serial") as a:
            with ShardedOperator(
                matrix, n_shards=4, backend="thread", n_jobs=4
            ) as b:
                assert np.array_equal(a.rmatvec(u), b.rmatvec(u))
                assert np.array_equal(a.rmatmat(U), b.rmatmat(U))

    @pytest.mark.parametrize(
        "kernel_backend",
        [
            "reference",
            pytest.param(
                "compiled",
                marks=pytest.mark.skipif(
                    not kernels.compiled_available(),
                    reason="compiled kernel extension not built",
                ),
            ),
        ],
    )
    def test_bitwise_products_under_each_kernel_backend(
        self, rng, kernel_backend
    ):
        """Sharded products stay bitwise equal to the direct operator
        whichever kernel backend the shard workers run — the
        use_backend ContextVar propagates into thread workers."""
        matrix, _ = random_csr(rng)
        v = rng.standard_normal(matrix.shape[1])
        u = rng.standard_normal(matrix.shape[0])
        B = rng.standard_normal((matrix.shape[1], 4))
        direct = as_operator(matrix)
        reference = (
            direct.matvec(v), direct.rmatvec(u), direct.matmat(B),
        )
        with kernels.use_backend(kernel_backend):
            with ShardedOperator(
                matrix, n_shards=3, backend="thread", n_jobs=3
            ) as op:
                results = (op.matvec(v), op.rmatvec(u), op.matmat(B))
        for got, want in zip(results, reference):
            assert got.tobytes() == want.tobytes()


class TestDenseParity:
    @pytest.mark.parametrize("n_shards", [2, 4, 7])
    def test_products_close_to_direct(self, rng, n_shards):
        A = rng.standard_normal((50, 9))
        direct = as_operator(A)
        v = rng.standard_normal(9)
        u = rng.standard_normal(50)
        with ShardedOperator(A, n_shards=n_shards) as op:
            # Dense kernels go through BLAS, whose reduction order can
            # depend on the block's row count: tight tolerance, not
            # bitwise (unlike the handwritten CSR kernels).
            np.testing.assert_allclose(
                op.matvec(v), direct.matvec(v), rtol=1e-12, atol=1e-14
            )
            np.testing.assert_allclose(
                op.rmatvec(u), direct.rmatvec(u), rtol=1e-12, atol=1e-14
            )

    def test_backends_agree_bitwise_at_fixed_layout(self, rng):
        A = rng.standard_normal((50, 9))
        v = rng.standard_normal(9)
        u = rng.standard_normal(50)
        with ShardedOperator(A, n_shards=7, backend="serial") as a:
            with ShardedOperator(A, n_shards=7, backend="thread", n_jobs=4) as b:
                assert np.array_equal(a.matvec(v), b.matvec(v))
                assert np.array_equal(a.rmatvec(u), b.rmatvec(u))


class TestContract:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_verify_operator_csr(self, rng, backend):
        matrix, _ = random_csr(rng)
        with ShardedOperator(
            matrix, n_shards=3, backend=backend, n_jobs=2
        ) as op:
            report = verify_operator(op, rng=0)
        assert report.ok

    def test_verify_operator_dense(self, rng):
        A = rng.standard_normal((40, 11))
        with ShardedOperator(A, n_shards=4) as op:
            report = verify_operator(op, rng=0)
        assert report.ok

    @pytest.mark.slow
    def test_verify_operator_process_backend(self, rng):
        matrix, _ = random_csr(rng, m=32, n=9)
        with ShardedOperator(
            matrix, n_shards=2, backend="process", n_jobs=2
        ) as op:
            report = verify_operator(op, rng=0)
        assert report.ok


class TestOpsMode:
    def test_row_blocks_stack(self, rng):
        A = rng.standard_normal((30, 6))
        ops = [DenseOperator(A[:12]), DenseOperator(A[12:])]
        with ShardedOperator(ops) as op:
            assert op.shape == (30, 6)
            assert op.shard_layout == [(0, 12), (12, 30)]
            v = rng.standard_normal(6)
            np.testing.assert_allclose(op.matvec(v), A @ v, rtol=1e-13)

    def test_mismatched_columns_rejected(self, rng):
        ops = [
            DenseOperator(rng.standard_normal((5, 4))),
            DenseOperator(rng.standard_normal((5, 3))),
        ]
        with pytest.raises(ValueError, match="column count"):
            ShardedOperator(ops)

    def test_process_backend_rejected(self, rng):
        ops = [DenseOperator(rng.standard_normal((5, 4)))]
        with pytest.raises(ValueError, match="process"):
            ShardedOperator(ops, backend="process", n_jobs=2)

    def test_nan_fault_in_one_shard_sets_failure_istop(self, rng):
        A = rng.standard_normal((40, 8))
        faulty = FaultyOperator(
            DenseOperator(A[20:]), fail_every=1, mode="nan"
        )
        ops = [DenseOperator(A[:20]), faulty]
        B = rng.standard_normal((40, 2))
        with ShardedOperator(ops, backend="thread", n_jobs=2) as op:
            result = block_lsqr(op, B, iter_lim=10)
        assert result.any_failed
        assert set(result.istop[result.failed]) <= {8, 9}
        assert faulty.n_faults_injected > 0

    def test_raise_fault_propagates_without_hanging(self, rng):
        A = rng.standard_normal((40, 8))
        ops = [
            DenseOperator(A[:20]),
            FaultyOperator(DenseOperator(A[20:]), fail_at={0}, mode="raise"),
        ]
        B = rng.standard_normal((40, 2))
        with ShardedOperator(ops, backend="thread", n_jobs=2) as op:
            with pytest.raises(InjectedFaultError):
                block_lsqr(op, B, iter_lim=10)
            # The pool survived the fault: the healthy shards still run.
            v = rng.standard_normal(8)
            assert np.isfinite(op.matvec(v)[:20]).all()


class TestLifecycle:
    def test_single_shard_is_passthrough(self, rng):
        matrix, _ = random_csr(rng, m=20)
        op = ShardedOperator(matrix, n_shards=1)
        assert op.n_shards == 1
        v = rng.standard_normal(matrix.shape[1])
        assert np.array_equal(
            op.matvec(v), as_operator(matrix).matvec(v)
        )
        op.close()

    def test_close_is_idempotent(self, rng):
        matrix, _ = random_csr(rng, m=20)
        op = ShardedOperator(matrix, n_shards=2)
        op.close()
        op.close()

    def test_caller_supplied_backend_not_closed(self, rng):
        matrix, _ = random_csr(rng, m=20)
        backend = ThreadBackend(n_workers=2)
        op = ShardedOperator(matrix, n_shards=2, backend=backend)
        op.close()
        # Still usable: close() must not have shut the caller's pool.
        assert backend.map(lambda i: i + 1, [1, 2]) == [2, 3]
        backend.close()

    def test_owned_backend_closed_with_operator(self, rng):
        matrix, _ = random_csr(rng, m=20)
        op = ShardedOperator(matrix, n_shards=2, backend="thread", n_jobs=2)
        backend = op.backend
        op.close()
        assert backend._executor is None

    def test_structural_operator_rejected(self, rng):
        from repro.linalg.operators import ScaledOperator

        scaled = ScaledOperator(DenseOperator(rng.standard_normal((6, 3))), 2.0)
        with pytest.raises(TypeError, match="ShardedOperator"):
            ShardedOperator(scaled)


def skewed_csr(rng, m=2400, n=60, heavy_nnz=40, light_nnz=2):
    """CSR whose first 10% of rows carry ~90% of the non-zeros.

    Row nnz is small next to any realistic per-shard nnz target, so a
    balanced contiguous partition with max/min ratio <= 1.1 exists.
    """
    ks = np.where(np.arange(m) < m // 10, heavy_nnz, light_nnz)
    indptr = np.zeros(m + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(ks)
    indices = np.concatenate(
        [rng.choice(n, size=int(k), replace=False) for k in ks]
    ).astype(np.int64)
    data = rng.standard_normal(int(indptr[-1]))
    return CSRMatrix(data, indices, indptr, (m, n))


class TestNnzShardBounds:
    def test_bounds_tile_rows_and_are_strictly_increasing(self, rng):
        matrix = skewed_csr(rng)
        for n_shards in (2, 3, 5, 8):
            bounds = nnz_shard_bounds(matrix.indptr, n_shards)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == matrix.shape[0]
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            assert all(stop > start for start, stop in bounds)

    def test_skewed_fixture_balances_within_ten_percent(self, rng):
        matrix = skewed_csr(rng)
        for n_shards in (2, 3, 4, 8):
            bounds = nnz_shard_bounds(matrix.indptr, n_shards)
            nnzs = [
                int(matrix.indptr[stop] - matrix.indptr[start])
                for start, stop in bounds
            ]
            assert max(nnzs) / min(nnzs) <= 1.1

    def test_row_splits_would_not_balance_this_fixture(self, rng):
        # The motivating contrast: equal-row splits put every heavy row
        # in the first shard.
        matrix = skewed_csr(rng)
        bounds = shard_bounds(matrix.shape[0], 4)
        nnzs = [
            int(matrix.indptr[stop] - matrix.indptr[start])
            for start, stop in bounds
        ]
        assert max(nnzs) / min(nnzs) > 3

    def test_uniform_nnz_reduces_to_row_splits(self):
        indptr = np.arange(0, 505, 5, dtype=np.int64)  # 100 rows x 5 nnz
        assert nnz_shard_bounds(indptr, 4) == shard_bounds(100, 4)

    def test_single_shard_and_empty_fall_back(self):
        indptr = np.array([0, 3, 3, 9], dtype=np.int64)
        assert nnz_shard_bounds(indptr, 1) == shard_bounds(3, 1)
        empty = np.zeros(4, dtype=np.int64)
        assert nnz_shard_bounds(empty, 2) == shard_bounds(3, 2)

    def test_more_shards_than_rows_clamps(self):
        indptr = np.array([0, 5, 6, 7], dtype=np.int64)
        bounds = nnz_shard_bounds(indptr, 8)
        assert len(bounds) == 3
        assert bounds[0][0] == 0 and bounds[-1][1] == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="n_shards"):
            nnz_shard_bounds(np.array([0, 1], dtype=np.int64), 0)


class TestNnzLayoutParity:
    """The nnz-weighted layout keeps the determinism contract intact."""

    def test_sharded_csr_uses_nnz_weighted_layout(self, rng):
        matrix = skewed_csr(rng)
        with ShardedOperator(matrix, n_shards=4, backend="serial") as op:
            assert op.shard_layout == [
                tuple(b) for b in nnz_shard_bounds(matrix.indptr, 4)
            ]

    def test_products_bitwise_match_unsharded_kernels(self, rng):
        # matvec/rmatvec/matmat are bitwise identical to the direct CSR
        # kernels for ANY layout (disjoint row blocks + one canonical
        # adjoint reduction), so rebalancing the boundaries cannot
        # change a single bit of these products.
        matrix = skewed_csr(rng)
        v = rng.standard_normal(matrix.shape[1])
        u = rng.standard_normal(matrix.shape[0])
        B = rng.standard_normal((matrix.shape[1], 3))
        for n_shards in (2, 4, 8):
            with ShardedOperator(
                matrix, n_shards=n_shards, backend="serial"
            ) as op:
                assert np.array_equal(op.matvec(v), matrix.matvec(v))
                assert np.array_equal(op.rmatvec(u), matrix.rmatvec(u))
                assert np.array_equal(op.matmat(B), matrix.matmat(B))

    def test_rmatmat_close_to_direct_for_any_layout(self, rng):
        matrix = skewed_csr(rng)
        U = rng.standard_normal((matrix.shape[0], 4))
        direct = np.column_stack(
            [matrix.rmatvec(U[:, j]) for j in range(U.shape[1])]
        )
        for n_shards in (2, 8):
            with ShardedOperator(
                matrix, n_shards=n_shards, backend="serial"
            ) as op:
                np.testing.assert_allclose(
                    op.rmatmat(U), direct, rtol=0, atol=1e-12
                )

    def test_layout_is_backend_independent(self, rng):
        matrix = skewed_csr(rng, m=600)
        with ShardedOperator(matrix, n_shards=3, backend="serial") as a:
            layout_serial = a.shard_layout
        with ShardedOperator(
            matrix, n_shards=3, backend="thread", n_jobs=2
        ) as b:
            assert b.shard_layout == layout_serial


class TestFanInBuffers:
    def test_adjoint_buffers_are_reused_forward_stay_fresh(self, rng):
        matrix = skewed_csr(rng, m=600)
        v = rng.standard_normal(matrix.shape[1])
        u = rng.standard_normal(matrix.shape[0])
        U = rng.standard_normal((matrix.shape[0], 3))
        with ShardedOperator(matrix, n_shards=3, backend="serial") as op:
            op.rmatvec(u)
            op.rmatmat(U)
            # One scratch buffer per adjoint kernel signature, none for
            # forward products.
            kinds = {key[0] for key in op._scratch}
            assert kinds == {"rmatvec", "rmatmat"}
            n_buffers = len(op._scratch)
            op.rmatvec(u)
            op.rmatmat(U)
            assert len(op._scratch) == n_buffers
            # Forward results are returned to callers: consecutive calls
            # must hand out distinct arrays.
            first = op.matvec(v)
            second = op.matvec(v)
            assert first is not second
            assert np.array_equal(first, second)

    def test_repeated_adjoints_are_bitwise_stable(self, rng):
        matrix = skewed_csr(rng, m=600)
        u = rng.standard_normal(matrix.shape[0])
        U = rng.standard_normal((matrix.shape[0], 3))
        with ShardedOperator(matrix, n_shards=3, backend="serial") as op:
            r1 = np.array(op.rmatvec(u))
            R1 = np.array(op.rmatmat(U))
            # Interleave other products to dirty the scratch buffers.
            op.rmatvec(rng.standard_normal(matrix.shape[0]))
            op.rmatmat(rng.standard_normal((matrix.shape[0], 3)))
            assert np.array_equal(op.rmatvec(u), r1)
            assert np.array_equal(op.rmatmat(U), R1)
