"""Unit tests for the execution backends."""

import pytest

from repro.observability import InMemorySink, Tracer, current_tracer
from repro.parallel import (
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    effective_n_jobs,
    resolve_backend,
)

pytestmark = pytest.mark.parallel


class TestEffectiveNJobs:
    def test_none_means_one(self):
        assert effective_n_jobs(None) == 1

    def test_all_cores(self):
        assert effective_n_jobs(-1) >= 1

    def test_positive_passthrough(self):
        assert effective_n_jobs(3) == 3

    @pytest.mark.parametrize("bad", [0, -2, -17])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError, match="n_jobs"):
            effective_n_jobs(bad)


class TestSerialBackend:
    def test_map_preserves_order(self):
        with SerialBackend() as backend:
            assert backend.map(lambda i: i * i, range(5)) == [0, 1, 4, 9, 16]

    def test_shape(self):
        backend = SerialBackend()
        assert backend.n_workers == 1
        assert backend.supports_closures
        backend.close()

    def test_exceptions_propagate(self):
        with SerialBackend() as backend:
            with pytest.raises(ZeroDivisionError):
                backend.map(lambda i: 1 // i, [2, 1, 0])


class TestThreadBackend:
    def test_map_preserves_submission_order(self):
        import time

        def slow_square(i):
            # Later items finish first; results must still come back in
            # submission order.
            time.sleep(0.01 * (4 - i))
            return i * i

        with ThreadBackend(n_workers=4) as backend:
            assert backend.map(slow_square, range(4)) == [0, 1, 4, 9]

    def test_exceptions_propagate(self):
        with ThreadBackend(n_workers=2) as backend:
            with pytest.raises(ZeroDivisionError):
                backend.map(lambda i: 1 // i, [1, 0, 1])

    def test_workers_inherit_current_tracer(self):
        tracer = Tracer(sink=InMemorySink(), enabled=True)
        with ThreadBackend(n_workers=2) as backend:
            with tracer.span("outer"):
                seen = backend.map(
                    lambda _: current_tracer() is tracer, range(4)
                )
        assert all(seen)

    def test_close_idempotent(self):
        backend = ThreadBackend(n_workers=2)
        backend.map(lambda i: i, [1])
        backend.close()
        backend.close()


class TestResolveBackend:
    def test_default_is_serial(self):
        backend = resolve_backend(None, None)
        assert isinstance(backend, SerialBackend)
        backend.close()

    def test_jobs_above_one_select_threads(self):
        backend = resolve_backend(None, 3)
        assert isinstance(backend, ThreadBackend)
        assert backend.n_workers == 3
        backend.close()

    @pytest.mark.parametrize(
        "name, cls",
        [
            ("serial", SerialBackend),
            ("thread", ThreadBackend),
            ("process", ProcessBackend),
        ],
    )
    def test_names(self, name, cls):
        backend = resolve_backend(name, 2)
        assert isinstance(backend, cls)
        backend.close()

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend, 4) is backend
        backend.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("quantum", 2)

    def test_process_backend_refuses_closures(self):
        backend = resolve_backend("process", 2)
        assert isinstance(backend, Backend)
        assert not backend.supports_closures
        backend.close()
